//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` — the environment has
//! no crates.io access, so `syn`/`quote` are unavailable. The parser only
//! understands the shapes this workspace actually uses: non-generic structs
//! (named, tuple, unit) and enums (unit, tuple, struct variants), with
//! arbitrary attributes skipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips `#[...]` attribute pairs at the cursor.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(...)` visibility at the cursor.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advances past one field's type (or a variant's discriminant): everything
/// up to the next comma at angle-bracket depth zero.
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_vis(group, skip_attrs(group, i));
        if i >= group.len() {
            break;
        }
        let TokenTree::Ident(name) = &group[i] else {
            return Err(format!("expected field name, got `{}`", group[i]));
        };
        names.push(name.to_string());
        i += 1;
        match group.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{}`", name)),
        }
        i = skip_to_comma(group, i);
        i += 1; // past the comma (or end)
    }
    Ok(names)
}

fn parse_tuple_fields(group: &[TokenTree]) -> usize {
    let mut arity = 0;
    let mut i = 0;
    while i < group.len() {
        i = skip_vis(group, skip_attrs(group, i));
        if i >= group.len() {
            break;
        }
        arity += 1;
        i = skip_to_comma(group, i) + 1;
    }
    arity
}

fn parse_variants(group: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        let TokenTree::Ident(name) = &group[i] else {
            return Err(format!("expected variant name, got `{}`", group[i]));
        };
        let name = name.to_string();
        i += 1;
        let fields = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(parse_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner)?)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        i = skip_to_comma(group, i) + 1; // past discriminant (if any) + comma
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));
    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the serde stub derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(parse_tuple_fields(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(&inner)?,
                })
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

fn letters(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct { name, fields } => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_json_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Named(names) => {
                    s.push_str("    ::serde::Value::Object(vec![\n");
                    for f in names {
                        s.push_str(&format!(
                            "      (\"{f}\".to_owned(), ::serde::Serialize::to_json_value(&self.{f})),\n"
                        ));
                    }
                    s.push_str("    ])\n");
                }
                Fields::Tuple(1) => {
                    s.push_str("    ::serde::Serialize::to_json_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    s.push_str("    ::serde::Value::Array(vec![\n");
                    for k in 0..*n {
                        s.push_str(&format!(
                            "      ::serde::Serialize::to_json_value(&self.{k}),\n"
                        ));
                    }
                    s.push_str("    ])\n");
                }
                Fields::Unit => s.push_str("    ::serde::Value::Null\n"),
            }
            s.push_str("  }\n}\n");
        }
        Item::Enum { name, variants } => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_json_value(&self) -> ::serde::Value {{\n    match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "      {name}::{vn} => ::serde::Value::Str(\"{vn}\".to_owned()),\n"
                    )),
                    Fields::Tuple(1) => s.push_str(&format!(
                        "      {name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_owned(), ::serde::Serialize::to_json_value(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds = letters(*n);
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        s.push_str(&format!(
                            "      {name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_owned(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_owned(), ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        s.push_str(&format!(
                            "      {name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_owned(), ::serde::Value::Object(vec![{}]))]),\n",
                            entries.join(", ")
                        ));
                    }
                }
            }
            s.push_str("    }\n  }\n}\n");
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut s = String::new();
    match item {
        Item::Struct { name, fields } => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
            ));
            match fields {
                Fields::Named(names) => {
                    s.push_str(&format!(
                        "    let __entries = v.expect_object(\"{name}\")?;\n    Ok({name} {{\n"
                    ));
                    for f in names {
                        s.push_str(&format!(
                            "      {f}: ::serde::Deserialize::from_json_value(::serde::__field(__entries, \"{f}\")?)?,\n"
                        ));
                    }
                    s.push_str("    })\n");
                }
                Fields::Tuple(1) => {
                    s.push_str(&format!(
                        "    Ok({name}(::serde::Deserialize::from_json_value(v)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    s.push_str(&format!(
                        "    let __items = v.expect_array(\"{name}\")?;\n    if __items.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} elements for {name}, got {{}}\", __items.len()))); }}\n    Ok({name}(\n"
                    ));
                    for k in 0..*n {
                        s.push_str(&format!(
                            "      ::serde::Deserialize::from_json_value(&__items[{k}])?,\n"
                        ));
                    }
                    s.push_str("    ))\n");
                }
                Fields::Unit => {
                    s.push_str(&format!("    let _ = v;\n    Ok({name})\n"));
                }
            }
            s.push_str("  }\n}\n");
        }
        Item::Enum { name, variants } => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n    match v {{\n"
            ));
            // Unit variants arrive as bare strings.
            s.push_str("      ::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    s.push_str(&format!("        \"{vn}\" => Ok({name}::{vn}),\n"));
                }
            }
            s.push_str(&format!(
                "        __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` for {name}\"))),\n      }},\n"
            ));
            // Data variants arrive as single-key objects.
            s.push_str("      ::serde::Value::Object(__entries) if __entries.len() == 1 => {\n");
            s.push_str("        let (__tag, __val) = &__entries[0];\n");
            s.push_str("        match __tag.as_str() {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => s.push_str(&format!(
                        "          \"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_json_value(__val)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut elems = String::new();
                        for k in 0..*n {
                            elems.push_str(&format!(
                                "::serde::Deserialize::from_json_value(&__items[{k}])?, "
                            ));
                        }
                        s.push_str(&format!(
                            "          \"{vn}\" => {{\n            let __items = __val.expect_array(\"{name}::{vn}\")?;\n            if __items.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} elements for {name}::{vn}, got {{}}\", __items.len()))); }}\n            Ok({name}::{vn}({elems}))\n          }},\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut body = String::new();
                        for f in fields {
                            body.push_str(&format!(
                                "              {f}: ::serde::Deserialize::from_json_value(::serde::__field(__inner, \"{f}\")?)?,\n"
                            ));
                        }
                        s.push_str(&format!(
                            "          \"{vn}\" => {{\n            let __inner = __val.expect_object(\"{name}::{vn}\")?;\n            Ok({name}::{vn} {{\n{body}            }})\n          }},\n"
                        ));
                    }
                }
            }
            s.push_str(&format!(
                "          __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` for {name}\"))),\n        }}\n      }},\n"
            ));
            s.push_str(&format!(
                "      __other => Err(::serde::DeError(format!(\"expected string or single-key object for {name}, got {{}}\", __other.kind()))),\n"
            ));
            s.push_str("    }\n  }\n}\n");
        }
    }
    s
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde stub derive codegen failed: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error literal")
}

/// Derives `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (stub data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
