//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! minimal serde replacement: a JSON-like [`Value`] data model, the
//! [`Serialize`]/[`Deserialize`] traits expressed directly against it, and
//! derive macros (from the sibling `serde_derive` stub) that mirror serde's
//! externally-tagged encoding conventions:
//!
//! * named-field structs become objects (fields in declaration order);
//! * newtype structs are transparent; longer tuple structs become arrays;
//! * unit enum variants become strings, data-carrying variants become
//!   single-key objects (`{"Source": "DistributedFs"}`);
//! * maps with integer-like keys stringify their keys, as `serde_json` does.
//!
//! Map serialization is sorted by key, so equal values always produce
//! byte-identical JSON — the determinism contract the parallel training
//! runner's tests rely on.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

/// The self-describing data model every serializable type maps onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (also covers all unsigned values up to `i64::MAX`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; entries keep insertion order (struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object entry by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable lookup of an object entry by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The entries of an object, or a decode error naming `what`.
    pub fn expect_object(&self, what: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(DeError(format!(
                "expected object for {what}, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array, or a decode error naming `what`.
    pub fn expect_array(&self, what: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(DeError(format!(
                "expected array for {what}, got {}",
                other.kind()
            ))),
        }
    }

    /// Short kind name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Object(_)) {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(entries) = self else {
            unreachable!()
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            &mut entries[pos].1
        } else {
            entries.push((key.to_owned(), Value::Null));
            &mut entries.last_mut().expect("just pushed").1
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(items) => items.get_mut(idx).expect("array index out of bounds"),
            other => panic!("cannot index {} with a number", other.kind()),
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can map themselves onto the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Decodes from a [`Value`] tree.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: fetches a required struct field.
pub fn __field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// ── scalar impls ─────────────────────────────────────────────────────

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Int(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Int(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    ref other => Err(DeError(format!(
                        "expected integer for {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, u8, u16, u32);

macro_rules! impl_wide_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Int(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    ref other => Err(DeError(format!(
                        "expected integer for {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_wide_int!(i64, isize, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Float(f64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(x) => Ok(x as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    ref other => Err(DeError(format!(
                        "expected number for {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError(format!("expected null, got {}", other.kind()))),
        }
    }
}

// ── container impls ──────────────────────────────────────────────────

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.expect_array("Vec")?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let items = v.expect_array("array")?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::from_json_value)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError("array length mismatch".to_owned()))
    }
}

macro_rules! impl_tuple {
    ($( $len:literal => ($($t:ident . $idx:tt),+) ;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let items = v.expect_array("tuple")?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected {}-tuple, got {} elements", $len, items.len()
                    )));
                }
                Ok(($($t::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    1 => (A.0);
    2 => (A.0, B.1);
    3 => (A.0, B.1, C.2);
    4 => (A.0, B.1, C.2, D.3);
    5 => (A.0, B.1, C.2, D.3, E.4);
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.expect_array("BTreeSet")?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_json_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_json_value).collect();
        items.sort_by(compare_values);
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.expect_array("HashSet")?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

/// Renders a map key: strings pass through, integers stringify (the
/// serde_json convention for integer-keyed maps).
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(n) => n.to_string(),
        Value::UInt(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be a string or integer, got {}", other.kind()),
    }
}

/// Inverse of [`key_to_string`]: integer-looking keys decode as integers.
fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<i64>() {
        Value::Int(n)
    } else if let Ok(n) = s.parse::<u64>() {
        Value::UInt(n)
    } else {
        Value::Str(s.to_owned())
    }
}

/// Total order over values, used to sort hash-map entries so equal maps
/// always serialize identically.
fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    fn num(v: &Value) -> f64 {
        match *v {
            Value::Int(n) => n as f64,
            Value::UInt(n) => n as f64,
            Value::Float(x) => x,
            _ => 0.0,
        }
    }
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => x
            .iter()
            .zip(y)
            .map(|(p, q)| compare_values(p, q))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len())),
        _ if rank(a) == 2 && rank(b) == 2 => num(a).partial_cmp(&num(b)).unwrap_or(Ordering::Equal),
        _ => rank(a).cmp(&rank(b)),
    }
}

fn serialize_map<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Value)> = entries
        .map(|(k, v)| (key_to_string(&k.to_json_value()), v.to_json_value()))
        .collect();
    out.sort_by(|(a, _), (b, _)| a.cmp(b));
    Value::Object(out)
}

fn deserialize_map_entries<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    v.expect_object("map")?
        .iter()
        .map(|(k, val)| {
            let key = K::from_json_value(&key_from_string(k))
                .or_else(|_| K::from_json_value(&Value::Str(k.clone())))?;
            Ok((key, V::from_json_value(val)?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(deserialize_map_entries::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(deserialize_map_entries::<K, V>(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_index_mut() {
        let mut v = Value::Object(vec![(
            "a".to_owned(),
            Value::Array(vec![Value::Int(1), Value::Int(2)]),
        )]);
        assert_eq!(v["a"][1], Value::Int(2));
        assert_eq!(v["missing"], Value::Null);
        v["a"][0] = Value::Int(7);
        assert_eq!(v["a"][0], Value::Int(7));
        v["b"] = Value::Bool(true);
        assert_eq!(v["b"], Value::Bool(true));
    }

    #[test]
    fn map_keys_stringify_and_sort() {
        let mut m = HashMap::new();
        m.insert(11u32, "b".to_owned());
        m.insert(2u32, "a".to_owned());
        let v = m.to_json_value();
        let Value::Object(entries) = &v else { panic!() };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["11", "2"]); // lexicographic, but stable
        let back: HashMap<u32, String> = HashMap::from_json_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(None::<u32>.to_json_value(), Value::Null);
        assert_eq!(Option::<u32>::from_json_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_json_value(&Value::Int(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn wide_integers_roundtrip() {
        let big = u64::MAX - 3;
        let v = big.to_json_value();
        assert_eq!(u64::from_json_value(&v).unwrap(), big);
        assert!(u32::from_json_value(&v).is_err());
    }
}
