//! Offline stand-in for `serde_json`.
//!
//! Works over the [`serde`] stub's [`Value`] data model: a recursive-descent
//! JSON parser, compact and pretty printers, and a [`json!`] macro covering
//! literal objects/arrays with expression values. Printing is deterministic:
//! object entries keep their order (struct fields as declared, map entries
//! pre-sorted by the serializer), so equal values produce identical bytes.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value).map_err(Error::from)
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Serializes to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Parses a JSON string into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_json_value(&value).map_err(Error::from)
}

// ── printer ──────────────────────────────────────────────────────────

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep floats recognizably floats so integer/float distinction
        // survives a roundtrip where it matters (e.g. "1.0" not "1").
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no inf/nan; match serde_json's lossy convention.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ── parser ───────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    /// Advances past a run of plain (non-quote, non-backslash) bytes and
    /// returns it validated as UTF-8. Scanning whole segments — instead
    /// of decoding one character at a time with a fresh `from_utf8` of
    /// the entire remaining input per character — is what keeps string
    /// parsing linear; the old per-char probe made document parsing
    /// quadratic and dominated every ledger fold.
    fn plain_segment(&mut self) -> Result<&'a str, Error> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'"' | b'\\') {
                break;
            }
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid UTF-8"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        // Fast path: an escape-free string is a single borrowed segment.
        let head = self.plain_segment()?;
        if self.peek() == Some(b'"') {
            self.pos += 1;
            return Ok(head.to_owned());
        }
        let mut s = head.to_owned();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let segment = self.plain_segment()?;
                    s.push_str(segment);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else {
            Err(self.err("number out of range"))
        }
    }
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// `json!` helper: lifts any serializable expression into a [`Value`].
#[doc(hidden)]
pub fn __value_of<T: Serialize>(value: &T) -> Value {
    value.to_json_value()
}

/// Builds a [`Value`] from JSON-like syntax. Supports `null`, literals,
/// arbitrary expressions, and nested `{...}`/`[...]` literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_array!(@acc [] $($tt)+)) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::Value::Object($crate::json_object!(@acc [] $($tt)+)) };
    ($expr:expr) => { $crate::__value_of(&$expr) };
}

/// Internal muncher for `json!` object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@acc [$($entry:expr,)*]) => { ::std::vec![$($entry,)*] };
    (@acc [$($entry:expr,)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object!(@acc [$($entry,)* ($key.to_owned(), $crate::Value::Null),] $($($rest)*)?)
    };
    (@acc [$($entry:expr,)*] $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object!(@acc [$($entry,)* ($key.to_owned(), $crate::json!({ $($inner)* })),] $($($rest)*)?)
    };
    (@acc [$($entry:expr,)*] $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object!(@acc [$($entry,)* ($key.to_owned(), $crate::json!([ $($inner)* ])),] $($($rest)*)?)
    };
    (@acc [$($entry:expr,)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_object!(@acc [$($entry,)* ($key.to_owned(), $crate::__value_of(&$value)),] $($rest)*)
    };
    (@acc [$($entry:expr,)*] $key:literal : $value:expr) => {
        ::std::vec![$($entry,)* ($key.to_owned(), $crate::__value_of(&$value))]
    };
}

/// Internal muncher for `json!` array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    (@acc [$($elem:expr,)*]) => { ::std::vec![$($elem,)*] };
    (@acc [$($elem:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_array!(@acc [$($elem,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@acc [$($elem:expr,)*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array!(@acc [$($elem,)* $crate::json!({ $($inner)* }),] $($($rest)*)?)
    };
    (@acc [$($elem:expr,)*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array!(@acc [$($elem,)* $crate::json!([ $($inner)* ]),] $($($rest)*)?)
    };
    (@acc [$($elem:expr,)*] $value:expr , $($rest:tt)*) => {
        $crate::json_array!(@acc [$($elem,)* $crate::__value_of(&$value),] $($rest)*)
    };
    (@acc [$($elem:expr,)*] $value:expr) => {
        ::std::vec![$($elem,)* $crate::__value_of(&$value)]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "svm",
            "count": 3,
            "ratio": 0.5,
            "nested": {"a": [1, 2, 3], "b": null},
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value =
            from_str(r#"{"s": "a\"b\\c\n", "n": -42, "big": 18446744073709551615, "f": 1.5e3}"#)
                .unwrap();
        assert_eq!(v["s"], Value::Str("a\"b\\c\n".to_owned()));
        assert_eq!(v["n"], Value::Int(-42));
        assert_eq!(v["big"], Value::UInt(u64::MAX));
        assert_eq!(v["f"], Value::Float(1500.0));
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = json!({"a": [1, {"b": true}], "empty": []});
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_exprs() {
        let x = 2.0f64;
        let v = json!({"r": x.max(1e-9), "arr": [x, 1]});
        assert_eq!(v["r"], Value::Float(2.0));
        assert_eq!(v["arr"][1], Value::Int(1));
        assert_eq!(json!(7), Value::Int(7));
    }
}
