//! Offline stand-in for `proptest`.
//!
//! Covers the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, numeric-range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::Index`, `any::<T>()`, the
//! `proptest!`/`prop_assert*`/`prop_assume!` macros, and
//! [`ProptestConfig::with_cases`]. Differences from real proptest:
//!
//! * **no shrinking** — a failing case reports its case number and message;
//! * **`prop_assume!` skips** the case instead of drawing a replacement;
//! * inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test name and case index), so failures are reproducible across runs;
//! * `PROPTEST_CASES` overrides the case count, as in real proptest.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG for input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Per-(test, case) generator: reseeding is a pure function of both.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [low, high).
    pub fn next_in(&mut self, low: u64, high: u64) -> u64 {
        debug_assert!(low < high);
        low + self.next_u64() % (high - low)
    }
}

/// Generates random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ── numeric ranges ───────────────────────────────────────────────────

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_in(0, span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_in(0, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

// ── tuples ───────────────────────────────────────────────────────────

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
}

// ── arbitrary ────────────────────────────────────────────────────────

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broadly-ranged values; avoids NaN/inf surprises.
        (rng.next_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_f64() - 0.5) * 2e6) as f32
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ── collection / sample modules ──────────────────────────────────────

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection-size specification.
    pub trait SizeRange {
        /// Draws a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            rng.next_in(self.start as u64, self.end as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.next_in(*self.start() as u64, *self.end() as u64 + 1) as usize
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract index into any collection, resolved against a length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ── runner ───────────────────────────────────────────────────────────

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one proptest-generated test: `f` returns `Err(message)` on
/// assertion failure. `PROPTEST_CASES` overrides the configured count.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    for case in 0..cases {
        let mut rng = TestRng::for_case(test_name, case);
        if let Err(msg) = f(&mut rng) {
            panic!("proptest `{test_name}` failed at case {case}/{cases}: {msg}");
        }
    }
}

/// Everything a proptest file conventionally imports.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                __outcome
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition, failing the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality, failing the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} != {:?}", __a, __b),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}: {}",
                __a,
                __b,
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality, failing the current case with the shared value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}",
                __a,
                __b
            ));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
///
/// Unlike real proptest this does not draw a replacement input; the case
/// simply counts as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&(5u32..=5), &mut rng);
            assert_eq!(y, 5);
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = Strategy::generate(&(0u64..1 << 60), &mut crate::TestRng::for_case("x", 7));
        let b = Strategy::generate(&(0u64..1 << 60), &mut crate::TestRng::for_case("x", 7));
        let c = Strategy::generate(&(0u64..1 << 60), &mut crate::TestRng::for_case("x", 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro plumbing itself: patterns, maps, vec, Index, assume.
        #[test]
        fn macro_plumbing((a, b) in (0u32..100, 0u32..100).prop_map(|(x, y)| (x, x + y)),
                          picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4)) {
            prop_assume!(b < 1000);
            prop_assert!(b >= a, "{b} < {a}");
            prop_assert_eq!(a.min(b), a);
            for p in &picks {
                prop_assert!(p.index(7) < 7);
            }
        }
    }
}
