//! Offline stand-in for `rand` (0.8-era API subset).
//!
//! Provides [`rngs::SmallRng`] as a faithful xoshiro256++ generator seeded
//! via SplitMix64 — the same algorithm family real `rand` 0.8 uses for
//! `SmallRng` on 64-bit targets — so simulation noise keeps the statistical
//! properties the calibration tests assert (uniform in [0,1), mean ½,
//! deterministic per seed).

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Samples a uniformly-distributed value of `Self` from an RNG.
pub trait StandardSample {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Uniform `u64` in `[low, high)` (Lemire-style rejection-free modulo
    /// bias is negligible for simulation use).
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64
    where
        Self: Sized,
    {
        assert!(low < high, "empty range");
        low + self.next_u64() % (high - low)
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: expands a 64-bit seed into independent state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++: the algorithm behind `rand` 0.8's `SmallRng` on
    /// 64-bit platforms. Fast, small-state, non-cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        // `#[inline]` matters: generic callers (`gen::<f64>` etc.)
        // monomorphize in *their* crate and would otherwise pay a real
        // cross-crate call per draw — the simulator makes ~150k draws per
        // paper-scale run.
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro's all-zero state is absorbing; SplitMix64 never
            // produces it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let first: u64 = SmallRng::seed_from_u64(42).gen();
        assert_ne!(first, c.gen::<u64>());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} not ~0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.05)).count();
        assert!((300..700).contains(&hits), "got {hits} hits");
    }
}
