//! Offline stand-in for `criterion`.
//!
//! A deliberately small wall-clock harness: each benchmark runs a short
//! warm-up, then a fixed sample of timed iterations, and prints the mean
//! and min per-iteration time. No statistics beyond that — the point is
//! keeping the `[[bench]]` targets building and producing comparable
//! numbers without crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time budget per benchmark (warm-up + measurement).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Entry point object handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Consumes CLI arguments (accepted for cargo compatibility; ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| {
                f(b, input);
            },
        );
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from the parameter value alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Id from a function name plus parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, once per sample, until the sample count or the time
    /// budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > MEASURE_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<40} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            });
        });
        group.finish();
        assert!(ran > 0);
    }
}
