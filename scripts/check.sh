#!/usr/bin/env bash
# Full offline verification: tier-1 (build + tests) plus lint gates.
# Everything resolves against the vendored compat/ crates, so this runs
# without network access; --offline makes that explicit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format (rustfmt drift) =="
cargo fmt --check

echo "== build (release) =="
cargo build --release --offline

echo "== tests (workspace) =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== trace golden (Chrome trace_event export is byte-stable) =="
cargo test -q --offline --test trace_golden

echo "== metrics registry (concurrent exactness; thread-count-stable exports) =="
cargo test -q --offline --test metrics_registry

echo "== doctor golden (diagnostics report is byte-stable) =="
cargo test -q --offline --test doctor_golden

echo "== trace overhead (<5% budget; records results/BENCH_trace_overhead.json) =="
cargo bench --offline -p bench --bench trace_overhead

echo "== metrics overhead (<5% budget; records results/BENCH_metrics_overhead.json) =="
cargo bench --offline -p bench --bench metrics_overhead

echo "== ledger determinism (manifest hash is thread-count-stable) =="
cargo test -q --offline --test ledger_determinism

echo "== chaos matrix (workload x fault plan x seed recovery invariants) =="
cargo test -q --offline --test chaos

echo "== chaos golden (drill report is byte-stable) =="
cargo test -q --offline --test chaos_golden

echo "== chaos overhead (<5% armed-idle budget; records results/BENCH_chaos_overhead.json) =="
cargo bench --offline -p bench --bench chaos_overhead

echo "== sim throughput (hot-path speedup vs frozen pre-rework constants; records results/BENCH_sim_throughput.json) =="
cargo bench --offline -p bench --bench sim_throughput

echo "== tenants matrix (workload pair x weight ratio x memory pressure x seed invariants) =="
cargo test -q --offline --test tenants

echo "== tenants golden (two-tenant contention drill report is byte-stable) =="
cargo test -q --offline --test tenants_golden

echo "== tenants overhead (<5% single-tenant budget; records results/BENCH_tenants_overhead.json) =="
cargo bench --offline -p bench --bench tenants_overhead

echo "== profile determinism (call-tree structure digest is thread-count-stable) =="
cargo test -q --offline --test profile_determinism

echo "== profile golden (structure-only phase tree is byte-stable) =="
cargo test -q --offline --test profile_golden

echo "== profile overhead (<5% enabled budget; records results/BENCH_profile_overhead.json) =="
cargo bench --offline -p bench --bench profile_overhead

echo "== health determinism (fold digest is thread-count-stable) =="
cargo test -q --offline --test health_determinism

echo "== health golden (drift drill names the onset run; tree is byte-stable) =="
cargo test -q --offline --test health_golden

echo "== health overhead (<5% steady-state fold budget; records results/BENCH_health_overhead.json) =="
cargo bench --offline -p bench --bench health_overhead

echo "== perf report (fresh BENCH_*.json vs results/baselines/) =="
cargo run -q --release --offline --bin juggler -- perf-report

echo "all checks passed"
