#!/usr/bin/env bash
# Regenerates the perf-regression baselines in results/baselines/ from
# the current BENCH_*.json artifacts in results/. Run this after an
# *intentional* performance-characteristics change, then commit the
# regenerated specs — baseline churn should always be an explicit,
# reviewable commit, never a side effect of `scripts/check.sh`.
#
# To refresh the BENCH artifacts themselves first:
#   cargo bench --offline -p bench --bench trace_overhead
#   cargo bench --offline -p bench --bench metrics_overhead
#   cargo bench --offline -p bench --bench training_parallel
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release --offline --bin juggler -- perf-report --write-baselines
echo "review and commit results/baselines/ explicitly"
