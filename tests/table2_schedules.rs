//! End-to-end reproduction of Table 2: for every evaluated application,
//! hotspot detection — fed only with metrics measured by the Spark_i
//! instrumentation on a tiny sample run — must produce exactly the
//! schedules the paper reports.

use juggler_suite::cluster_sim::{ClusterConfig, MachineSpec};
use juggler_suite::instrument::profile_run;
use juggler_suite::juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};
use juggler_suite::workloads::{
    LinearRegression, LogisticRegression, Pca, RandomForest, SupportVectorMachine, Workload,
};

fn juggler_schedules(w: &dyn Workload) -> Vec<String> {
    let sample = w.sample_params();
    let app = w.build(&sample);
    let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
    let out = profile_run(
        &app,
        &app.default_schedule().clone(),
        cluster,
        w.sim_params(),
    )
    .expect("sample run succeeds");
    let metrics = DatasetMetricsView::from_metrics(&out.metrics, app.dataset_count());
    detect_hotspots(&app, &metrics, &HotspotConfig::default())
        .into_iter()
        .map(|s| s.schedule.notation())
        .collect()
}

#[test]
fn lir_schedules_match_table2() {
    assert_eq!(
        juggler_schedules(&LinearRegression),
        vec!["p(1)", "p(1) p(3)"]
    );
}

#[test]
fn lor_schedules_match_table2() {
    assert_eq!(
        juggler_schedules(&LogisticRegression),
        vec!["p(2)", "p(1) p(2) u(2) p(11)"]
    );
}

#[test]
fn pca_schedules_match_table2() {
    assert_eq!(juggler_schedules(&Pca), vec!["p(1) u(1) p(2) u(2) p(13)"]);
}

#[test]
fn rfc_schedules_match_table2() {
    assert_eq!(
        juggler_schedules(&RandomForest),
        vec!["p(11)", "p(1) p(12)", "p(1) p(5) u(5) p(12)"]
    );
}

#[test]
fn svm_schedules_match_table2() {
    assert_eq!(
        juggler_schedules(&SupportVectorMachine),
        vec!["p(2)", "p(1) p(6)"]
    );
}
