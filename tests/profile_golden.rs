//! Golden test for the phase profiler's structure-only tree: a full LOR
//! training (stages 1-4 plus the stage-5 menu) must render byte-for-byte
//! the committed golden file. Timings never appear in this surface, so
//! the golden is stable across hosts and `JUGGLER_THREADS`.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test profile_golden`
//! after an intentional pipeline or instrumentation change, and review
//! the diff: a new phase, a changed call count, or a drifted counter is
//! a behavior change, not noise.

use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::obs::prof::profiler;
use juggler_suite::workloads::{LogisticRegression, Workload};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/profile_small.txt")
}

/// The run that produced the golden: LOR trained sequentially with the
/// profiler recording, rendered structure-only (names, call counts,
/// counter deltas — no timings).
fn render_structure() -> String {
    let w = LogisticRegression;
    let config = TrainingConfig {
        threads: 1,
        ..TrainingConfig::default()
    };
    let prof = profiler();
    prof.set_enabled(false);
    prof.reset();
    prof.enable();
    let trained = OfflineTraining::run(&w, &config).expect("training succeeds");
    let paper = w.paper_params();
    let menu = trained.recommend(paper.e(), paper.f());
    let profile = prof.take_profile();
    prof.set_enabled(false);
    assert!(!menu.options.is_empty(), "menu must not be empty");
    profile.render_structure()
}

#[test]
fn structure_tree_matches_golden_file() {
    let got = render_structure();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test profile_golden",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "profile structure drifted from {}; if intentional, regenerate \
         with UPDATE_GOLDEN=1 cargo test --test profile_golden and review",
        golden_path().display()
    );
}
