//! Determinism contract for the watchtower: the `HealthReport` digest
//! of a fold over recorded history must be bit-identical whether
//! `JUGGLER_THREADS` is 1, 2, or 8, across repeated folds of the same
//! window, and across the ledger round trip (`load_history` vs folding
//! the in-memory manifests directly). The doctor-embedded single-run
//! baseline rides along under the same contract.
//!
//! One test function on purpose: `doctor` resets the global metrics
//! registry, and the `JUGGLER_THREADS` environment variable is
//! process-wide.

mod common;

use common::TinyScoring;
use juggler_suite::juggler::parallel::THREADS_ENV;
use juggler_suite::juggler::pipeline::TrainingConfig;
use juggler_suite::juggler::provenance::RunManifest;
use juggler_suite::juggler::watchtower::{load_history, Watchtower};
use juggler_suite::obs::LedgerStore;
use juggler_suite::workloads::Workload;

/// A three-run history: the recorded doctor manifest plus two copies
/// with slightly perturbed time coefficients (distinct content, same
/// healthy regime — a 1-2% nudge stays under the drift thresholds).
fn history(base: &RunManifest) -> Vec<RunManifest> {
    let mut second = base.clone();
    second.perturb_time_coefficient(0, 0.01);
    let mut third = base.clone();
    third.perturb_time_coefficient(0, 0.02);
    vec![base.clone(), second, third]
}

#[test]
fn health_digests_are_bit_identical_across_threads_and_refolds() {
    let mut doctor_digests = Vec::new();
    let mut fold_digests = Vec::new();
    for threads in [1_usize, 2, 8] {
        std::env::set_var(THREADS_ENV, threads.to_string());
        // threads: 0 resolves the pool size from JUGGLER_THREADS, the
        // exact path `juggler health` users exercise.
        let config = TrainingConfig {
            threads: 0,
            ..TrainingConfig::default()
        };
        let report =
            juggler_suite::juggler::doctor(&TinyScoring, &config).expect("doctor succeeds");
        doctor_digests.push(report.health.digest());

        let manifest = RunManifest::from_doctor(&report, &config, &TinyScoring.paper_params());
        let window = history(&manifest);
        let tower = Watchtower::default();
        let folded = tower.fold(&window);
        // Refolding the identical window is byte-identical, not merely
        // equal: detector state is integer-only, so nothing drifts.
        assert_eq!(
            folded.canonical_json(),
            tower.fold(&window).canonical_json(),
            "repeat folds of one window must agree byte-for-byte"
        );
        fold_digests.push(folded.digest());
    }
    std::env::remove_var(THREADS_ENV);

    for other in &doctor_digests[1..] {
        assert_eq!(
            &doctor_digests[0], other,
            "the doctor-embedded health baseline must not depend on the worker pool"
        );
    }
    for other in &fold_digests[1..] {
        assert_eq!(
            &fold_digests[0], other,
            "history-fold digests must not depend on the worker pool"
        );
    }

    // Ledger round trip: record the window, load it back through
    // `load_history`, and the fold digest must not move. This pins that
    // file mtimes (ordering metadata) stay out of the report content.
    let config = TrainingConfig::default();
    let report = juggler_suite::juggler::doctor(&TinyScoring, &config).expect("doctor succeeds");
    let manifest = RunManifest::from_doctor(&report, &config, &TinyScoring.paper_params());
    let window = history(&manifest);

    let dir = std::env::temp_dir().join(format!("juggler-health-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = LedgerStore::new(dir.clone());
    let base_time =
        std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_700_000_000);
    for (i, m) in window.iter().enumerate() {
        let path = store
            .record(&m.content_hash, &m.to_json())
            .expect("record succeeds");
        // Pin mtimes so the store lists the window in recording order —
        // the ordering metadata `load_history` sorts by.
        let file = std::fs::File::options()
            .write(true)
            .open(&path)
            .expect("reopen manifest");
        file.set_modified(base_time + std::time::Duration::from_secs(i as u64))
            .expect("set mtime");
    }
    let loaded = load_history(&store, "TINY", None, 0).expect("history loads");
    assert_eq!(loaded.len(), window.len());
    let direct = Watchtower::default().fold(&window);
    let via_store = Watchtower::default().fold(&loaded);
    assert_eq!(
        direct.digest(),
        via_store.digest(),
        "the ledger round trip must not change the report digest \
         (file mtimes are ordering metadata, never content)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
