//! The chaos matrix: every (workload × fault plan × seed) cell runs the
//! baseline-vs-chaos drill and must satisfy the recovery invariants, and
//! full-pipeline cells check that a mid-run executor loss keeps the
//! trained models' predicted-vs-simulated error inside a declared band.

use juggler_suite::cluster_sim::{
    ClusterConfig, Engine, FaultPlan, NoiseParams, RetryPolicy, RunOptions,
};
use juggler_suite::juggler::chaos::{build_plan, run_chaos, ChaosConfig, PlanKind};
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::juggler::RecommendationMenu;
use juggler_suite::workloads::{
    all_workloads, LogisticRegression, MicroBatchStream, SqlStarJoin, SupportVectorMachine,
    Workload,
};

/// Every cell of the (workload × plan × seed) matrix terminates, restores
/// cache residency through lineage, accounts for every task attempt, and
/// never finishes faster than the fault-free baseline.
#[test]
fn every_matrix_cell_terminates_and_recovers() {
    for w in all_workloads() {
        for kind in PlanKind::ALL {
            for seed in [0xC4A05_u64, 0x0DD5EED] {
                let cfg = ChaosConfig {
                    kind,
                    machines: 3,
                    seed,
                };
                let cell = format!("{} × {} × seed {seed:#x}", w.name(), kind.name());
                let out = run_chaos(w.as_ref(), &cfg)
                    .unwrap_or_else(|e| panic!("cell {cell} failed to run: {e}"));
                assert!(
                    out.chaos.total_time_s.is_finite() && out.chaos.total_time_s > 0.0,
                    "cell {cell} did not terminate cleanly"
                );
                assert!(
                    out.residency_restored(),
                    "cell {cell} lost cache residency: {:#?}",
                    out.residency
                );
                assert!(
                    out.attempts_consistent(),
                    "cell {cell}: {} attempts for {} tasks (+{} retried, +{} speculative)",
                    out.chaos.task_attempts,
                    out.chaos.total_tasks,
                    out.chaos.faults.retried_attempts,
                    out.chaos.faults.speculative_launched
                );
                assert!(
                    out.slowdown() >= 1.0 - 1e-9,
                    "cell {cell}: chaos run faster than fault-free ({:.4})",
                    out.slowdown()
                );
                // Every event either fired or explains why it could not.
                for o in &out.chaos.faults.outcomes {
                    assert!(
                        o.fired || !o.detail.is_empty(),
                        "cell {cell}: unfired event with no explanation"
                    );
                }
            }
        }
    }
}

/// An empty fault plan with the default retry policy is byte-identical to
/// a plain run: same digest, quiet fault summary, attempts == tasks.
#[test]
fn zero_fault_plans_are_byte_identical_to_plain_runs() {
    for w in all_workloads() {
        let w = w.as_ref();
        let app = crate::support::drill_app(w);
        let schedule = app.default_schedule().clone();
        let plain = crate::support::drill_run(
            w,
            &app,
            &schedule,
            FaultPlan::none(),
            RetryPolicy::default(),
        );
        let again = crate::support::drill_run(
            w,
            &app,
            &schedule,
            FaultPlan::none(),
            RetryPolicy::default(),
        );
        assert_eq!(plain.digest(), again.digest(), "{}", w.name());
        assert!(
            plain.faults.is_quiet(),
            "{}: empty plan must leave no chaos trace in the report",
            w.name()
        );
        assert_eq!(plain.task_attempts, plain.total_tasks, "{}", w.name());
    }
}

fn assert_pareto(menu: &RecommendationMenu, context: &str) {
    assert!(!menu.options.is_empty(), "{context}: empty menu");
    for a in &menu.options {
        for b in &menu.options {
            assert!(
                !(a.predicted_time_s < b.predicted_time_s
                    && a.predicted_cost_machine_min < b.predicted_cost_machine_min
                    && a.schedule_index != b.schedule_index),
                "{context}: menu kept a dominated option"
            );
        }
    }
}

/// Full-pipeline cells: train, recommend, then simulate each recommended
/// schedule fault-free and under a mid-run executor loss (with retries).
///
/// The declared band: on a cluster of at least four machines — so one
/// lost executor is at most a quarter of capacity and of the cache — the
/// loss (i) adds less than 10% wall clock over the fault-free run, and
/// (ii) moves the prediction-relative error `|predicted − simulated| /
/// predicted` by less than 10 points. Chaos does not invalidate the
/// trained models.
#[test]
fn executor_loss_keeps_prediction_error_in_band() {
    for w in [
        &LogisticRegression as &dyn Workload,
        &SupportVectorMachine as &dyn Workload,
    ] {
        let trained = OfflineTraining::run(w, &TrainingConfig::default()).expect("training");
        let paper = w.paper_params();
        let app = w.build(&paper);
        assert_pareto(&trained.recommend(paper.e(), paper.f()), w.name());

        for (i, rs) in trained.schedules.iter().enumerate() {
            let machines = trained.machines_for(i, paper.e(), paper.f()).max(4);
            let cluster = ClusterConfig::new(machines, trained.target_spec);
            let quiet = |faults: FaultPlan, retry: RetryPolicy| {
                let mut sim = w.sim_params();
                sim.noise = NoiseParams::NONE;
                sim.cluster_jitter_s = 0.0;
                sim.faults = faults;
                sim.retry = retry;
                sim
            };
            let run = |sim| {
                Engine::new(&app, cluster, sim)
                    .run_shared(&rs.schedule, RunOptions::default())
                    .expect("paper-scale run")
            };
            let base = run(quiet(FaultPlan::none(), RetryPolicy::default()));
            let (plan, policy) = build_plan(PlanKind::ExecutorLoss, base.total_time_s, machines);
            let chaos = run(quiet(plan, policy));
            assert!(
                chaos.faults.outcomes.iter().any(|o| o.fired),
                "{} schedule {i}: the executor loss never fired",
                w.name()
            );

            let overhead = chaos.total_time_s / base.total_time_s - 1.0;
            assert!(
                (0.0..0.10).contains(&overhead),
                "{} schedule {i}: executor loss cost {:.1}% wall clock \
                 (base {:.1}s, chaos {:.1}s on {machines} machines)",
                w.name(),
                overhead * 100.0,
                base.total_time_s,
                chaos.total_time_s
            );

            let predicted = trained.time_models[i].predict(paper.e(), paper.f());
            let rel_err = |simulated: f64| ((predicted - simulated) / predicted).abs();
            let drift = (rel_err(chaos.total_time_s) - rel_err(base.total_time_s)).abs();
            assert!(
                drift < 0.10,
                "{} schedule {i}: executor loss moved prediction error by {:.1} points \
                 (base {:.1}s, chaos {:.1}s, predicted {:.1}s)",
                w.name(),
                drift * 100.0,
                base.total_time_s,
                chaos.total_time_s,
                predicted
            );
        }
    }
}

/// The extension workload families (the SQL star join and the
/// micro-batch stream) hold the same chaos-matrix invariants as the five
/// paper workloads: a tenancy-capable generator earns no exemption from
/// fault recovery.
#[test]
fn extension_families_survive_the_chaos_matrix() {
    for w in [
        &SqlStarJoin as &dyn Workload,
        &MicroBatchStream as &dyn Workload,
    ] {
        for kind in PlanKind::ALL {
            let cfg = ChaosConfig {
                kind,
                machines: 3,
                seed: 0xC4A05,
            };
            let cell = format!("{} × {}", w.name(), kind.name());
            let out =
                run_chaos(w, &cfg).unwrap_or_else(|e| panic!("cell {cell} failed to run: {e}"));
            assert!(
                out.chaos.total_time_s.is_finite() && out.chaos.total_time_s > 0.0,
                "cell {cell} did not terminate cleanly"
            );
            assert!(
                out.residency_restored(),
                "cell {cell} lost cache residency: {:#?}",
                out.residency
            );
            assert!(
                out.attempts_consistent(),
                "cell {cell}: {} attempts for {} tasks",
                out.chaos.task_attempts,
                out.chaos.total_tasks
            );
            assert!(
                out.slowdown() >= 1.0 - 1e-9,
                "cell {cell}: chaos run faster than fault-free ({:.4})",
                out.slowdown()
            );
        }
    }
}
