//! The chaos test harness: a deterministic matrix of fault-injected runs
//! through the whole stack.
//!
//! The matrix sweeps (workload × fault plan × seed) through the engine's
//! chaos drill and asserts the recovery invariants every cell must hold:
//! the run terminates, cache residency is restored through lineage, and
//! task-attempt accounting explains every retry and speculative copy.
//! Full-pipeline cells (train → recommend → simulate under faults) pin
//! the prediction-error band, `lineage` carries the promoted
//! failure-injection suite across all five workloads, `determinism`
//! proves chaos runs are bit-identical across worker-pool sizes, and
//! `degradation` drives the training pipeline's retry-then-skip path.
//!
//! Everything here runs `NoiseParams::NONE` with zero cluster jitter:
//! the injected fault plan is the *only* difference between a baseline
//! and a chaos run, so every assertion is exact, not statistical.

#[path = "../common/mod.rs"]
mod common;

mod degradation;
mod determinism;
mod lineage;
mod matrix;

/// Shared fixtures: quiet (noise-free) sim parameters and a drill-scale
/// engine run, mirroring `juggler::chaos::run_chaos` for tests that need
/// to drive the engine directly.
mod support {
    use juggler_suite::cluster_sim::{
        ClusterConfig, Engine, FaultPlan, MachineSpec, NoiseParams, RetryPolicy, RunOptions,
        RunReport, SimParams,
    };
    use juggler_suite::dagflow::{Application, Schedule};
    use juggler_suite::juggler::chaos::drill_params;
    use juggler_suite::workloads::Workload;

    /// Cluster size used by the direct-engine fixtures.
    pub const MACHINES: u32 = 3;

    /// Noise-free sim parameters with the given fault plan armed.
    pub fn quiet_sim(
        w: &dyn Workload,
        seed: u64,
        faults: FaultPlan,
        retry: RetryPolicy,
    ) -> SimParams {
        let mut sim = w.sim_params();
        sim.noise = NoiseParams::NONE;
        sim.cluster_jitter_s = 0.0;
        sim.seed = seed;
        sim.faults = faults;
        sim.retry = retry;
        sim
    }

    /// Builds the drill-scale application for a workload.
    pub fn drill_app(w: &dyn Workload) -> Application {
        w.build(&drill_params(w))
    }

    /// One quiet drill-scale run of `app` under `schedule` with the plan.
    pub fn drill_run(
        w: &dyn Workload,
        app: &Application,
        schedule: &Schedule,
        faults: FaultPlan,
        retry: RetryPolicy,
    ) -> RunReport {
        let cluster = ClusterConfig::new(MACHINES, MachineSpec::private_cluster());
        Engine::new(app, cluster, quiet_sim(w, 0xD01, faults, retry))
            .run(schedule, RunOptions::default())
            .expect("drill run succeeds")
    }
}
