//! Graceful degradation of offline training: when a training run dies on
//! every retry, the pipeline skips the grid point with an explanatory
//! note instead of aborting — the models fit on the surviving points and
//! the recommendation menu stays Pareto-consistent.
//!
//! The poisoned fixture fails deterministically: at exactly one stage-4
//! grid point it builds a degenerate application that lacks the dataset
//! the hotspot schedules persist, so `run_shared` rejects the schedule
//! on all [`TRAINING_RETRIES`] attempts.

use crate::common::TinyScoring;
use juggler_suite::cluster_sim::SimParams;
use juggler_suite::dagflow::{
    AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat,
};
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig, TRAINING_RETRIES};
use juggler_suite::workloads::{Workload, WorkloadParams};

/// [`TinyScoring`], except that the stage-4 cell at (e=2000, f=400) —
/// recognisable by its full iteration count — builds an application with
/// no shuffle stage, so the hotspot schedules' persisted dataset does not
/// exist and the cell's runs fail on every attempt.
struct PoisonedScoring;

impl PoisonedScoring {
    fn is_poison(&self, p: &WorkloadParams) -> bool {
        p.iterations == self.paper_params().iterations && p.examples == 2_000 && p.features == 400
    }
}

impl Workload for PoisonedScoring {
    fn name(&self) -> &'static str {
        "TINY-POISON"
    }

    fn paper_params(&self) -> WorkloadParams {
        TinyScoring.paper_params()
    }

    fn sim_params(&self) -> SimParams {
        TinyScoring.sim_params()
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        if self.is_poison(p) {
            let mut b = AppBuilder::new("tiny-poison");
            let logs = b.source(
                "events",
                SourceFormat::DistributedFs,
                p.examples,
                p.input_bytes(),
                p.partitions,
            );
            let parsed = b.narrow(
                "parsed",
                NarrowKind::Map,
                &[logs],
                p.examples,
                1024,
                ComputeCost::new(0.001, 0.0, 1e-9),
            );
            b.job("scan", parsed);
            b.default_schedule(Schedule::empty());
            return b.build().expect("valid poison plan");
        }
        TinyScoring.build(p)
    }
}

#[test]
fn training_skips_dead_grid_points_with_a_note() {
    let config = TrainingConfig::default();
    let (trained, timings, diagnostics) =
        OfflineTraining::run_full(&PoisonedScoring, &config).expect("training survives the poison");

    let skips: Vec<&String> = diagnostics
        .notes
        .iter()
        .filter(|n| n.contains("point skipped"))
        .collect();
    assert!(
        !skips.is_empty(),
        "the poisoned cell must be skipped with a note, got notes: {:#?}",
        diagnostics.notes
    );
    for note in &skips {
        assert!(
            note.contains("stage-4 run") && note.contains(&format!("{TRAINING_RETRIES} attempts")),
            "skip notes must name the stage and the exhausted retry budget: {note}"
        );
        assert!(
            note.contains("e=2000") && note.contains("f=400"),
            "skip notes must name the grid point: {note}"
        );
    }
    // At most one cell per schedule died — the rest of the grid survived
    // and the time models fitted on the surviving points.
    assert!(skips.len() <= trained.schedules.len());
    assert_eq!(trained.time_models.len(), trained.schedules.len());
    assert!(timings.stages.iter().any(|s| s.stage.starts_with("4:")));

    // Degraded training still yields a Pareto-consistent menu.
    let paper = PoisonedScoring.paper_params();
    let menu = trained.recommend(paper.e(), paper.f());
    assert!(!menu.options.is_empty(), "degraded menu must not be empty");
    for a in &menu.options {
        assert!(a.predicted_time_s.is_finite() && a.predicted_time_s > 0.0);
        for b in &menu.options {
            assert!(
                !(a.predicted_time_s < b.predicted_time_s
                    && a.predicted_cost_machine_min < b.predicted_cost_machine_min
                    && a.schedule_index != b.schedule_index),
                "degraded menu kept a dominated option"
            );
        }
    }

    // Degradation is deterministic: the same poison yields the same notes.
    let (_, _, again) =
        OfflineTraining::run_full(&PoisonedScoring, &config).expect("training survives again");
    assert_eq!(diagnostics.notes, again.notes);
}

#[test]
fn healthy_training_reports_no_skipped_points() {
    let (_, _, diagnostics) = OfflineTraining::run_full(&TinyScoring, &TrainingConfig::default())
        .expect("healthy training succeeds");
    assert!(
        diagnostics.notes.iter().all(|n| !n.contains("skipped")),
        "healthy runs must not report skipped points: {:#?}",
        diagnostics.notes
    );
}
