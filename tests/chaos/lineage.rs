//! The failure-injection suite, promoted into the chaos matrix: lineage
//! recovery of lost cached blocks, bounded recovery cost, honest
//! reporting of faults that never fire, and determinism of fault-injected
//! runs — now across all five paper workloads, not just LOR.

use juggler_suite::cluster_sim::{FaultPlan, RetryPolicy};
use juggler_suite::dagflow::{DatasetId, Schedule};
use juggler_suite::workloads::{all_workloads, LogisticRegression};

use crate::support::{drill_app, drill_run};

/// Losing an executor mid-run destroys its cached blocks; lineage
/// recomputes them, so every workload ends the chaos run with the same
/// per-dataset residency as the fault-free run.
#[test]
fn lineage_recovers_lost_blocks_on_every_workload() {
    for w in all_workloads() {
        let w = w.as_ref();
        let app = drill_app(w);
        let schedule = app.default_schedule().clone();
        let healthy = drill_run(
            w,
            &app,
            &schedule,
            FaultPlan::none(),
            RetryPolicy::default(),
        );
        let failed = drill_run(
            w,
            &app,
            &schedule,
            FaultPlan::executor_loss(1, healthy.total_time_s * 0.6),
            RetryPolicy::default(),
        );

        assert!(
            failed.total_time_s >= healthy.total_time_s,
            "{}: recovery cannot be free ({:.2}s vs {:.2}s)",
            w.name(),
            failed.total_time_s,
            healthy.total_time_s
        );
        for (d, h) in &healthy.cache.per_dataset {
            let f = &failed.cache.per_dataset[d];
            assert_eq!(
                f.resident_partitions,
                h.resident_partitions,
                "{}: {d} residency not restored after executor loss",
                w.name()
            );
            assert!(
                f.misses >= h.misses,
                "{}: {d} cannot have fewer misses after losing blocks",
                w.name()
            );
        }
        // Lineage recovery is recomputation: any wall-clock cost the loss
        // inflicted must be explained by extra cache misses somewhere.
        // (The loss can also be free — the machine happened to hold no
        // cached blocks — in which case nothing needs recomputing.)
        if failed.total_time_s > healthy.total_time_s {
            let misses = |r: &juggler_suite::cluster_sim::RunReport| {
                r.cache.per_dataset.values().map(|s| s.misses).sum::<u64>()
            };
            assert!(
                misses(&failed) > misses(&healthy),
                "{}: a costly executor loss must show recomputation misses",
                w.name()
            );
        }
    }
}

/// The price of an executor loss is one recomputation wave over the lost
/// partitions — a bounded slowdown, not a rerun from scratch.
#[test]
fn failure_cost_is_one_recomputation_wave() {
    let w = LogisticRegression;
    let app = drill_app(&w);
    let schedule = Schedule::persist_all([DatasetId(2)]);
    let healthy = drill_run(
        &w,
        &app,
        &schedule,
        FaultPlan::none(),
        RetryPolicy::default(),
    );
    let failed = drill_run(
        &w,
        &app,
        &schedule,
        FaultPlan::executor_loss(1, healthy.total_time_s * 0.6),
        RetryPolicy::default(),
    );
    assert!(
        failed.total_time_s > healthy.total_time_s,
        "losing a machine that holds cached blocks cannot be free"
    );
    assert!(
        failed.total_time_s < healthy.total_time_s * 1.6,
        "recovery should cost one wave, not a rerun: {:.2}s vs {:.2}s",
        failed.total_time_s,
        healthy.total_time_s
    );
    let d = DatasetId(2);
    assert!(
        failed.cache.per_dataset[&d].misses > healthy.cache.per_dataset[&d].misses,
        "the lost D2 blocks must be recomputed"
    );
}

/// A fault scheduled after the run ends must not change the run — and it
/// must be *reported* as never having fired, not silently dropped.
#[test]
fn late_failures_are_noops_and_reported_not_fired() {
    let w = LogisticRegression;
    let app = drill_app(&w);
    let schedule = app.default_schedule().clone();
    let healthy = drill_run(
        &w,
        &app,
        &schedule,
        FaultPlan::none(),
        RetryPolicy::default(),
    );
    let late = drill_run(
        &w,
        &app,
        &schedule,
        FaultPlan::executor_loss(1, healthy.total_time_s * 10.0),
        RetryPolicy::default(),
    );

    assert_eq!(late.total_time_s, healthy.total_time_s);
    assert_eq!(late.total_tasks, healthy.total_tasks);
    assert_eq!(late.task_attempts, late.total_tasks);
    assert_eq!(late.faults.outcomes.len(), 1);
    let outcome = &late.faults.outcomes[0];
    assert!(!outcome.fired, "a post-run fault cannot fire");
    assert_eq!(outcome.fired_at_s, None);
    assert!(
        outcome.detail.contains("not fired"),
        "unfired faults must be explained, got: {}",
        outcome.detail
    );
}

/// Losing a machine the cluster does not have is harmless — and the
/// report says why the event never fired.
#[test]
fn failing_a_nonexistent_machine_is_harmless() {
    let w = LogisticRegression;
    let app = drill_app(&w);
    let schedule = app.default_schedule().clone();
    let healthy = drill_run(
        &w,
        &app,
        &schedule,
        FaultPlan::none(),
        RetryPolicy::default(),
    );
    let ghost = drill_run(
        &w,
        &app,
        &schedule,
        FaultPlan::executor_loss(17, healthy.total_time_s * 0.5),
        RetryPolicy::default(),
    );
    assert_eq!(ghost.total_time_s, healthy.total_time_s);
    let outcome = &ghost.faults.outcomes[0];
    assert!(!outcome.fired);
    assert!(
        outcome.detail.contains("does not exist"),
        "ghost machines must be explained, got: {}",
        outcome.detail
    );
}

/// Fault-injected runs obey the same determinism contract as clean runs:
/// identical plan, seed, and schedule produce bit-identical reports.
#[test]
fn chaos_runs_are_deterministic() {
    let w = LogisticRegression;
    let app = drill_app(&w);
    let schedule = app.default_schedule().clone();
    let healthy = drill_run(
        &w,
        &app,
        &schedule,
        FaultPlan::none(),
        RetryPolicy::default(),
    );
    let plan = FaultPlan::executor_loss(1, healthy.total_time_s * 0.6);
    let a = drill_run(&w, &app, &schedule, plan.clone(), RetryPolicy::default());
    let b = drill_run(&w, &app, &schedule, plan, RetryPolicy::default());
    assert_eq!(a.total_time_s, b.total_time_s);
    assert_eq!(a.digest(), b.digest(), "chaos digests must be stable");
    assert_ne!(
        a.digest(),
        healthy.digest(),
        "a fired fault must be visible in the digest"
    );
}
