//! Chaos determinism across worker pools: the drill's reports — and the
//! provenance manifest of a training run executed alongside them — must
//! be bit-identical whether `JUGGLER_THREADS` is 1, 2, or 8. Faults,
//! retries, and speculative copies live inside the single-threaded
//! engine, so the worker pool must have no way to leak into a digest.
//!
//! One test function on purpose: `doctor` resets the global metrics
//! registry, and the environment variable is process-wide.

use crate::common::TinyScoring;
use juggler_suite::juggler::chaos::{run_chaos, ChaosConfig, PlanKind};
use juggler_suite::juggler::parallel::THREADS_ENV;
use juggler_suite::juggler::pipeline::TrainingConfig;
use juggler_suite::juggler::provenance::RunManifest;
use juggler_suite::workloads::Workload;

#[test]
fn chaos_runs_are_bit_identical_across_thread_counts() {
    let cfg = ChaosConfig {
        kind: PlanKind::Drill,
        machines: 3,
        seed: 0xC4A05,
    };

    let mut digests = Vec::new();
    let mut renders = Vec::new();
    let mut manifest_ids = Vec::new();
    for threads in [1_usize, 2, 8] {
        std::env::set_var(THREADS_ENV, threads.to_string());
        let out = run_chaos(&TinyScoring, &cfg).expect("drill runs");
        digests.push((out.baseline.digest(), out.chaos.digest()));
        renders.push(out.render());

        let config = TrainingConfig {
            threads,
            ..TrainingConfig::default()
        };
        let report =
            juggler_suite::juggler::doctor(&TinyScoring, &config).expect("doctor succeeds");
        let manifest = RunManifest::from_doctor(&report, &config, &TinyScoring.paper_params());
        manifest_ids.push((manifest.id(), manifest.content_hash.clone()));
    }
    std::env::remove_var(THREADS_ENV);

    for other in &digests[1..] {
        assert_eq!(
            &digests[0], other,
            "chaos run digests must not depend on the worker pool"
        );
    }
    for other in &renders[1..] {
        assert_eq!(
            &renders[0], other,
            "the rendered chaos report must not depend on the worker pool"
        );
    }
    for other in &manifest_ids[1..] {
        assert_eq!(
            &manifest_ids[0], other,
            "RunManifest ids must stay stable while chaos drills run"
        );
    }
}
