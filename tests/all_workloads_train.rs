//! The full offline pipeline must train cleanly on every evaluated
//! workload, producing sane artifacts — the "no stage amplifies errors"
//! modularity claim of §5.4's discussion.

use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::modeling::accuracy_pct;
use juggler_suite::workloads::all_workloads;

#[test]
fn every_workload_trains_with_sane_artifacts() {
    for w in all_workloads() {
        let trained = OfflineTraining::run(w.as_ref(), &TrainingConfig::default())
            .unwrap_or_else(|e| panic!("{} failed to train: {e}", w.name()));
        let expected_schedules = match w.name() {
            "PCA" => 1,
            "RFC" => 3,
            _ => 2,
        };
        assert_eq!(
            trained.schedules.len(),
            expected_schedules,
            "{}: schedule count",
            w.name()
        );
        assert_eq!(trained.time_models.len(), trained.schedules.len());
        assert!(
            (0.5..=1.0).contains(&trained.memory_factor.factor),
            "{}: memory factor {}",
            w.name(),
            trained.memory_factor.factor
        );

        // Size predictions at paper scale: > 98 % accurate for every
        // cached dataset (the Figure 13 property).
        let p = w.paper_params();
        let app = w.build(&p);
        for rs in &trained.schedules {
            for d in rs.schedule.persisted() {
                let predicted = trained.sizes.predict_dataset(d, p.e(), p.f()) as f64;
                let actual = app.dataset(d).bytes as f64;
                assert!(
                    accuracy_pct(predicted, actual) > 98.0,
                    "{} {d}: {predicted} vs {actual}",
                    w.name()
                );
            }
        }

        // Recommendations at paper scale are in range and the menu is
        // non-empty.
        let menu = trained.recommend(p.e(), p.f());
        assert!(!menu.options.is_empty(), "{}: empty menu", w.name());
        for o in menu.options.iter().chain(menu.dominated.iter()) {
            assert!(
                (1..=12).contains(&o.machines),
                "{}: {} machines",
                w.name(),
                o.machines
            );
            assert!(o.predicted_time_s.is_finite() && o.predicted_time_s > 0.0);
        }

        // Cost accounting adds up.
        let c = &trained.costs;
        assert!(
            (c.total_machine_minutes()
                - (c.optimization_machine_minutes() + c.time_models.machine_minutes))
                .abs()
                < 1e-9
        );
        assert_eq!(c.hotspot.runs, 1);
        assert_eq!(c.param_calibration.runs, 9);
        assert_eq!(c.memory_calibration.runs, 1);
        assert_eq!(c.time_models.runs, 9 * trained.schedules.len() as u32);
    }
}
