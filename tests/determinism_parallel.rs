//! The parallel experiment runner's determinism contract: training on a
//! worker pool must produce an artifact byte-identical to the sequential
//! run, because every simulated experiment owns its RNG seed and results
//! are gathered in index order.

use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::juggler::{resolve_threads, run_indexed, try_run_indexed};
use juggler_suite::workloads::{LogisticRegression, Pca, Workload};

fn config_with_threads(threads: usize) -> TrainingConfig {
    TrainingConfig {
        threads,
        ..TrainingConfig::default()
    }
}

/// Serializes a trained artifact to its canonical JSON bytes.
fn artifact_bytes(w: &dyn Workload, threads: usize) -> String {
    let trained =
        OfflineTraining::run(w, &config_with_threads(threads)).expect("training succeeds");
    serde_json::to_string_pretty(&trained).expect("artifact serializes")
}

#[test]
fn parallel_training_is_bit_identical_to_sequential() {
    let workloads: [&dyn Workload; 2] = [&Pca, &LogisticRegression];
    for w in workloads {
        let sequential = artifact_bytes(w, 1);
        for threads in [2, 4] {
            let parallel = artifact_bytes(w, threads);
            assert_eq!(
                sequential,
                parallel,
                "{}: artifact differs between threads=1 and threads={threads}",
                w.name()
            );
        }
    }
}

#[test]
fn iteration_models_are_bit_identical_to_sequential() {
    let w = Pca;
    let axis = [1u32, 2, 4];
    let trained = OfflineTraining::run(&w, &config_with_threads(1)).expect("training succeeds");
    let sequential =
        OfflineTraining::fit_iteration_models(&w, &config_with_threads(1), &trained, &axis)
            .expect("sequential fit succeeds");
    let parallel =
        OfflineTraining::fit_iteration_models(&w, &config_with_threads(4), &trained, &axis)
            .expect("parallel fit succeeds");
    let seq_json = serde_json::to_string(&sequential).unwrap();
    let par_json = serde_json::to_string(&parallel).unwrap();
    assert_eq!(seq_json, par_json);
}

#[test]
fn threads_one_takes_the_sequential_fallback() {
    // With one worker the runner never spawns: the closure observes the
    // caller's thread id on every item.
    let caller = std::thread::current().id();
    let ids = run_indexed(8, 1, |_| std::thread::current().id());
    assert!(ids.iter().all(|&id| id == caller));

    // And with several workers at least one item runs off-thread (8 items
    // across 4 workers; the work-stealing loop makes this deterministic
    // enough — workers are spawned before the caller's thread joins in).
    let results = try_run_indexed::<_, (), _>(8, 4, |i| {
        std::thread::sleep(std::time::Duration::from_millis(1));
        Ok((i, std::thread::current().id()))
    })
    .expect("infallible closure");
    assert_eq!(results.len(), 8);
    assert!(results.iter().all(|&(_, id)| id != caller));
}

#[test]
fn explicit_thread_request_wins_over_environment() {
    assert_eq!(resolve_threads(2), 2);
    assert_eq!(resolve_threads(7), 7);
    assert!(resolve_threads(0) >= 1);
}
