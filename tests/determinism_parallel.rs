//! The parallel experiment runner's determinism contract: training on a
//! worker pool must produce an artifact byte-identical to the sequential
//! run, because every simulated experiment owns its RNG seed and results
//! are gathered in index order.

use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::juggler::{resolve_threads, run_indexed, try_run_indexed};
use juggler_suite::workloads::{LogisticRegression, Pca, Workload};

fn config_with_threads(threads: usize) -> TrainingConfig {
    TrainingConfig {
        threads,
        ..TrainingConfig::default()
    }
}

/// Serializes a trained artifact to its canonical JSON bytes.
fn artifact_bytes(w: &dyn Workload, threads: usize) -> String {
    let trained =
        OfflineTraining::run(w, &config_with_threads(threads)).expect("training succeeds");
    serde_json::to_string_pretty(&trained).expect("artifact serializes")
}

#[test]
fn parallel_training_is_bit_identical_to_sequential() {
    let workloads: [&dyn Workload; 2] = [&Pca, &LogisticRegression];
    for w in workloads {
        let sequential = artifact_bytes(w, 1);
        for threads in [2, 4] {
            let parallel = artifact_bytes(w, threads);
            assert_eq!(
                sequential,
                parallel,
                "{}: artifact differs between threads=1 and threads={threads}",
                w.name()
            );
        }
    }
}

#[test]
fn iteration_models_are_bit_identical_to_sequential() {
    let w = Pca;
    let axis = [1u32, 2, 4];
    let trained = OfflineTraining::run(&w, &config_with_threads(1)).expect("training succeeds");
    let sequential =
        OfflineTraining::fit_iteration_models(&w, &config_with_threads(1), &trained, &axis)
            .expect("sequential fit succeeds");
    let parallel =
        OfflineTraining::fit_iteration_models(&w, &config_with_threads(4), &trained, &axis)
            .expect("parallel fit succeeds");
    let seq_json = serde_json::to_string(&sequential).unwrap();
    let par_json = serde_json::to_string(&parallel).unwrap();
    assert_eq!(seq_json, par_json);
}

/// Forwards to an inner workload while counting `build` calls — the DAG
/// constructions the pipeline actually performs.
struct CountingWorkload<'a> {
    inner: &'a dyn Workload,
    builds: std::sync::atomic::AtomicU32,
}

impl Workload for CountingWorkload<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn build(
        &self,
        params: &juggler_suite::workloads::WorkloadParams,
    ) -> juggler_suite::dagflow::Application {
        self.builds
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.build(params)
    }
    fn paper_params(&self) -> juggler_suite::workloads::WorkloadParams {
        self.inner.paper_params()
    }
    fn sim_params(&self) -> juggler_suite::cluster_sim::SimParams {
        self.inner.sim_params()
    }
    fn sample_params(&self) -> juggler_suite::workloads::WorkloadParams {
        self.inner.sample_params()
    }
    fn training_axes(&self) -> (Vec<f64>, Vec<f64>) {
        self.inner.training_axes()
    }
}

/// Pins the stage-4 sharing contract: per-grid-point runs share one
/// application (and with it one `EnginePrep`) across schedules and retry
/// attempts instead of cloning it per cell. LOR trains 2 schedules over a
/// 9-point grid, so builds are 1 (stage-1 sample) + 9 (stage-2 grid) +
/// 1 (stage-3 memory calibration) + 9 (stage-4, one per grid point — NOT
/// one per cell, of which there are 18). A regression that moves the
/// build back inside the per-cell or per-attempt closures breaks this
/// count immediately.
#[test]
fn grid_point_runs_share_the_app_dag() {
    let w = LogisticRegression;
    let counting = CountingWorkload {
        inner: &w,
        builds: std::sync::atomic::AtomicU32::new(0),
    };
    let trained =
        OfflineTraining::run(&counting, &config_with_threads(1)).expect("training succeeds");
    assert_eq!(trained.costs.time_models.runs, 18, "2 schedules x 9 cells");
    assert_eq!(
        counting.builds.load(std::sync::atomic::Ordering::Relaxed),
        1 + 9 + 1 + 9,
        "stage 4 must build one app per grid point, shared across schedules"
    );

    // Sharing must not change the artifact: the counting wrapper trains
    // to the same bytes as the plain workload.
    let plain = artifact_bytes(&w, 1);
    let wrapped = serde_json::to_string_pretty(&trained).expect("artifact serializes");
    assert_eq!(plain, wrapped);
}

#[test]
fn threads_one_takes_the_sequential_fallback() {
    // With one worker the runner never spawns: the closure observes the
    // caller's thread id on every item.
    let caller = std::thread::current().id();
    let ids = run_indexed(8, 1, |_| std::thread::current().id());
    assert!(ids.iter().all(|&id| id == caller));

    // And with several workers at least one item runs off-thread (8 items
    // across 4 workers; the work-stealing loop makes this deterministic
    // enough — workers are spawned before the caller's thread joins in).
    let results = try_run_indexed::<_, (), _>(8, 4, |i| {
        std::thread::sleep(std::time::Duration::from_millis(1));
        Ok((i, std::thread::current().id()))
    })
    .expect("infallible closure");
    assert_eq!(results.len(), 8);
    assert!(results.iter().all(|&(_, id)| id != caller));
}

#[test]
fn explicit_thread_request_wins_over_environment() {
    assert_eq!(resolve_threads(2), 2);
    assert_eq!(resolve_threads(7), 7);
    assert!(resolve_threads(0) >= 1);
}
