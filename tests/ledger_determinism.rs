//! Determinism contract for the run-provenance subsystem: the hashed
//! manifest *content* of a `doctor` run must be bit-identical across
//! worker-thread counts and across repeated runs — only the (unhashed)
//! envelope may record how the run was executed. The same test drives
//! the drift detector end-to-end: identical runs diff clean, a
//! perturbed model coefficient is flagged, and the ledger store files
//! and lists the manifest under its content-derived id.
//!
//! All doctor runs live in one test function: `doctor` resets the
//! global metrics registry, so concurrent doctor calls in one test
//! binary would race on the counters the manifest hashes.

mod common;

use common::TinyScoring;
use juggler_suite::juggler::pipeline::TrainingConfig;
use juggler_suite::juggler::provenance::{DiffTolerances, ManifestDiff, RunManifest};
use juggler_suite::obs::LedgerStore;
use juggler_suite::workloads::Workload;

fn manifest_at(threads: usize) -> RunManifest {
    let config = TrainingConfig {
        threads,
        ..TrainingConfig::default()
    };
    let report = juggler_suite::juggler::doctor(&TinyScoring, &config).expect("doctor succeeds");
    RunManifest::from_doctor(&report, &config, &TinyScoring.paper_params())
}

#[test]
fn manifest_content_is_bit_identical_across_threads_and_reruns() {
    let m1 = manifest_at(1);
    let m2 = manifest_at(2);
    let m8 = manifest_at(8);
    let m1_again = manifest_at(1);

    // The hashed content — canonical bytes, hash, and id — is
    // bit-identical whatever the worker pool looked like.
    for other in [&m2, &m8, &m1_again] {
        assert_eq!(
            m1.content.canonical_json(),
            other.content.canonical_json(),
            "manifest content must not depend on thread count"
        );
        assert_eq!(m1.content_hash, other.content_hash);
        assert_eq!(m1.id(), other.id());
    }
    assert_eq!(m1.content_hash.len(), 64, "full SHA-256 hex");

    // The envelope is where execution circumstances live.
    assert_eq!(m1.envelope.threads_requested, 1);
    assert_eq!(m2.envelope.threads_requested, 2);
    assert_eq!(m1.envelope.threads_resolved, 1);
    assert_eq!(m2.envelope.threads_resolved, 2);

    // Storage roundtrip preserves identity (and re-verifies the hash).
    let parsed = RunManifest::from_json(&m1.to_json()).expect("roundtrip");
    assert_eq!(parsed, m1);

    // Identical runs diff clean.
    let tol = DiffTolerances::default();
    let diff = ManifestDiff::between(&m1, &m1_again, &tol);
    assert!(!diff.has_drift(), "unexpected drift: {:#?}", diff.drifts);
    assert!(diff.render().contains("no drift"));

    // A silently perturbed time-model coefficient is drift.
    let mut perturbed = m1.clone();
    perturbed.perturb_time_coefficient(0, 0.03);
    assert_ne!(perturbed.content_hash, m1.content_hash);
    let diff = ManifestDiff::between(&m1, &perturbed, &tol);
    assert!(diff.has_drift(), "3% coefficient change must be flagged");
    assert!(
        diff.drifts.iter().any(|d| d.category == "coeff"),
        "expected a coeff drift, got {:#?}",
        diff.drifts
    );

    // The ledger store files the manifest under its id and lists it.
    let dir = std::env::temp_dir().join(format!("juggler-ledger-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = LedgerStore::new(dir.clone());
    let path = store
        .record(&m1.content_hash, &m1.to_json())
        .expect("record succeeds");
    assert_eq!(
        path.file_stem().and_then(|s| s.to_str()),
        Some(m1.id().as_str())
    );
    let runs = store.list().expect("list succeeds");
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].id, m1.id());
    assert_eq!(runs[0].workload, "TINY");
    let (_, raw) = store.load(&m1.id()).expect("load by id");
    assert_eq!(RunManifest::from_json(&raw).expect("verifies"), m1);
    let _ = std::fs::remove_dir_all(&dir);
}
