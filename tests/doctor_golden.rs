//! Golden test for `juggler doctor`'s rendered report: for a fixed tiny
//! workload the render must be byte-for-byte the committed golden file —
//! it contains no wall-clock values, so any drift is a real behaviour or
//! formatting change. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test doctor_golden` and review the diff.

mod common;

use common::TinyScoring;
use juggler_suite::juggler::pipeline::TrainingConfig;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/doctor_small.txt")
}

#[test]
fn doctor_render_matches_golden_file() {
    let report = juggler_suite::juggler::doctor(&TinyScoring, &TrainingConfig::default())
        .expect("doctor succeeds");
    let got = report.render();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test doctor_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "doctor report drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn doctor_report_covers_the_contract() {
    let report = juggler_suite::juggler::doctor(&TinyScoring, &TrainingConfig::default())
        .expect("doctor succeeds");
    let text = report.render();
    // Per-model LOO-CV winner with relative error.
    assert!(
        text.contains("size models (LOO-CV winner per dataset)"),
        "{text}"
    );
    assert!(
        text.contains("time models (LOO-CV winner per schedule)"),
        "{text}"
    );
    // Per-dataset hotspot accept/reject reasons.
    assert!(text.contains("accepted (round"), "{text}");
    // Cache counters from the simulator.
    assert!(text.contains("sim_cache_hits_total"), "{text}");
    assert!(text.contains("sim_cache_misses_total"), "{text}");
    // Predicted-vs-simulated validation with error summaries.
    assert!(text.contains("time error: mean"), "{text}");
    // One ledger row per Pareto option.
    assert_eq!(report.ledger.entries.len(), report.menu.options.len());
    assert!(!report.ledger.entries.is_empty());
}
