//! Failure injection: losing an executor mid-run costs cached blocks, and
//! the lineage machinery recovers them — "Resilient" in RDD.

use juggler_suite::cluster_sim::{
    ClusterConfig, Engine, FailureSpec, MachineSpec, NoiseParams, RunOptions, SimParams,
};
use juggler_suite::dagflow::{DatasetId, Schedule};
use juggler_suite::workloads::{LogisticRegression, Workload, WorkloadParams};

fn quiet(w: &dyn Workload) -> SimParams {
    SimParams {
        noise: NoiseParams::NONE,
        cluster_jitter_s: 0.0,
        ..w.sim_params()
    }
}

fn run_with_failure(failure: Option<FailureSpec>) -> juggler_suite::cluster_sim::RunReport {
    let w = LogisticRegression;
    let params = WorkloadParams::auto(14_000, 10_000, 6);
    let app = w.build(&params);
    let mut sim = quiet(&w);
    sim.failure = failure;
    Engine::new(
        &app,
        ClusterConfig::new(3, MachineSpec::private_cluster()),
        sim,
    )
    .run(
        &Schedule::persist_all([DatasetId(2)]),
        RunOptions::default(),
    )
    .unwrap()
}

/// The failed machine's blocks are recomputed and re-cached: full
/// residency is restored by the end of the run.
#[test]
fn lineage_recovers_lost_blocks() {
    let baseline = run_with_failure(None);
    let failed = run_with_failure(Some(FailureSpec {
        machine: 1,
        at_seconds: baseline.total_time_s * 0.75,
    }));
    let d = DatasetId(2);
    let total = {
        let w = LogisticRegression;
        w.build(&WorkloadParams::auto(14_000, 10_000, 6))
            .dataset(d)
            .partitions
    };
    let stats = &failed.cache.per_dataset[&d];
    assert_eq!(
        stats.resident_partitions, total,
        "residency restored after recomputation"
    );
    assert!(stats.evictions > 0, "the loss is visible as evictions");
    assert!(
        stats.misses > baseline.cache.per_dataset[&d].misses,
        "post-failure reads missed and recomputed"
    );
}

/// The failure costs time — but bounded: roughly one recomputation of the
/// lost partitions, not a rerun of the application.
#[test]
fn failure_cost_is_one_recomputation_wave() {
    let baseline = run_with_failure(None);
    let failed = run_with_failure(Some(FailureSpec {
        machine: 0,
        at_seconds: baseline.total_time_s * 0.75,
    }));
    assert!(
        failed.total_time_s > baseline.total_time_s,
        "failures are not free"
    );
    assert!(
        failed.total_time_s < baseline.total_time_s * 1.6,
        "failure recovery cost should be bounded: {} vs {}",
        failed.total_time_s,
        baseline.total_time_s
    );
}

/// A failure scheduled after the run ends is a no-op, and runs with
/// failures remain deterministic.
#[test]
fn late_failures_are_noops_and_runs_stay_deterministic() {
    let baseline = run_with_failure(None);
    let late = run_with_failure(Some(FailureSpec {
        machine: 2,
        at_seconds: baseline.total_time_s * 10.0,
    }));
    assert_eq!(baseline.total_time_s, late.total_time_s);
    let a = run_with_failure(Some(FailureSpec {
        machine: 1,
        at_seconds: 30.0,
    }));
    let b = run_with_failure(Some(FailureSpec {
        machine: 1,
        at_seconds: 30.0,
    }));
    assert_eq!(a.total_time_s, b.total_time_s);
    assert_eq!(a.job_times_s, b.job_times_s);
}

/// Out-of-range machine indices are tolerated (no panic, no effect).
#[test]
fn failing_a_nonexistent_machine_is_harmless() {
    let baseline = run_with_failure(None);
    let ghost = run_with_failure(Some(FailureSpec {
        machine: 99,
        at_seconds: 20.0,
    }));
    assert_eq!(baseline.total_time_s, ghost.total_time_s);
}
