//! The phase profiler's determinism contract: the *structure* of the
//! merged call tree — phase names, nesting, call counts, and counter
//! deltas — is a pure function of the work performed, so it must be
//! bit-identical no matter how many worker threads executed the
//! pipeline. Timings are host wall-clock and are deliberately excluded
//! from the structure digest.

use std::sync::Mutex;

use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::obs::prof::{profiler, Profile};
use juggler_suite::workloads::{LogisticRegression, Workload};

/// The global profiler is process-wide; tests in this binary run on
/// parallel threads, so each takes this lock before touching it.
static PROF_LOCK: Mutex<()> = Mutex::new(());

/// Trains LOR end to end (stages 1-4 plus the stage-5 menu) with the
/// profiler recording, and returns the merged profile.
fn profiled_training(threads: usize) -> Profile {
    let w = LogisticRegression;
    let config = TrainingConfig {
        threads,
        ..TrainingConfig::default()
    };
    let prof = profiler();
    prof.set_enabled(false);
    prof.reset();
    prof.enable();
    let trained = OfflineTraining::run(&w, &config).expect("training succeeds");
    let paper = w.paper_params();
    let menu = trained.recommend(paper.e(), paper.f());
    let profile = prof.take_profile();
    prof.set_enabled(false);
    assert!(!menu.options.is_empty(), "menu must not be empty");
    profile
}

#[test]
fn structure_digest_is_identical_across_thread_counts() {
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sequential = profiled_training(1);
    let base_digest = sequential.structure_digest();
    let base_structure = sequential.render_structure();
    assert!(!sequential.is_empty(), "profiled training records phases");
    for threads in [2, 8] {
        let parallel = profiled_training(threads);
        assert_eq!(
            base_digest,
            parallel.structure_digest(),
            "structure digest differs between threads=1 and threads={threads}"
        );
        assert_eq!(
            base_structure,
            parallel.render_structure(),
            "structure render differs between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn repeated_runs_reproduce_digest_and_counters() {
    let _guard = PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let first = profiled_training(2);
    let second = profiled_training(2);
    // The digest covers counter *values* too (cache hits, NNLS
    // iterations, ...): they are seed-deterministic, so two identical
    // runs must agree exactly.
    assert_eq!(first.structure_digest(), second.structure_digest());
    assert_eq!(first.render_structure(), second.render_structure());
}
