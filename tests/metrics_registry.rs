//! Metrics-registry integration tests: concurrent recording must be
//! exact, and the deterministic export must be byte-stable no matter how
//! many worker threads the training pipeline used.
//!
//! The global-registry assertions live in one test function on purpose:
//! tests in this binary run on concurrent threads, and the global
//! registry is process-wide state.

mod common;

use common::TinyScoring;
use juggler_suite::juggler::pipeline::TrainingConfig;
use juggler_suite::obs::Registry;

#[test]
fn concurrent_increments_are_exact() {
    let reg = Registry::new(true);
    let counter = reg.counter("t_total", "test counter");
    let hist = reg.histogram("t_hist", "test histogram");
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let counter = counter.clone();
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..10_000 {
                    counter.inc();
                    hist.record(t * 10_000 + i);
                }
            });
        }
    });
    assert_eq!(counter.get(), 80_000);
    assert_eq!(hist.count(), 80_000);
    let snap = reg.snapshot(false);
    assert_eq!(snap.counter("t_total"), Some(80_000));
}

#[test]
fn gauge_last_write_wins_under_contention() {
    let reg = Registry::new(true);
    let gauge = reg.gauge(
        "t_gauge",
        "test gauge",
        juggler_suite::obs::MetricClass::Deterministic,
    );
    std::thread::scope(|s| {
        for t in 0..4 {
            let gauge = gauge.clone();
            s.spawn(move || {
                for i in 0..1_000 {
                    gauge.set(f64::from(t * 1_000 + i));
                }
            });
        }
    });
    // Whatever thread wrote last, the value is one of the written ones.
    let v = gauge.get();
    assert!((0.0..4_000.0).contains(&v), "{v}");
}

/// Trains the tiny workload at 1, 2, and 8 worker threads; the
/// deterministic exports must be identical bytes each time.
#[test]
fn exports_are_byte_stable_across_thread_counts() {
    let w = TinyScoring;
    let mut baseline: Option<(String, String)> = None;
    for threads in [1usize, 2, 8] {
        let config = TrainingConfig {
            threads,
            ..TrainingConfig::default()
        };
        let report = juggler_suite::juggler::doctor(&w, &config).expect("doctor succeeds");
        let prom = report.snapshot.to_prometheus();
        let json = report.snapshot.to_json();
        assert!(
            prom.contains("sim_runs_total"),
            "export should contain simulator counters:\n{prom}"
        );
        assert!(prom.contains("hotspot_detections_total 1"));
        match &baseline {
            None => baseline = Some((prom, json)),
            Some((p0, j0)) => {
                assert_eq!(&prom, p0, "Prometheus export drifted at {threads} threads");
                assert_eq!(&json, j0, "JSON export drifted at {threads} threads");
            }
        }
    }
}
