//! Drift-drill golden for the watchtower: a synthetic 12-run history of
//! the tiny workload whose time-model coefficient is silently inflated
//! by 50% from run 8 onward must fold to `Drifted` with the CUSUM
//! naming exactly that onset run, and the rendered tree must match the
//! committed golden byte-for-byte. A clean 12-run history must stay
//! `Healthy`. The same drills drive the `juggler health` / `juggler
//! watch` binaries end-to-end to pin the exit-code contract (1 on
//! drift, 0 otherwise). Regenerate the golden with
//! `UPDATE_GOLDEN=1 cargo test --test health_golden`.

mod common;

use std::sync::OnceLock;

use common::TinyScoring;
use juggler_suite::juggler::pipeline::TrainingConfig;
use juggler_suite::juggler::provenance::RunManifest;
use juggler_suite::juggler::watchtower::Watchtower;
use juggler_suite::obs::health::Verdict;
use juggler_suite::obs::LedgerStore;
use juggler_suite::workloads::Workload;

/// The doctor run behind every drill manifest. `OnceLock` because
/// `doctor` resets the global metrics registry — concurrent doctor
/// calls inside one test binary would race on the counters.
fn base_manifest() -> &'static RunManifest {
    static BASE: OnceLock<RunManifest> = OnceLock::new();
    BASE.get_or_init(|| {
        let config = TrainingConfig::default();
        let report =
            juggler_suite::juggler::doctor(&TinyScoring, &config).expect("doctor succeeds");
        RunManifest::from_doctor(&report, &config, &TinyScoring.paper_params())
    })
}

/// A 12-run history. Every run gets a distinct sub-slack coefficient
/// nudge (so the manifests have distinct content hashes without
/// tripping any detector); from `drift_from` onward the time
/// coefficient is additionally inflated by 50% — the silent model
/// staleness the drill expects the CUSUM to catch.
fn drill(drift_from: Option<usize>) -> Vec<RunManifest> {
    (0..12)
        .map(|k| {
            let mut m = base_manifest().clone();
            let mut delta = (k + 1) as f64 * 1e-4;
            if drift_from.is_some_and(|onset| k >= onset) {
                // Keep the per-run nudge so the drifted manifests stay
                // distinct documents (distinct ids) in the ledger too.
                delta += 0.5;
            }
            m.perturb_time_coefficient(0, delta);
            m
        })
        .collect()
}

/// Files `window` into a fresh ledger at `dir` with pinned, strictly
/// increasing mtimes so the store lists it in recording order.
fn seed_store(dir: &std::path::Path, window: &[RunManifest]) {
    let _ = std::fs::remove_dir_all(dir);
    let store = LedgerStore::new(dir.to_path_buf());
    let base_time =
        std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_700_000_000);
    for (i, m) in window.iter().enumerate() {
        let path = store
            .record(&m.content_hash, &m.to_json())
            .expect("record succeeds");
        let file = std::fs::File::options()
            .write(true)
            .open(&path)
            .expect("reopen manifest");
        file.set_modified(base_time + std::time::Duration::from_secs(i as u64))
            .expect("set mtime");
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/health_drill.txt")
}

#[test]
fn drift_drill_names_the_onset_run_and_matches_the_golden() {
    let window = drill(Some(8));
    let report = Watchtower::default().fold(&window);

    match &report.verdict {
        Verdict::Drifted {
            detector,
            onset_run,
            magnitude_micro,
        } => {
            assert_eq!(detector, "cusum(coeff)");
            assert_eq!(
                onset_run,
                &window[8].id(),
                "the verdict must name the first perturbed run"
            );
            assert!(
                *magnitude_micro > 400_000,
                "a 50% coefficient inflation is a ~49% excursion past slack, got {magnitude_micro}"
            );
        }
        other => panic!("expected Drifted, got {other:?}"),
    }
    assert!(
        !report.advice.is_empty(),
        "a drifted model must come with refit advice"
    );

    let got = report.render_tree();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test health_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "health drill report drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn clean_drill_stays_healthy() {
    let report = Watchtower::default().fold(&drill(None));
    assert_eq!(report.verdict, Verdict::Healthy, "{}", report.render_tree());
    assert!(report.advice.is_empty());
    for m in &report.models {
        assert_eq!(m.verdict, Verdict::Healthy, "{}", m.name);
    }
}

#[test]
fn health_cli_exit_codes_follow_the_verdict() {
    let scratch =
        std::env::temp_dir().join(format!("juggler-health-golden-{}", std::process::id()));
    let drifted_dir = scratch.join("drifted");
    let clean_dir = scratch.join("clean");
    let reports_dir = scratch.join("reports");
    seed_store(&drifted_dir, &drill(Some(8)));
    seed_store(&clean_dir, &drill(None));

    let health = |store: &std::path::Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_juggler"))
            .args(["health", "TINY", "--store"])
            .arg(store)
            .arg("--report-store")
            .arg(&reports_dir)
            .output()
            .expect("juggler health runs")
    };
    let watch = |store: &std::path::Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_juggler"))
            .args(["watch", "--store"])
            .arg(store)
            .output()
            .expect("juggler watch runs")
    };

    // Drifted history: exit 1 and the tree names the onset run.
    let out = health(&drifted_dir);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let onset = drill(Some(8))[8].id();
    assert!(
        stdout.contains("DRIFTED cusum(coeff)") && stdout.contains(&onset),
        "stdout must name the detector and onset run:\n{stdout}"
    );

    // Clean history: exit 0 and a healthy verdict.
    let out = health(&clean_dir);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("verdict: healthy"),
        "clean drill must render healthy"
    );

    // The sweep mirrors the per-workload exit codes.
    let out = watch(&drifted_dir);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let out = watch(&clean_dir);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let _ = std::fs::remove_dir_all(&scratch);
}
