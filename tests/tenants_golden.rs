//! Golden test for `juggler tenants`'s rendered drill report: the
//! built-in two-tenant contention drill (LOR incumbent, an SQL star join
//! arriving 5 s later with double weight, RAM sized so the tenants evict
//! each other's blocks) is fully deterministic — `NoiseParams::NONE`,
//! zero jitter, fixed seeds — so the render must be byte-for-byte the
//! committed golden file. Any drift is a real behaviour or formatting
//! change in the tenancy machinery. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test tenants_golden` and review the diff.

use juggler_suite::juggler::tenants::{run_tenants, TenantsSpec};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/tenants_drill.txt")
}

#[test]
fn tenants_drill_report_matches_golden_file() {
    let outcome = run_tenants(&TenantsSpec::drill()).expect("drill succeeds");
    let got = outcome.render();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test tenants_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "tenancy drill report drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn tenants_drill_report_covers_the_contract() {
    let outcome = run_tenants(&TenantsSpec::drill()).expect("drill succeeds");
    let text = outcome.render();
    // Both tenants, with their FAIR weights and arrivals.
    assert!(text.contains("LOR"), "{text}");
    assert!(text.contains("SQLJOIN"), "{text}");
    assert!(text.contains("weight 2.0"), "{text}");
    assert!(text.contains("arrival    5.0 s"), "{text}");
    // The contention summary and the pressured hotspot audit.
    assert!(text.contains("slot wait"), "{text}");
    assert!(text.contains("residency half-life"), "{text}");
    assert!(text.contains("pressure 0.60"), "{text}");
    // Every invariant verdict present and green.
    assert!(text.contains("every tenant terminated"), "{text}");
    assert!(text.contains("cross-tenant evictions balance"), "{text}");
    assert!(text.contains("single-tenant parity"), "{text}");
    assert!(text.contains("pressured schedules monotone"), "{text}");
    assert!(!text.contains("FAIL"), "{text}");
    assert!(outcome.all_ok(), "{text}");
    // The drill actually produces contention: the incumbent suffers
    // cross-tenant evictions while the newcomer inflicts them.
    let suffered: u64 = outcome
        .tenancy
        .reports
        .iter()
        .map(|r| r.contention.cross_evictions_suffered)
        .sum();
    assert!(
        suffered > 0,
        "drill produced no cross-tenant evictions:\n{text}"
    );
}
