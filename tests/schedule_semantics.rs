//! Engine-level schedule semantics across crates: persist/unpersist
//! behaviour, default-schedule override, and eviction-policy plumbing.

use juggler_suite::cluster_sim::{
    ClusterConfig, Engine, EvictionPolicyKind, MachineSpec, NoiseParams, RunOptions, SimParams,
};
use juggler_suite::dagflow::{DatasetId, Schedule, ScheduleOp};
use juggler_suite::workloads::{LogisticRegression, Pca, Workload, WorkloadParams};

fn quiet(w: &dyn Workload) -> SimParams {
    SimParams {
        noise: NoiseParams::NONE,
        cluster_jitter_s: 0.0,
        ..w.sim_params()
    }
}

/// The Juggler engine "overwrites the developer-cached datasets with the
/// recommended schedule": running with an explicit empty schedule must
/// ignore the default persists entirely.
#[test]
fn explicit_schedule_overrides_default() {
    let w = LogisticRegression;
    let params = WorkloadParams::auto(3_500, 2_500, 3);
    let app = w.build(&params);
    assert!(!app.default_schedule().is_empty());
    let engine = Engine::new(
        &app,
        ClusterConfig::new(2, MachineSpec::private_cluster()),
        quiet(&w),
    );
    let r = engine
        .run(&Schedule::empty(), RunOptions::default())
        .unwrap();
    for (d, stats) in &r.cache.per_dataset {
        assert_eq!(
            stats.insert_attempts, 0,
            "{d} was cached despite the empty override"
        );
    }
}

/// PCA's chained unpersist schedule leaves only the last dataset resident
/// and never exceeds ~one dataset's footprint (plus a transition block).
#[test]
fn pca_unpersist_chain_caps_peak_memory() {
    let w = Pca;
    let params = w.sample_params();
    let app = w.build(&params);
    let schedule = Schedule::from_ops(vec![
        ScheduleOp::Persist(DatasetId(1)),
        ScheduleOp::Unpersist(DatasetId(1)),
        ScheduleOp::Persist(DatasetId(2)),
        ScheduleOp::Unpersist(DatasetId(2)),
        ScheduleOp::Persist(DatasetId(13)),
    ]);
    let engine = Engine::new(
        &app,
        ClusterConfig::new(1, MachineSpec::private_cluster()),
        quiet(&w),
    );
    let r = engine.run(&schedule, RunOptions::default()).unwrap();
    // End state: only D13 resident.
    assert_eq!(r.cache.per_dataset[&DatasetId(1)].resident_partitions, 0);
    assert_eq!(r.cache.per_dataset[&DatasetId(2)].resident_partitions, 0);
    assert_eq!(
        r.cache.per_dataset[&DatasetId(13)].resident_partitions,
        app.dataset(DatasetId(13)).partitions
    );
    // Peak storage ≈ one dataset plus one transition partition, far below
    // the 3-dataset sum.
    let one = app.dataset(DatasetId(13)).bytes;
    let three: u64 = [1u32, 2, 13]
        .iter()
        .map(|&i| app.dataset(DatasetId(i)).bytes)
        .sum();
    assert!(
        r.cache.peak_storage_bytes < three * 6 / 10,
        "peak {}",
        r.cache.peak_storage_bytes
    );
    assert!(r.cache.peak_storage_bytes >= one, "peak below one dataset");
}

/// Unpersisting is not free capacity-wise until the swap happens: the
/// plain two-dataset schedule peaks near the sum of both.
#[test]
fn plain_persist_pair_peaks_at_sum() {
    let w = Pca;
    let params = w.sample_params();
    let app = w.build(&params);
    let schedule = Schedule::persist_all([DatasetId(1), DatasetId(2)]);
    let engine = Engine::new(
        &app,
        ClusterConfig::new(1, MachineSpec::private_cluster()),
        quiet(&w),
    );
    let r = engine.run(&schedule, RunOptions::default()).unwrap();
    let sum = app.dataset(DatasetId(1)).bytes + app.dataset(DatasetId(2)).bytes;
    assert!(
        r.cache.peak_storage_bytes as f64 > 0.9 * sum as f64,
        "peak {} vs sum {sum}",
        r.cache.peak_storage_bytes
    );
}

/// All four eviction policies produce valid runs on a memory-constrained
/// cluster, and with a single cached dataset their costs are effectively
/// identical (the §1 claim, unit-sized).
#[test]
fn eviction_policies_agree_on_single_cached_dataset() {
    let w = LogisticRegression;
    let params = WorkloadParams::auto(14_000, 10_000, 4);
    let app = w.build(&params);
    let spec = MachineSpec {
        ram_bytes: 2_000_000_000, // M ≈ 1.02 GB < |D2| ≈ 0.63 GB + exec
        ..MachineSpec::private_cluster()
    };
    let schedule = Schedule::persist_all([DatasetId(2)]);
    let mut costs = Vec::new();
    for policy in EvictionPolicyKind::all() {
        let mut sim = quiet(&w);
        sim.eviction_policy = policy;
        let engine = Engine::new(&app, ClusterConfig::new(1, spec), sim);
        let r = engine.run(&schedule, RunOptions::default()).unwrap();
        costs.push(r.total_time_s);
    }
    let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = costs.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        (max - min) / min < 0.02,
        "policies diverge on a single cached dataset: {costs:?}"
    );
}

/// With two competing cached datasets and a far-future reuse, MRD evicts
/// the far one and beats FIFO-style mistakes — the policies are genuinely
/// plumbed through, not cosmetic.
#[test]
fn policies_are_actually_consulted() {
    // Tiny machine, two cached datasets: the hint-aware policies must
    // produce a *different* victim sequence than FIFO at least once.
    let w = LogisticRegression;
    let params = WorkloadParams::auto(14_000, 10_000, 4);
    let app = w.build(&params);
    let spec = MachineSpec {
        ram_bytes: 2_500_000_000,
        ..MachineSpec::private_cluster()
    };
    let schedule = Schedule::persist_all([DatasetId(1), DatasetId(2)]);
    let mut eviction_profiles = Vec::new();
    for policy in [EvictionPolicyKind::Fifo, EvictionPolicyKind::Mrd] {
        let mut sim = quiet(&w);
        sim.eviction_policy = policy;
        let engine = Engine::new(&app, ClusterConfig::new(1, spec), sim);
        let r = engine.run(&schedule, RunOptions::default()).unwrap();
        let profile: Vec<u64> = [1u32, 2]
            .iter()
            .map(|&i| r.cache.per_dataset[&DatasetId(i)].evictions)
            .collect();
        eviction_profiles.push(profile);
    }
    assert_ne!(
        eviction_profiles[0], eviction_profiles[1],
        "FIFO and MRD evicted identically — policy not consulted?"
    );
}
