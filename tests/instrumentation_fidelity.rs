//! Cross-crate fidelity tests: the Spark_i instrumentation pipeline must
//! reconstruct ground-truth dataset metrics from timestamps alone, for
//! every evaluated workload.

use juggler_suite::cluster_sim::{ClusterConfig, MachineSpec};
use juggler_suite::dagflow::LineageAnalysis;
use juggler_suite::instrument::profile_run;
use juggler_suite::workloads::{all_workloads, Workload};

/// Measured sizes of every intermediate dataset stay within 2 % of the
/// plan's ground truth across all five applications.
#[test]
fn measured_sizes_match_ground_truth_for_all_workloads() {
    for w in all_workloads() {
        let sample = w.sample_params();
        let app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &app,
            &app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("profiling run succeeds");
        let la = LineageAnalysis::new(&app);
        for d in la.intermediates() {
            let truth = app.dataset(d).bytes as f64;
            let measured = out
                .metrics
                .iter()
                .find(|m| m.dataset == d)
                .unwrap_or_else(|| panic!("{}: {d} unobserved", w.name()))
                .size_bytes as f64;
            let err = (measured - truth).abs() / truth.max(1.0);
            assert!(
                err < 0.02,
                "{} {d}: measured {measured}, truth {truth}",
                w.name()
            );
        }
    }
}

/// Measured computation times preserve the orderings the hotspot analysis
/// depends on: for LOR, ET(D0) ≫ ET(D11) > ET(D2) > ET(D1), mirroring the
/// §5.1 example's 2700 : 40 : 14 : 10 proportions.
#[test]
fn lor_measured_time_ratios_match_the_paper_example() {
    let w = juggler_suite::workloads::LogisticRegression;
    let sample = w.sample_params();
    let app = w.build(&sample);
    let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
    let out = profile_run(
        &app,
        &app.default_schedule().clone(),
        cluster,
        w.sim_params(),
    )
    .expect("profiling run succeeds");
    let et = |i: u32| {
        out.metrics
            .iter()
            .find(|m| m.dataset == juggler_suite::dagflow::DatasetId(i))
            .expect("observed")
            .et_seconds
    };
    let (d0, d1, d2, d11) = (et(0), et(1), et(2), et(11));
    assert!(d0 > 20.0 * d11, "read dominates: {d0} vs {d11}");
    assert!(d11 > 1.5 * d2, "features > points: {d11} vs {d2}");
    assert!(d2 > d1, "points > parse: {d2} vs {d1}");
}

/// Instrumentation overhead is small: the instrumented run is at most a
/// few percent slower than the raw run.
#[test]
fn instrumentation_overhead_is_light() {
    use juggler_suite::cluster_sim::{Engine, RunOptions};
    let w = juggler_suite::workloads::LogisticRegression;
    let sample = w.sample_params();
    let app = w.build(&sample);
    let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
    let raw = Engine::new(&app, cluster, w.sim_params())
        .run(&app.default_schedule().clone(), RunOptions::default())
        .unwrap()
        .total_time_s;
    let instrumented = profile_run(
        &app,
        &app.default_schedule().clone(),
        cluster,
        w.sim_params(),
    )
    .unwrap()
    .report
    .total_time_s;
    let overhead = instrumented / raw - 1.0;
    assert!(
        overhead < 0.10,
        "instrumentation overhead {:.1}% exceeds 10%",
        overhead * 100.0
    );
}

/// Every dataset the schedules may cache is observed by the profiler —
/// including ones "not accessible from the application layer" (the
/// paper's MLlib-internal RDDs, here the mid-pipeline datasets).
#[test]
fn profiler_observes_every_intermediate() {
    for w in all_workloads() {
        let sample = w.sample_params();
        let app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &app,
            &app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("profiling run succeeds");
        let la = LineageAnalysis::new(&app);
        for d in la.intermediates() {
            let m = out.metrics.iter().find(|m| m.dataset == d);
            assert!(m.is_some(), "{}: intermediate {d} unobserved", w.name());
            assert!(
                m.unwrap().et_seconds >= 0.0 && m.unwrap().et_seconds.is_finite(),
                "{}: {d} has invalid ET",
                w.name()
            );
        }
    }
}
