//! Golden test for the `juggler runs diff` transcript: two synthetic
//! manifests with a representative spread of drift (model winner flip,
//! coefficient drift, budget change, prediction regression, counter
//! drift) must render byte-for-byte as the committed golden file. The
//! fixture is hand-built rather than trained, so the transcript pins
//! the *diff renderer*, independent of calibration changes upstream.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test runs_diff_golden`
//! and review the diff.

use juggler_suite::juggler::pipeline::TrainingCosts;
use juggler_suite::juggler::provenance::{
    CounterRecord, DiffTolerances, ManifestContent, ManifestDiff, ManifestEnvelope, ModelRecord,
    PredictionRecord, PredictionsRecord, RunManifest, ScheduleRecord, SCHEMA_VERSION,
};
use juggler_suite::modeling::ModelSummary;
use juggler_suite::workloads::WorkloadParams;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/runs_diff_small.txt")
}

/// A fixed reference manifest, in the shape `juggler runs record TINY`
/// produces.
fn reference() -> RunManifest {
    let content = ManifestContent {
        workload: "TINY".into(),
        params: WorkloadParams {
            examples: 4_000,
            features: 800,
            iterations: 4,
            partitions: 4,
        },
        seed: 0x5EED,
        max_machines: 12,
        memory_factor: 1.08,
        schedules: vec![
            ScheduleRecord {
                index: 0,
                notation: "P(D2@D0)".into(),
                digest: "ab".repeat(32),
                benefit_s: 12.5,
                budget_bytes: 12_800_000,
            },
            ScheduleRecord {
                index: 1,
                notation: "P(D2@D0) U(D2@D4)".into(),
                digest: "ba".repeat(32),
                benefit_s: 9.75,
                budget_bytes: 25_600_000,
            },
        ],
        size_models: vec![ModelRecord {
            name: "size D2".into(),
            model: ModelSummary {
                spec: "e·f".into(),
                coeffs: vec![0.016],
                cv_error: 0.001,
            },
        }],
        time_models: vec![ModelRecord {
            name: "time [0]".into(),
            model: ModelSummary {
                spec: "1 + e·f".into(),
                coeffs: vec![30.0, 3.2e-7],
                cv_error: 0.02,
            },
        }],
        training_costs: TrainingCosts::default(),
        predictions: PredictionsRecord {
            entries: vec![PredictionRecord {
                schedule_index: 0,
                machines: 4,
                predicted_time_s: 100.0,
                actual_time_s: 104.0,
                predicted_size_bytes: 12_700_000,
                actual_peak_bytes: 12_750_000,
                report_digest: "cd".repeat(32),
            }],
            mean_time_rel_error: 0.04,
            max_time_rel_error: 0.04,
            mean_size_rel_error: 0.05,
        },
        counters: vec![
            CounterRecord {
                name: "prediction_validations_total".into(),
                value: 2,
            },
            CounterRecord {
                name: "sim_cache_hits_total".into(),
                value: 42,
            },
            CounterRecord {
                name: "sim_runs_total".into(),
                value: 11,
            },
        ],
    };
    let content_hash = content.hash();
    RunManifest {
        envelope: ManifestEnvelope {
            schema_version: SCHEMA_VERSION,
            tool: "juggler doctor".into(),
            threads_requested: 0,
            threads_resolved: 8,
        },
        content,
        content_hash,
    }
}

/// The reference with a representative spread of drift applied.
fn drifted() -> RunManifest {
    let mut m = reference();
    let c = &mut m.content;
    c.memory_factor = 1.11;
    c.schedules[1].budget_bytes = 27_200_000;
    c.size_models[0].model.spec = "e + e·f".into();
    c.size_models[0].model.coeffs = vec![120.0, 0.015];
    c.time_models[0].model.coeffs[1] = 3.36e-7;
    c.predictions.mean_time_rel_error = 0.09;
    c.predictions.max_time_rel_error = 0.09;
    c.predictions.entries[0].report_digest = "dc".repeat(32);
    c.counters[1].value = 45;
    c.counters.push(CounterRecord {
        name: "spill_events_total".into(),
        value: 3,
    });
    c.counters.sort_by(|a, b| a.name.cmp(&b.name));
    m.content_hash = m.content.hash();
    m
}

#[test]
fn runs_diff_transcript_matches_golden_file() {
    let a = reference();
    let b = drifted();
    let tol = DiffTolerances::default();

    let clean = ManifestDiff::between(&a, &a.clone(), &tol);
    assert!(!clean.has_drift());
    let diff = ManifestDiff::between(&a, &b, &tol);
    assert!(diff.has_drift());

    let got = format!(
        "$ juggler runs diff {a_id} {a_id}\n{clean}\n$ juggler runs diff {a_id} {b_id}\n{drift}",
        a_id = a.id(),
        b_id = b.id(),
        clean = clean.render(),
        drift = diff.render(),
    );

    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test runs_diff_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "runs diff transcript drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn drift_categories_cover_the_contract() {
    let diff = ManifestDiff::between(&reference(), &drifted(), &DiffTolerances::default());
    let cats: Vec<&str> = diff.drifts.iter().map(|d| d.category).collect();
    for expected in ["model", "coeff", "schedule", "prediction", "counter"] {
        assert!(cats.contains(&expected), "missing {expected}: {cats:?}");
    }
}
