//! The trace layer's determinism contract: structured traces are part of
//! the run result, so they must be bit-identical no matter how many
//! worker threads the runs are fanned across — every simulated run owns
//! its RNG seed, timestamps are quantized to integer microseconds, and
//! the exporters emit integers only.

use juggler_suite::cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions, TraceConfig};
use juggler_suite::dagflow::{DatasetId, Schedule};
use juggler_suite::juggler::run_indexed;
use juggler_suite::workloads::{LogisticRegression, Workload};

/// Runs `n` traced simulations across `threads` workers and returns each
/// run's serialized event stream (JSONL) and Chrome export.
fn traced_streams(n: usize, threads: usize) -> Vec<(String, String)> {
    let w = LogisticRegression;
    let app = w.build(&w.sample_params());
    let schedule = Schedule::persist_all([DatasetId(1)]);
    run_indexed(n, threads, |i| {
        let mut params = w.sim_params();
        params.seed = 0xBEEF ^ (i as u64);
        let engine = Engine::new(
            &app,
            ClusterConfig::new(2, MachineSpec::private_cluster()),
            params,
        );
        let report = engine
            .run(
                &schedule,
                RunOptions {
                    trace: TraceConfig::enabled(),
                    ..RunOptions::default()
                },
            )
            .expect("run succeeds");
        let trace = report.trace.expect("trace enabled");
        (trace.to_jsonl(), trace.to_chrome_json("determinism"))
    })
}

#[test]
fn traced_runs_emit_identical_event_streams_at_any_thread_count() {
    let sequential = traced_streams(6, 1);
    assert!(!sequential.is_empty());
    assert!(sequential
        .iter()
        .all(|(jsonl, chrome)| { !jsonl.is_empty() && chrome.starts_with('{') }));
    for threads in [2, 8] {
        let parallel = traced_streams(6, threads);
        assert_eq!(
            sequential, parallel,
            "trace streams differ between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn repeated_traced_runs_are_bit_identical() {
    let a = traced_streams(2, 1);
    let b = traced_streams(2, 1);
    assert_eq!(a, b);
}
