//! Golden test for the Chrome `trace_event` exporter: a fixed small app
//! under zero noise must export byte-for-byte the committed golden file.
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test trace_golden` after
//! an intentional format change, and review the diff.

use juggler_suite::cluster_sim::{
    ClusterConfig, Engine, MachineSpec, NoiseParams, RunOptions, SimParams, TraceConfig,
};
use juggler_suite::dagflow::{
    AppBuilder, ComputeCost, DatasetId, NarrowKind, Schedule, SourceFormat, WideKind,
};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_small.json")
}

/// The run that produced the golden: a 2-iteration cached app on one
/// 2-core machine, all noise off.
fn export() -> String {
    let mut b = AppBuilder::new("golden");
    let src = b.source("in", SourceFormat::DistributedFs, 1_000, 80_000_000, 4);
    let parsed = b.narrow(
        "parsed",
        NarrowKind::Map,
        &[src],
        1_000,
        60_000_000,
        ComputeCost::new(0.02, 1e-5, 2e-9),
    );
    for i in 0..2 {
        let g = b.wide_with_partitions(
            format!("g{i}"),
            WideKind::TreeAggregate,
            &[parsed],
            1,
            1024,
            1,
            ComputeCost::new(0.01, 0.0, 1e-9),
        );
        b.job("agg", g);
    }
    let app = b.build().unwrap();
    let params = SimParams {
        noise: NoiseParams::NONE,
        cluster_jitter_s: 0.0,
        seed: 7,
        ..SimParams::default()
    };
    let spec = MachineSpec {
        cores: 2,
        ..MachineSpec::paper_example()
    };
    let engine = Engine::new(&app, ClusterConfig::new(1, spec), params);
    let report = engine
        .run(
            &Schedule::persist_all([DatasetId(1)]),
            RunOptions {
                trace: TraceConfig::enabled(),
                ..RunOptions::default()
            },
        )
        .expect("run succeeds");
    report
        .trace
        .expect("trace enabled")
        .to_chrome_json("golden small run")
}

#[test]
fn chrome_export_matches_golden_file() {
    let got = export();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test trace_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "Chrome export drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_export_is_parseable_json_with_driver_metadata() {
    let got = export();
    let parsed: serde_json::Value = serde_json::from_str(&got).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .expect("traceEvents key")
        .expect_array("traceEvents")
        .expect("array");
    assert!(!events.is_empty());
    assert!(got.contains("\"displayTimeUnit\":\"ms\""));
    assert!(got.contains("process_name"));
}
