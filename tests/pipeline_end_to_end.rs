//! End-to-end offline training (Figure 8) followed by the §5.5
//! recommendation flow, validated against actual simulated runs.

use juggler_suite::cluster_sim::{ClusterConfig, Engine, RunOptions};
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::modeling::accuracy_pct;
use juggler_suite::workloads::{
    LogisticRegression, SupportVectorMachine, Workload, WorkloadParams,
};

#[test]
fn lor_training_produces_usable_artifact() {
    let w = LogisticRegression;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    assert_eq!(trained.workload, "LOR");
    assert_eq!(trained.schedules.len(), 2, "Table 2: two LOR schedules");
    assert_eq!(trained.time_models.len(), 2);
    assert!(trained.memory_factor.factor >= 0.5 && trained.memory_factor.factor <= 1.0);
    // Training cost bookkeeping: 1 + 9 + 1 + 18 runs.
    assert_eq!(trained.costs.hotspot.runs, 1);
    assert_eq!(trained.costs.param_calibration.runs, 9);
    assert_eq!(trained.costs.memory_calibration.runs, 1);
    assert_eq!(trained.costs.time_models.runs, 18);
    assert!(trained.costs.total_machine_minutes() > 0.0);

    // The artifact round-trips through serde (offline training is reused
    // across runs).
    let json = serde_json::to_string(&trained).unwrap();
    let back: juggler_suite::juggler::TrainedJuggler = serde_json::from_str(&json).unwrap();
    assert_eq!(back.schedules.len(), trained.schedules.len());
}

#[test]
fn lor_size_prediction_matches_actual_runs() {
    let w = LogisticRegression;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    let paper = w.paper_params();
    let app = w.build(&paper);
    // Predicted vs ground-truth sizes of the cached datasets (Figure 13's
    // claim: worst-case error 0.91 %).
    for rs in &trained.schedules {
        for d in rs.schedule.persisted() {
            let predicted = trained.sizes.predict_dataset(d, paper.e(), paper.f()) as f64;
            let actual = app.dataset(d).bytes as f64;
            let acc = accuracy_pct(predicted, actual);
            assert!(acc > 98.0, "{d}: predicted {predicted}, actual {actual}");
        }
    }
}

#[test]
fn lor_recommendation_menu_is_pareto_and_plausible() {
    let w = LogisticRegression;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    let paper = w.paper_params();
    let menu = trained.recommend(paper.e(), paper.f());
    assert!(!menu.options.is_empty());
    for o in &menu.options {
        assert!(o.machines >= 1 && o.machines <= 12);
        assert!(o.predicted_time_s > 0.0);
        assert!(o.predicted_cost_machine_min > 0.0);
    }
    // No option dominates another among the kept set.
    for a in &menu.options {
        for b in &menu.options {
            assert!(
                !(a.predicted_time_s < b.predicted_time_s
                    && a.predicted_cost_machine_min < b.predicted_cost_machine_min
                    && a.schedule_index != b.schedule_index),
                "dominated option kept"
            );
        }
    }
}

#[test]
fn lor_time_prediction_accuracy_is_high() {
    let w = LogisticRegression;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    let paper = w.paper_params();
    let app = w.build(&paper);
    // Run each schedule on its recommended configuration and compare
    // against the prediction (Figure 12: Juggler ≈ 90 % accurate).
    for (i, rs) in trained.schedules.iter().enumerate() {
        let machines = trained.machines_for(i, paper.e(), paper.f());
        let cluster = ClusterConfig::new(machines, trained.target_spec);
        let engine = Engine::new(&app, cluster, w.sim_params());
        let report = engine.run(&rs.schedule, RunOptions::default()).unwrap();
        let predicted = trained.time_models[i].predict(paper.e(), paper.f());
        let acc = accuracy_pct(predicted, report.total_time_s);
        assert!(
            acc > 75.0,
            "schedule {i} ({}): predicted {predicted:.1}s, actual {:.1}s (acc {acc:.1}%)",
            rs.schedule,
            report.total_time_s
        );
    }
}

#[test]
fn svm_training_is_deterministic() {
    let w = SupportVectorMachine;
    let cfg = TrainingConfig::default();
    let a = OfflineTraining::run(&w, &cfg).unwrap();
    let b = OfflineTraining::run(&w, &cfg).unwrap();
    assert_eq!(a.schedules.len(), b.schedules.len());
    assert_eq!(a.memory_factor.factor, b.memory_factor.factor);
    for (x, y) in a.time_models.iter().zip(&b.time_models) {
        assert_eq!(x.model.coeffs, y.model.coeffs);
    }
}

#[test]
fn svm_memory_factor_leaves_room_for_execution() {
    let w = SupportVectorMachine;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    // §2.2: SVM leaves ~80 % of M for caching. Our simulation should land
    // well inside (0.5, 1.0) — not pinned at either clamp.
    let f = trained.memory_factor.factor;
    assert!(f > 0.55 && f < 0.999, "memory factor {f}");
}

#[test]
fn recommendation_scales_with_parameters() {
    let w = SupportVectorMachine;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    let small = trained.recommend(10_000.0, 20_000.0);
    let big = trained.recommend(40_000.0, 80_000.0);
    let s = small.cheapest().expect("menu non-empty");
    let b = big.cheapest().expect("menu non-empty");
    assert!(b.predicted_size_bytes > s.predicted_size_bytes);
    assert!(b.machines >= s.machines);
    assert!(b.predicted_time_s > s.predicted_time_s);
}

#[test]
fn sample_params_stay_small() {
    for w in juggler_suite::workloads::all_workloads() {
        let s = w.sample_params();
        let p = w.paper_params();
        assert!(
            s.input_bytes() <= p.input_bytes() / 3,
            "{} sample too big",
            w.name()
        );
        assert!(s.iterations <= 3);
        let _ = WorkloadParams::auto(s.examples, s.features, s.iterations);
    }
}
