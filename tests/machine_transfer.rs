//! §6.2 integration: optimization models reuse across machine types, and
//! the probe-based prediction bridge.

use juggler_suite::cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions};
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::juggler::{InstanceCatalog, TransferModel};
use juggler_suite::workloads::{LogisticRegression, Workload, WorkloadParams};

#[test]
fn machine_counts_scale_inversely_with_memory() {
    let w = LogisticRegression;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    let p = w.paper_params();
    let small = MachineSpec {
        ram_bytes: 8_000_000_000,
        ..trained.target_spec
    };
    let big = MachineSpec {
        ram_bytes: 64_000_000_000,
        ..trained.target_spec
    };
    let menu_small = trained.recommend_on(p.e(), p.f(), &small, None);
    let menu_big = trained.recommend_on(p.e(), p.f(), &big, None);
    let pick = |menu: &juggler_suite::juggler::RecommendationMenu| {
        menu.options
            .iter()
            .chain(menu.dominated.iter())
            .find(|o| o.schedule_index == 0)
            .expect("schedule 0 present")
            .machines
    };
    assert!(
        pick(&menu_small) > pick(&menu_big),
        "smaller machines need more of them: {} vs {}",
        pick(&menu_small),
        pick(&menu_big)
    );
    // Eq. 6 consistency: half the per-machine cache ⇒ at least double the
    // count (up to the ceiling).
    assert!(pick(&menu_big) >= 1);
}

#[test]
fn transfer_model_bridges_a_slow_machine_type() {
    let w = LogisticRegression;
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).unwrap();
    let p = w.paper_params();
    let catalog = InstanceCatalog::aws_like();
    let budget = catalog.get("t.budget").expect("catalog entry");

    let (e_axis, f_axis) = w.training_axes();
    let candidates: Vec<(f64, f64)> = e_axis
        .iter()
        .flat_map(|&e| f_axis.iter().map(move |&f| (e, f)))
        .collect();
    let transfer = trained.fit_transfer(&candidates, 3, &budget.spec, |e, f, m| {
        let params = WorkloadParams::auto(e as u64, f as u64, p.iterations);
        let app = w.build(&params);
        let mut sim = w.sim_params();
        sim.seed = 0x1234 ^ (e as u64);
        Engine::new(&app, ClusterConfig::new(m, budget.spec), sim)
            .run(&trained.schedules[0].schedule, RunOptions::default())
            .unwrap()
            .total_time_s
    });
    // β may land either side of 1: the type is slower per machine, but
    // Eq. 6 gives it more machines (12 GB vs 16 GB RAM). What matters is a
    // physical, finite bridge.
    assert!(
        transfer.beta > 0.0 && transfer.beta.is_finite(),
        "β = {}",
        transfer.beta
    );
    assert!(transfer.alpha >= 0.0);

    // Validate the bridged prediction at paper scale.
    let machines = trained
        .recommend_on(p.e(), p.f(), &budget.spec, Some(&transfer))
        .options
        .first()
        .expect("non-empty menu")
        .machines;
    let app = w.build(&p);
    let mut sim = w.sim_params();
    sim.seed = 0x9999;
    let actual = Engine::new(&app, ClusterConfig::new(machines, budget.spec), sim)
        .run(&trained.schedules[0].schedule, RunOptions::default())
        .unwrap()
        .total_time_s;
    let base = trained.time_models[0].predict(p.e(), p.f());
    let bridged = transfer.predict(base);
    let err_bridged = (bridged - actual).abs() / actual;
    let err_naive = (base - actual).abs() / actual;
    assert!(
        err_bridged < err_naive,
        "bridge must beat naive reuse: {err_bridged:.2} vs {err_naive:.2}"
    );
    assert!(err_bridged < 0.35, "bridged error {err_bridged:.2}");
}

#[test]
fn transfer_model_is_serializable() {
    let tm = TransferModel {
        alpha: 3.0,
        beta: 1.2,
    };
    let json = serde_json::to_string(&tm).unwrap();
    let back: TransferModel = serde_json::from_str(&json).unwrap();
    assert_eq!(tm, back);
}
