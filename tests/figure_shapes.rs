//! Shape-level regression tests for the headline evaluation claims, on
//! reduced-iteration variants so they stay fast outside release mode.

use juggler_suite::cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions};
use juggler_suite::dagflow::{DatasetId, Schedule};
use juggler_suite::workloads::{
    LinearRegression, MicroBatchStream, SqlStarJoin, SupportVectorMachine, Workload, WorkloadParams,
};

fn run(
    w: &dyn Workload,
    params: &WorkloadParams,
    schedule: &Schedule,
    machines: u32,
    spec: MachineSpec,
) -> juggler_suite::cluster_sim::RunReport {
    let app = w.build(params);
    let mut sim = w.sim_params();
    sim.seed = 7 ^ u64::from(machines);
    Engine::new(&app, ClusterConfig::new(machines, spec), sim)
        .run(
            schedule,
            RunOptions {
                collect_traces: false,
                partition_skew: 0.15,
                ..RunOptions::default()
            },
        )
        .unwrap()
}

/// Figure 2's areas: with the developer-cached dataset exceeding small
/// clusters' memory, cost falls steeply until the cache fits (area A),
/// reaches a minimum (area C), then rises while time keeps falling
/// (area B).
#[test]
fn svm_cost_curve_has_areas_a_b_c() {
    let w = SupportVectorMachine;
    // Figure 2 geometry at 10 iterations to keep the test quick.
    let params = WorkloadParams::auto(100_000, 80_000, 10);
    let spec = MachineSpec::paper_example();
    let schedule = w.build(&params).default_schedule().clone();
    let app = w.build(&params);
    let cached = DatasetId(2);
    let total = app.dataset(cached).partitions;

    let runs: Vec<_> = [1u32, 4, 7, 12]
        .iter()
        .map(|&m| run(&w, &params, &schedule, m, spec))
        .collect();
    let cost: Vec<f64> = runs.iter().map(|r| r.cost_machine_minutes()).collect();
    let time: Vec<f64> = runs.iter().map(|r| r.total_time_s).collect();

    // Area A: eviction-driven costs fall as machines are added.
    assert!(cost[0] > cost[1] && cost[1] > cost[2], "area A: {cost:?}");
    // Area C at ~7 machines: cheaper than both 4 and 12.
    assert!(cost[2] < cost[3], "area B rises: {cost:?}");
    // Area B: time still falls.
    assert!(time[3] < time[2], "area B time falls: {time:?}");
    // Eviction fractions: heavy at 1 machine, zero once the cache fits.
    let ev1 = runs[0].cache.evicted_fraction(cached, total);
    let ev7 = runs[2].cache.evicted_fraction(cached, total);
    assert!(ev1 > 0.7, "eviction at 1 machine: {ev1}");
    assert!(ev7 < 0.02, "no eviction at 7 machines: {ev7}");
    // The 1-machine catastrophe: an order of magnitude above optimal.
    assert!(
        cost[0] / cost[2] > 3.0,
        "1-machine cost blowup: {:.1}x",
        cost[0] / cost[2]
    );
}

/// Figure 1: caching LIR's parsed input roughly halves execution time at
/// every configuration.
#[test]
fn lir_caching_halves_time() {
    let w = LinearRegression;
    let params = WorkloadParams::auto(40_000, 120_000, 5);
    let spec = MachineSpec::private_cluster();
    for machines in [2u32, 6, 12] {
        let cold = run(&w, &params, &Schedule::empty(), machines, spec);
        let hot = run(
            &w,
            &params,
            &Schedule::persist_all([DatasetId(1)]),
            machines,
            spec,
        );
        let ratio = hot.total_time_s / cold.total_time_s;
        assert!(
            (0.25..0.85).contains(&ratio),
            "{machines} machines: time ratio {ratio}"
        );
    }
}

/// Recompute tasks are dramatically slower than cached reads (the 97x
/// observation): compare steady-state per-iteration cache behaviour.
#[test]
fn recompute_dominates_evicted_iterations() {
    let w = SupportVectorMachine;
    let params = WorkloadParams::auto(100_000, 80_000, 6);
    let spec = MachineSpec::paper_example();
    let schedule = w.build(&params).default_schedule().clone();
    let starved = run(&w, &params, &schedule, 1, spec);
    let fit = run(&w, &params, &schedule, 7, spec);
    // Per-machine-normalized iteration time ratio.
    let per_machine = |r: &juggler_suite::cluster_sim::RunReport| {
        r.cost_machine_seconds() / f64::from(r.machines)
    };
    assert!(
        per_machine(&starved) > 5.0 * per_machine(&fit) / 7.0,
        "starved {} vs fit {}",
        per_machine(&starved),
        per_machine(&fit)
    );
}

/// The SQL star join family: the fan-in join chain is the reuse hotspot.
/// Caching the star output (its developer default) must beat running
/// cold, and once the cluster holds the star no partition is evicted.
#[test]
fn sqljoin_star_caching_pays_off() {
    let w = SqlStarJoin;
    let params = WorkloadParams::auto(30_000, 15_000, 8);
    let spec = MachineSpec::private_cluster();
    let app = w.build(&params);
    let star = DatasetId(7);
    assert_eq!(
        app.dataset(star).parents.len(),
        2,
        "the star is a two-parent join"
    );
    assert_eq!(
        app.jobs().len(),
        params.iterations as usize,
        "one job per query"
    );

    let schedule = app.default_schedule().clone();
    for machines in [3u32, 6] {
        let cold = run(&w, &params, &Schedule::empty(), machines, spec);
        let hot = run(&w, &params, &schedule, machines, spec);
        let ratio = hot.total_time_s / cold.total_time_s;
        assert!(
            ratio < 0.9,
            "{machines} machines: caching the star must pay off, ratio {ratio}"
        );
        let evicted = hot
            .cache
            .evicted_fraction(star, app.dataset(star).partitions);
        assert!(
            evicted < 0.02,
            "{machines} machines: star evicted {evicted}"
        );
    }
}

/// The micro-batch stream family: every batch joins the same static
/// state table, so caching it (the developer default) must pay off and
/// steady-state batches must run in near-constant time — the streaming
/// shape, not the iterative-convergence shape.
#[test]
fn stream_batches_are_flat_with_cached_state() {
    let w = MicroBatchStream;
    let params = WorkloadParams::auto(40_000, 10_000, 10);
    let spec = MachineSpec::private_cluster();
    let app = w.build(&params);
    let state = DatasetId(1);

    let schedule = app.default_schedule().clone();
    let cold = run(&w, &params, &Schedule::empty(), 3, spec);
    let hot = run(&w, &params, &schedule, 3, spec);
    assert!(
        hot.total_time_s < cold.total_time_s,
        "caching the state table must pay off: {} vs {}",
        hot.total_time_s,
        cold.total_time_s
    );
    let evicted = hot
        .cache
        .evicted_fraction(state, app.dataset(state).partitions);
    assert!(evicted < 0.02, "state evicted {evicted}");

    // After the first batch warms the state, batch times are flat — the
    // streaming shape. Checked on a noise-free run so the bound is about
    // the workload's structure, not straggler luck.
    let mut quiet_sim = w.sim_params();
    quiet_sim.noise = juggler_suite::cluster_sim::NoiseParams::NONE;
    quiet_sim.cluster_jitter_s = 0.0;
    let quiet = Engine::new(&app, ClusterConfig::new(3, spec), quiet_sim)
        .run(&schedule, RunOptions::default())
        .unwrap();
    let steady = &quiet.job_times_s[1..];
    let fastest = steady.iter().cloned().fold(f64::INFINITY, f64::min);
    let slowest = steady.iter().cloned().fold(0.0, f64::max);
    assert!(
        slowest <= 1.1 * fastest,
        "steady-state batches not flat: {steady:?}"
    );
}
