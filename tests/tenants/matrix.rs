//! The tenancy matrix: (workload pair × weight ratio × memory pressure
//! × seed) cells, each asserting the invariants a multi-tenant run must
//! never lose, plus a thread-count stability sweep proving tenancy
//! digests are bit-identical under any `JUGGLER_THREADS` setting.

use juggler_suite::cluster_sim::TenancyReport;
use juggler_suite::juggler::parallel::THREADS_ENV;
use juggler_suite::workloads::{
    KMeans, LogisticRegression, MicroBatchStream, SqlStarJoin, Workload,
};

use crate::support;

/// The two pairs under test: the heavyweight contention pair the drill
/// golden pins (iterative ML incumbent vs SQL star join) and the two
/// extension families against each other (micro-batch streaming vs
/// k-means), so both new workload generators get a tenancy row.
fn pairs() -> Vec<(Box<dyn Workload>, Box<dyn Workload>)> {
    vec![
        (Box::new(LogisticRegression), Box::new(SqlStarJoin)),
        (Box::new(MicroBatchStream), Box::new(KMeans::default())),
    ]
}

/// Everything a cell must satisfy regardless of where it sits in the
/// grid. `cell` carries the coordinates into every panic message.
fn assert_cell_invariants(tr: &TenancyReport, jobs: &[usize; 2], cell: &str) {
    assert_eq!(tr.reports.len(), 2, "{cell}: one report per tenant");
    assert!(
        tr.cross_evictions_balance(),
        "{cell}: eviction attribution lost an event"
    );
    let mut last_departure: f64 = 0.0;
    for (ti, r) in tr.reports.iter().enumerate() {
        assert!(
            r.total_time_s.is_finite() && r.total_time_s > 0.0,
            "{cell}: tenant {ti} did not terminate cleanly"
        );
        assert_eq!(
            r.job_times_s.len(),
            jobs[ti],
            "{cell}: tenant {ti} skipped jobs"
        );
        // Attempt accounting: every launched attempt is a first run, a
        // retry, or a speculative copy — even though these cells are
        // fault-free, the general ledger must balance.
        assert_eq!(
            r.task_attempts,
            r.total_tasks + r.faults.retried_attempts + r.faults.speculative_launched,
            "{cell}: tenant {ti} attempt accounting broken"
        );
        assert_eq!(r.contention.tenant, ti as u32, "{cell}");
        assert_eq!(r.contention.tenants, 2, "{cell}");
        assert!(
            !r.contention.is_quiet(),
            "{cell}: tenant {ti} must be marked as a multi-tenant run"
        );
        assert!(r.contention.slot_wait_s >= 0.0, "{cell}");
        last_departure = last_departure.max(r.contention.arrival_offset_s + r.total_time_s);
    }
    assert!(
        (tr.makespan_s - last_departure).abs() < 1e-9,
        "{cell}: makespan {} is not the last departure {}",
        tr.makespan_s,
        last_departure
    );
}

#[test]
fn tenancy_matrix_holds_invariants_in_every_cell() {
    for (a, b) in &pairs() {
        let jobs = [
            support::drill_app(a.as_ref()).jobs().len(),
            support::drill_app(b.as_ref()).jobs().len(),
        ];
        for &(wa, wb) in &[(1.0, 1.0), (1.0, 2.0)] {
            for &(ram, ram_name) in &[(support::AMPLE_RAM, "ample"), (support::TIGHT_RAM, "tight")]
            {
                for &seed in &[0xA1_u64, 0x5EED] {
                    let cell = format!(
                        "{}+{} weights {wa}:{wb} ram {ram_name} seed {seed:#x}",
                        a.name(),
                        b.name()
                    );
                    let tr = support::pair_run(a.as_ref(), b.as_ref(), wa, wb, ram, seed);
                    assert_cell_invariants(&tr, &jobs, &cell);

                    let suffered: u64 = tr
                        .reports
                        .iter()
                        .map(|r| r.contention.cross_evictions_suffered)
                        .sum();
                    if ram == support::AMPLE_RAM {
                        // A pool that fits everything never cross-evicts.
                        assert_eq!(suffered, 0, "{cell}: ample memory must not cross-evict");
                    }
                }
            }
        }
    }
}

#[test]
fn tight_memory_forces_cross_tenant_evictions() {
    // The drill pair's cached datasets overflow the tight pool by
    // construction, so contention must be real — in every weight ratio
    // and for every seed, not just the golden drill's.
    let (a, b) = (LogisticRegression, SqlStarJoin);
    for &(wa, wb) in &[(1.0, 1.0), (1.0, 2.0)] {
        for &seed in &[0xA1_u64, 0x5EED] {
            let tr = support::pair_run(&a, &b, wa, wb, support::TIGHT_RAM, seed);
            let suffered: u64 = tr
                .reports
                .iter()
                .map(|r| r.contention.cross_evictions_suffered)
                .sum();
            assert!(
                suffered > 0,
                "weights {wa}:{wb} seed {seed:#x}: tight pool produced no cross-tenant evictions"
            );
        }
    }
}

/// Worker-pool sizes must not leak into tenancy results: the interleaved
/// scheduler is strictly sequential, so per-tenant digests and the
/// makespan are bit-identical at every `JUGGLER_THREADS` setting.
///
/// One test function (not a matrix of them): the env var is
/// process-wide, so the sweep must own it for its whole duration.
#[test]
fn tenancy_digests_are_stable_across_thread_counts() {
    let (a, b) = (LogisticRegression, SqlStarJoin);
    let mut baseline: Option<(Vec<String>, u64)> = None;
    for threads in [1_usize, 2, 8] {
        std::env::set_var(THREADS_ENV, threads.to_string());
        let tr = support::pair_run(&a, &b, 1.0, 2.0, support::TIGHT_RAM, 0xA1);
        let digests: Vec<String> = tr.reports.iter().map(|r| r.digest()).collect();
        let fingerprint = (digests, tr.makespan_s.to_bits());
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(base) => assert_eq!(
                *base, fingerprint,
                "tenancy result drifted at JUGGLER_THREADS={threads}"
            ),
        }
    }
    std::env::remove_var(THREADS_ENV);
}
