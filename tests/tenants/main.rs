//! The tenancy test harness: a deterministic matrix of multi-tenant
//! simulations through the whole stack.
//!
//! `matrix` sweeps (workload pair × weight ratio × memory pressure ×
//! seed) through [`TenantSet`] runs and asserts the invariants every
//! cell must hold: both tenants terminate, task-attempt accounting
//! balances, cross-tenant eviction attribution conserves events, and
//! the global makespan is exactly the last active departure. `fairness`
//! pins the FAIR slot-sharing contract with twin tenants (equal weights
//! share equally, heavier weights never finish later, sharing never
//! beats running alone), and `isolation` proves the single-tenant path
//! is byte-identical to the plain engine while ample memory keeps each
//! tenant's cache behaviour indistinguishable from its solo run.
//!
//! Everything here runs `NoiseParams::NONE` with zero cluster jitter:
//! tenancy (weights, arrivals, the shared pool) is the *only*
//! difference between cells, so every assertion is exact, not
//! statistical.

mod fairness;
mod isolation;
mod matrix;

/// Shared fixtures: quiet (noise-free) sim parameters, drill-scale
/// applications, and a two-tenant runner mirroring the shapes
/// `juggler::tenants::run_tenants` drives in production.
mod support {
    use std::sync::Arc;

    use juggler_suite::cluster_sim::{
        ClusterConfig, MachineSpec, NoiseParams, RunOptions, SimParams, TenancyReport, Tenant,
        TenantSet,
    };
    use juggler_suite::dagflow::Application;
    use juggler_suite::juggler::chaos::drill_params;
    use juggler_suite::juggler::tenants::DRILL_RAM_BYTES;
    use juggler_suite::workloads::Workload;

    /// Cluster size used by every tenancy fixture.
    pub const MACHINES: u32 = 3;

    /// Per-machine RAM that holds every cell's cached datasets with room
    /// to spare: the "no memory pressure" arm of the matrix.
    pub const AMPLE_RAM: u64 = 16_000_000_000;

    /// Per-machine RAM sized so drill-scale tenants overflow the shared
    /// pool and evict each other: the "tight memory" arm.
    pub const TIGHT_RAM: u64 = DRILL_RAM_BYTES;

    /// Seconds the second tenant of [`pair_run`] arrives after the first
    /// — long enough for the incumbent to populate the shared pool.
    pub const LATE_ARRIVAL_S: f64 = 5.0;

    /// Noise-free sim parameters for a workload.
    pub fn quiet_sim(w: &dyn Workload, seed: u64) -> SimParams {
        let mut sim = w.sim_params();
        sim.noise = NoiseParams::NONE;
        sim.cluster_jitter_s = 0.0;
        sim.seed = seed;
        sim
    }

    /// Builds the drill-scale application for a workload.
    pub fn drill_app(w: &dyn Workload) -> Application {
        w.build(&drill_params(w))
    }

    /// The shared cluster with the given per-machine RAM.
    pub fn cluster(ram_bytes: u64) -> ClusterConfig {
        ClusterConfig::new(
            MACHINES,
            MachineSpec {
                ram_bytes,
                ..MachineSpec::private_cluster()
            },
        )
    }

    /// Runs `a` (weight `weight_a`, arriving at 0) against `b` (weight
    /// `weight_b`, arriving [`LATE_ARRIVAL_S`] later) on a shared
    /// cluster, each under its developer-default schedule and a
    /// tenant-indexed seed — the same recipe as the `juggler tenants`
    /// drill.
    pub fn pair_run(
        a: &dyn Workload,
        b: &dyn Workload,
        weight_a: f64,
        weight_b: f64,
        ram_bytes: u64,
        seed: u64,
    ) -> TenancyReport {
        let app_a = drill_app(a);
        let app_b = drill_app(b);
        let set = TenantSet {
            cluster: cluster(ram_bytes),
            tenants: vec![
                Tenant {
                    weight: weight_a,
                    ..Tenant::new(
                        &app_a,
                        Arc::new(app_a.default_schedule().clone()),
                        quiet_sim(a, seed),
                    )
                },
                Tenant {
                    weight: weight_b,
                    arrival_offset_s: LATE_ARRIVAL_S,
                    ..Tenant::new(
                        &app_b,
                        Arc::new(app_b.default_schedule().clone()),
                        quiet_sim(b, seed.wrapping_add(1)),
                    )
                },
            ],
        };
        set.run(RunOptions::default())
            .expect("tenancy run succeeds")
    }
}
