//! FAIR slot-sharing bounds, pinned with *twin* tenants: two copies of
//! the same drill-scale application with the same seed, so every
//! difference between their reports is the scheduler's doing and every
//! assertion is exact.

use std::sync::Arc;

use juggler_suite::cluster_sim::{Engine, RunOptions, TenancyReport, Tenant, TenantSet};
use juggler_suite::workloads::LogisticRegression;

use crate::support;

/// Runs LOR against an identical LOR twin, both arriving at 0, with the
/// given weights on an ample-memory cluster.
fn twins(weight_a: f64, weight_b: f64) -> TenancyReport {
    let w = LogisticRegression;
    let app = support::drill_app(&w);
    let schedule = Arc::new(app.default_schedule().clone());
    let set = TenantSet {
        cluster: support::cluster(support::AMPLE_RAM),
        tenants: vec![
            Tenant {
                weight: weight_a,
                ..Tenant::new(&app, schedule.clone(), support::quiet_sim(&w, 0xFA1))
            },
            Tenant {
                weight: weight_b,
                ..Tenant::new(&app, schedule.clone(), support::quiet_sim(&w, 0xFA1))
            },
        ],
    };
    set.run(RunOptions::default()).expect("twin run succeeds")
}

#[test]
fn equal_weights_share_equally() {
    let tr = twins(1.0, 1.0);
    let [a, b] = &tr.reports[..] else {
        panic!("two reports")
    };
    // Identical tenants at identical weights run in lockstep: every job
    // takes exactly as long for both — until the tie-broken-first tenant
    // departs and frees its share, which can only *help* the survivor's
    // tail. So the per-job times match on all but the last job, and the
    // second tenant never finishes more than one job-duration later.
    let n = a.job_times_s.len();
    assert_eq!(n, b.job_times_s.len());
    assert_eq!(
        a.job_times_s[..n - 1],
        b.job_times_s[..n - 1],
        "equal-weight twins must progress in lockstep"
    );
    assert!(
        b.total_time_s <= a.total_time_s + 1e-9,
        "the surviving twin inherits the departed one's share: {} > {}",
        b.total_time_s,
        a.total_time_s
    );
    let gap = (a.total_time_s - b.total_time_s).abs();
    assert!(
        gap <= a.job_times_s[n - 1] + 1e-9,
        "equal weights drifted by more than one job: gap {gap}"
    );
}

#[test]
fn heavier_weight_never_finishes_later() {
    // Within one run: at 2:1 the heavy twin holds the larger share at
    // every instant, so it finishes no later than the light twin.
    let skewed = twins(2.0, 1.0);
    assert!(
        skewed.reports[0].total_time_s <= skewed.reports[1].total_time_s + 1e-9,
        "heavy twin finished later than its light sibling: {} > {}",
        skewed.reports[0].total_time_s,
        skewed.reports[1].total_time_s
    );
    // Across runs: upgrading a tenant's weight (everything else fixed)
    // never slows that tenant down.
    let fair = twins(1.0, 1.0);
    assert!(
        skewed.reports[0].total_time_s <= fair.reports[0].total_time_s + 1e-9,
        "a weight upgrade slowed the tenant: {} > {}",
        skewed.reports[0].total_time_s,
        fair.reports[0].total_time_s
    );
    // The light twin queues at least as much as the heavy one.
    assert!(
        skewed.reports[1].contention.slot_wait_s + 1e-9 >= skewed.reports[0].contention.slot_wait_s,
        "light twin waited less than the heavy one"
    );
}

#[test]
fn sharing_never_beats_running_alone() {
    let w = LogisticRegression;
    let app = support::drill_app(&w);
    let schedule = Arc::new(app.default_schedule().clone());
    let solo = Engine::new(
        &app,
        support::cluster(support::AMPLE_RAM),
        support::quiet_sim(&w, 0xFA1),
    )
    .run_shared(&schedule, RunOptions::default())
    .expect("solo run succeeds");
    let shared = twins(1.0, 1.0);
    for (ti, r) in shared.reports.iter().enumerate() {
        assert!(
            solo.total_time_s <= r.total_time_s + 1e-9,
            "tenant {ti} ran faster sharing the cluster than owning it: {} < {}",
            r.total_time_s,
            solo.total_time_s
        );
    }
}
