//! Isolation guarantees: the tenancy machinery must be invisible
//! whenever contention is impossible — a single-tenant set is the plain
//! engine byte-for-byte, a weight-0 co-tenant changes nothing, and with
//! ample memory each tenant's cache behaviour is exactly its solo run's.

use std::sync::Arc;

use juggler_suite::cluster_sim::{Engine, RunOptions, Tenant, TenantSet};
use juggler_suite::workloads::{LogisticRegression, SqlStarJoin};

use crate::support;

#[test]
fn single_tenant_set_is_byte_identical_to_the_engine() {
    let w = LogisticRegression;
    let app = support::drill_app(&w);
    let schedule = Arc::new(app.default_schedule().clone());
    let cluster = support::cluster(support::AMPLE_RAM);
    let plain = Engine::new(&app, cluster, support::quiet_sim(&w, 0x150))
        .run_shared(&schedule, RunOptions::default())
        .expect("plain run succeeds");
    let set = TenantSet {
        cluster,
        tenants: vec![Tenant::new(&app, schedule, support::quiet_sim(&w, 0x150))],
    };
    let tr = set.run(RunOptions::default()).expect("tenant run succeeds");
    assert_eq!(tr.reports.len(), 1);
    assert_eq!(tr.reports[0].digest(), plain.digest());
    assert_eq!(
        tr.reports[0], plain,
        "single-tenant set must be the single-app path"
    );
    assert!((tr.makespan_s - plain.total_time_s).abs() < 1e-12);
}

#[test]
fn weight_zero_co_tenant_is_invisible() {
    // Unlike the len-1 fast path above, this exercises the real
    // interleaved scheduler with a lone *active* tenant: the admitted
    // but weightless SQL tenant must leave no trace in LOR's report.
    let (a, b) = (LogisticRegression, SqlStarJoin);
    let app_a = support::drill_app(&a);
    let app_b = support::drill_app(&b);
    let schedule_a = Arc::new(app_a.default_schedule().clone());
    let cluster = support::cluster(support::AMPLE_RAM);
    let plain = Engine::new(&app_a, cluster, support::quiet_sim(&a, 0x151))
        .run_shared(&schedule_a, RunOptions::default())
        .expect("plain run succeeds");
    let set = TenantSet {
        cluster,
        tenants: vec![
            Tenant::new(&app_a, schedule_a, support::quiet_sim(&a, 0x151)),
            Tenant {
                weight: 0.0,
                ..Tenant::new(
                    &app_b,
                    Arc::new(app_b.default_schedule().clone()),
                    support::quiet_sim(&b, 0x152),
                )
            },
        ],
    };
    let tr = set.run(RunOptions::default()).expect("tenant run succeeds");
    assert_eq!(tr.reports[0].digest(), plain.digest());
    assert_eq!(tr.reports[0].cache, plain.cache);
    // The placeholder ran nothing and self-describes its admission.
    assert_eq!(tr.reports[1].total_tasks, 0);
    assert_eq!(tr.reports[1].job_times_s.len(), 0);
    assert_eq!(tr.reports[1].contention.weight, 0.0);
    assert_eq!(tr.reports[1].contention.tenant, 1);
}

#[test]
fn ample_memory_preserves_solo_cache_behaviour() {
    // With a pool that holds both tenants' cached datasets, slot sharing
    // stretches *time* but must not change *cache behaviour*: dataset by
    // dataset, each tenant's hits, misses and residency are exactly what
    // its solo run produced, and nobody cross-evicts anybody.
    let (a, b) = (LogisticRegression, SqlStarJoin);
    let app_a = support::drill_app(&a);
    let app_b = support::drill_app(&b);
    let schedule_a = Arc::new(app_a.default_schedule().clone());
    let schedule_b = Arc::new(app_b.default_schedule().clone());
    let cluster = support::cluster(support::AMPLE_RAM);
    let solo_a = Engine::new(&app_a, cluster, support::quiet_sim(&a, 0x153))
        .run_shared(&schedule_a, RunOptions::default())
        .expect("solo LOR succeeds");
    let solo_b = Engine::new(&app_b, cluster, support::quiet_sim(&b, 0x154))
        .run_shared(&schedule_b, RunOptions::default())
        .expect("solo SQLJOIN succeeds");

    let set = TenantSet {
        cluster,
        tenants: vec![
            Tenant::new(&app_a, schedule_a, support::quiet_sim(&a, 0x153)),
            Tenant {
                arrival_offset_s: support::LATE_ARRIVAL_S,
                weight: 2.0,
                ..Tenant::new(&app_b, schedule_b, support::quiet_sim(&b, 0x154))
            },
        ],
    };
    let tr = set.run(RunOptions::default()).expect("tenant run succeeds");

    for (ti, (shared, solo)) in tr.reports.iter().zip([&solo_a, &solo_b]).enumerate() {
        assert_eq!(
            shared.cache.per_dataset, solo.cache.per_dataset,
            "tenant {ti}: ample memory must preserve solo per-dataset cache stats"
        );
        assert_eq!(shared.contention.cross_evictions_suffered, 0, "tenant {ti}");
        assert_eq!(
            shared.contention.cross_evictions_inflicted, 0,
            "tenant {ti}"
        );
        // Sharing can only slow a tenant down, never speed it up.
        assert!(
            shared.total_time_s + 1e-9 >= solo.total_time_s,
            "tenant {ti} beat its solo run under sharing"
        );
    }
}
