//! Golden test for `juggler chaos`'s rendered drill report: the default
//! LOR drill (a straggler burst followed by an executor loss, speculation
//! on) is fully deterministic — `NoiseParams::NONE`, zero jitter, fixed
//! seed — so the render must be byte-for-byte the committed golden file.
//! Any drift is a real behaviour or formatting change in the chaos
//! machinery. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test chaos_golden` and review the diff.

use juggler_suite::juggler::chaos::{run_chaos, ChaosConfig};
use juggler_suite::workloads::LogisticRegression;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chaos_small.txt")
}

#[test]
fn chaos_drill_report_matches_golden_file() {
    let outcome = run_chaos(&LogisticRegression, &ChaosConfig::default()).expect("drill succeeds");
    let got = outcome.render();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test chaos_golden",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "chaos drill report drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn chaos_drill_report_covers_the_contract() {
    let outcome = run_chaos(&LogisticRegression, &ChaosConfig::default()).expect("drill succeeds");
    let text = outcome.render();
    // Both injected events, with fire times.
    assert!(text.contains("slow node"), "{text}");
    assert!(text.contains("executor loss"), "{text}");
    assert!(text.contains("fired @"), "{text}");
    // Fault-tolerance counters, including speculation.
    assert!(text.contains("speculative"), "{text}");
    assert!(text.contains("failed attempts"), "{text}");
    // Residency restoration and the invariant verdicts.
    assert!(text.contains("restored"), "{text}");
    assert!(!text.contains("LOST"), "{text}");
    assert!(!text.contains("FAIL"), "{text}");
    // The drill exercised speculation and won at least one race.
    assert!(outcome.chaos.faults.speculative_wins > 0, "{text}");
}
