//! Shared fixtures for the observability integration tests: a tiny
//! iterative workload that trains in well under a second even in debug
//! builds, with enough dataset reuse for hotspot detection to find a
//! schedule.

use juggler_suite::cluster_sim::{NoiseParams, SimParams};
use juggler_suite::dagflow::{
    AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind,
};
use juggler_suite::workloads::{Workload, WorkloadParams};

/// A miniature "parse → shuffle → iterate" pipeline in the shape of the
/// paper's ML workloads, scaled down for fast tests.
pub struct TinyScoring;

impl Workload for TinyScoring {
    fn name(&self) -> &'static str {
        "TINY"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(4_000, 800, 4)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.15,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let parse = ComputeCost::new(0.002, 0.0, 5.0e-9);
        let scan = ComputeCost::new(0.004, 0.0, 2.0e-9);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("tiny");
        let logs = b.source(
            "events",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            p.partitions,
        );
        let parsed = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[logs],
            p.examples,
            (6.0 * ef) as u64,
            parse,
        );
        let matrix = b.wide(
            "matrix",
            WideKind::GroupByKey,
            &[parsed],
            p.examples / 2,
            (4.0 * ef) as u64,
            agg,
        );
        for i in 0..p.iterations {
            let scores = b.narrow(
                format!("scores[{i}]"),
                NarrowKind::Map,
                &[matrix],
                p.examples / 2,
                8 * p.examples,
                scan,
            );
            let model = b.wide_with_partitions(
                format!("model[{i}]"),
                WideKind::TreeAggregate,
                &[scores],
                1,
                8 * p.features,
                1,
                agg,
            );
            b.job("treeAggregate", model);
        }
        b.default_schedule(Schedule::empty());
        b.build().expect("valid plan")
    }
}
