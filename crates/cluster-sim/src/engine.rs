//! The run engine: sequential jobs, stage pruning against the cache,
//! schedule enforcement, driver overheads, and report assembly.
//!
//! This is the reproduction's stand-in for both vanilla Spark (run with the
//! application's default schedule) and the paper's *Juggler engine* — "a
//! modified version of Spark that overwrites the developer-cached datasets
//! with the recommended schedule by injecting cache/unpersist instructions
//! into the DAG" (§5.3) — run with any other schedule.

use std::collections::HashMap;
use std::sync::Arc;

use dagflow::{
    Application, DagError, DatasetId, JobId, LineageAnalysis, Schedule, ScheduleOp, StagePlan,
};

use crate::config::{ClusterConfig, SimParams};
use crate::executor::{run_stage, ExecutorState};
use crate::fault::{ChaosState, FaultSummary};
use crate::memory::{BlockLayout, BlockStore};
use crate::report::{CacheStats, RunReport, StageTiming};
use crate::rng::TaskNoise;
use crate::task::{Sizing, TaskEnv};
use crate::trace::{TraceConfig, TraceCounters, TraceRecorder};

/// Per-run options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Collect per-task pipeline traces (needed by the `instrument` crate;
    /// costs memory proportional to total tasks).
    pub collect_traces: bool,
    /// Per-partition size skew amplitude (0 = perfectly even partitions).
    pub partition_skew: f64,
    /// Structured trace recording (spans + counters into a ring buffer,
    /// exported via [`crate::trace::RunTrace`]). Disabled by default; when
    /// disabled every recording call is a no-op.
    pub trace: TraceConfig,
}

/// Cumulative run-wide counters for a trace snapshot: cache behaviour
/// summed over every dataset, plus executor-level spill/locality tallies.
/// Sums are order-independent, so snapshots are deterministic regardless
/// of `HashMap` iteration order.
/// Feeds one finished run's counters into the global metrics registry.
/// A single branch when the registry is disabled (the default).
pub(crate) fn record_run_metrics(
    counters: &TraceCounters,
    total_tasks: u64,
    faults: &FaultSummary,
) {
    let reg = obs::global();
    if !reg.enabled() {
        return;
    }
    reg.counter("sim_runs_total", "simulated runs completed")
        .inc();
    reg.counter("sim_tasks_total", "tasks executed across all runs")
        .add(total_tasks);
    reg.counter(
        "sim_cache_hits_total",
        "cache reads that found the block resident",
    )
    .add(counters.cache_hits);
    reg.counter(
        "sim_cache_misses_total",
        "cache reads that missed, forcing recomputation",
    )
    .add(counters.cache_misses);
    reg.counter(
        "sim_evictions_total",
        "blocks evicted under memory pressure",
    )
    .add(counters.evictions);
    reg.counter(
        "sim_insert_failures_total",
        "cache inserts rejected for lack of memory",
    )
    .add(counters.insert_failures);
    reg.counter("sim_unpersisted_total", "blocks dropped by unpersist/swap")
        .add(counters.unpersisted);
    reg.counter(
        "sim_spills_total",
        "tasks that could not claim execution memory and spilled",
    )
    .add(counters.spills);
    reg.counter(
        "sim_locality_fallbacks_total",
        "tasks that gave up on their cache-local machine and ran elsewhere",
    )
    .add(counters.locality_fallbacks);
    // Chaos counters register only when non-zero: fault-free runs leave
    // the registry (and every golden pinned on it) exactly as before.
    for (value, name, help) in [
        (
            faults.failed_attempts,
            "sim_task_failures_total",
            "task attempts that failed from injected transient failures",
        ),
        (
            faults.retried_attempts,
            "sim_task_retries_total",
            "failed task attempts that were retried",
        ),
        (
            faults.exhausted_tasks,
            "sim_retry_exhausted_total",
            "tasks whose retry budget was exhausted",
        ),
        (
            faults.slowed_tasks,
            "sim_slowed_tasks_total",
            "task attempts slowed by a slow-node window",
        ),
        (
            faults.speculative_launched,
            "sim_speculative_tasks_total",
            "speculative task copies launched",
        ),
        (
            faults.speculative_wins,
            "sim_speculative_wins_total",
            "speculative copies that beat the original attempt",
        ),
        (
            faults.blacklist.len() as u64,
            "sim_blacklisted_machines_total",
            "machines blacklisted after repeated task failures",
        ),
        (
            faults.fired_count() as u64,
            "sim_faults_fired_total",
            "planned fault events that took effect",
        ),
        (
            faults.unfired_count() as u64,
            "sim_faults_unfired_total",
            "planned fault events that did not fire",
        ),
    ] {
        if value > 0 {
            reg.counter(name, help).add(value);
        }
    }
}

pub(crate) fn gather_counters(
    store: &BlockStore,
    state: &ExecutorState,
    chaos: &ChaosState,
) -> TraceCounters {
    let (task_retries, speculative_tasks, blacklisted_machines) = chaos.counter_snapshot();
    let mut c = TraceCounters {
        spills: state.spilled_tasks,
        locality_fallbacks: state.locality_fallbacks,
        task_retries,
        speculative_tasks,
        blacklisted_machines,
        ..TraceCounters::default()
    };
    for (_, s) in store.touched_stats() {
        c.cache_hits += s.hits;
        c.cache_misses += s.misses;
        c.evictions += s.evictions;
        c.insert_failures += s.insert_failures;
        c.unpersisted += s.unpersisted;
    }
    c
}

/// Everything about an application a run needs but no run mutates: the
/// dataset→jobs use lists, the per-job stage plans, the static
/// shuffle-consumer table, and the dense block layout. Built once per
/// application (inside [`Engine::new`]) and shared across engines — the
/// training pipeline hands one `Arc<EnginePrep>` to every grid point via
/// [`Engine::with_prep`], so a thousand-cell simulation matrix plans each
/// job exactly once instead of once per cell per job.
#[derive(Debug)]
pub struct EnginePrep {
    /// `job_uses[d]` — jobs whose DAG contains dataset `d`, for the
    /// DAG-aware eviction policies' hints.
    pub(crate) job_uses: Vec<Vec<usize>>,
    /// One stage plan per job, in job order.
    pub(crate) plans: Vec<StagePlan>,
    /// `consumers[ji][sp]` — for stage position `sp` of job `ji`, the
    /// statically possible shuffle consumers as `(consumer_stage_index,
    /// wide_dataset)` pairs, in the order the per-stage scan used to
    /// produce them. Runs filter by their `needed` set at job time.
    pub(crate) consumers: Vec<Vec<Vec<(u32, DatasetId)>>>,
    /// Dense `(dataset, partition)` interning for the block store.
    layout: Arc<BlockLayout>,
    /// Pool of per-run scratch (block store + executor state), returned at
    /// run end and reset on reuse so repeated runs — grid cells in the
    /// training fan-out above all — skip the per-run allocations. Shared
    /// across the engines of a fan-out via the prep `Arc`; popped scratch
    /// is fully reset, so pool order cannot influence results.
    scratch: std::sync::Mutex<Vec<RunScratch>>,
}

/// Reusable per-run mutable state, pooled on [`EnginePrep`].
struct RunScratch {
    store: BlockStore,
    state: ExecutorState,
}

impl std::fmt::Debug for RunScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunScratch").finish_non_exhaustive()
    }
}

impl EnginePrep {
    /// Precomputes the schedule-independent run state of an application.
    #[must_use]
    pub fn new(app: &Application) -> Self {
        let la = LineageAnalysis::new(app);
        let job_uses: Vec<Vec<usize>> = (0..app.dataset_count() as u32)
            .map(|d| {
                (0..app.jobs().len())
                    .filter(|&j| la.in_job(DatasetId(d), JobId(j as u32)))
                    .collect()
            })
            .collect();
        let plans: Vec<StagePlan> = (0..app.jobs().len())
            .map(|ji| StagePlan::build(app, JobId(ji as u32)))
            .collect();
        let consumers = plans
            .iter()
            .map(|plan| {
                plan.stages
                    .iter()
                    .map(|stage| {
                        plan.stages
                            .iter()
                            .flat_map(|s| {
                                s.shuffle_reads(app).map(move |w| (s.id.index() as u32, w))
                            })
                            .filter(|&(_, w)| app.dataset(w).parents.contains(&stage.output))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        EnginePrep {
            job_uses,
            plans,
            consumers,
            layout: Arc::new(BlockLayout::from_app(app)),
            scratch: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The dense block layout of the application.
    #[must_use]
    pub fn layout(&self) -> &Arc<BlockLayout> {
        &self.layout
    }

    /// The precomputed stage plans, one per job.
    #[must_use]
    pub fn plans(&self) -> &[StagePlan] {
        &self.plans
    }
}

/// The simulation engine. Construct once per (application, cluster,
/// parameters) and call [`Engine::run`] per schedule.
#[derive(Debug)]
pub struct Engine<'a> {
    app: &'a Application,
    cluster: ClusterConfig,
    params: SimParams,
    /// Schedule-independent precomputation, shareable across engines over
    /// the same application (grid points differ only in cluster/params).
    prep: Arc<EnginePrep>,
}

impl<'a> Engine<'a> {
    /// Creates an engine, precomputing the application's [`EnginePrep`].
    #[must_use]
    pub fn new(app: &'a Application, cluster: ClusterConfig, params: SimParams) -> Self {
        Engine::with_prep(app, cluster, params, Arc::new(EnginePrep::new(app)))
    }

    /// Creates an engine over an already-built [`EnginePrep`] (which must
    /// come from the same application). This is the fan-out constructor:
    /// per-grid-point engines share the prep instead of re-deriving it.
    #[must_use]
    pub fn with_prep(
        app: &'a Application,
        cluster: ClusterConfig,
        params: SimParams,
        prep: Arc<EnginePrep>,
    ) -> Self {
        debug_assert_eq!(
            prep.layout.dataset_count(),
            app.dataset_count(),
            "prep built from a different application"
        );
        Engine {
            app,
            cluster,
            params,
            prep,
        }
    }

    /// The application this engine runs.
    #[must_use]
    pub fn app(&self) -> &'a Application {
        self.app
    }

    /// The shared schedule-independent precomputation.
    #[must_use]
    pub fn prep(&self) -> &Arc<EnginePrep> {
        &self.prep
    }

    /// Runs the application under `schedule`, overriding whatever the
    /// developers cached (pass [`Application::default_schedule`] to
    /// reproduce the baseline behaviour).
    ///
    /// The schedule is deep-cloned once into the report; callers that
    /// already hold an [`Arc<Schedule>`] should prefer [`Engine::run_shared`],
    /// which only bumps the reference count.
    pub fn run(&self, schedule: &Schedule, options: RunOptions) -> Result<RunReport, DagError> {
        self.run_inner(schedule, None, options)
    }

    /// Like [`Engine::run`] but for a shared schedule: the report's
    /// `schedule` field is a clone of the `Arc`, not of the `Schedule`.
    pub fn run_shared(
        &self,
        schedule: &Arc<Schedule>,
        options: RunOptions,
    ) -> Result<RunReport, DagError> {
        self.run_inner(schedule, Some(schedule), options)
    }

    fn run_inner(
        &self,
        schedule: &Schedule,
        shared: Option<&Arc<Schedule>>,
        options: RunOptions,
    ) -> Result<RunReport, DagError> {
        self.app.check_schedule(schedule)?;
        // Phase profiling: one `sim` span per run, with coarse sub-phases
        // (fault boundary, stage execution). Deliberately not per-task —
        // the per-run granularity keeps armed-idle overhead inside the
        // profiler's <5% budget even on thousand-cell training grids.
        let _prof = obs::prof::scope("sim");
        let machines = self.cluster.machines.max(1);

        // Unpack the schedule: active persist set plus u(X)-before-p(Y)
        // swap pairs.
        let mut persisted = vec![false; self.app.dataset_count()];
        let mut swap: HashMap<DatasetId, DatasetId> = HashMap::new();
        let mut pending_unpersist: Option<DatasetId> = None;
        for op in schedule.ops() {
            match *op {
                ScheduleOp::Persist(d) => {
                    persisted[d.index()] = true;
                    if let Some(x) = pending_unpersist.take() {
                        swap.insert(d, x);
                    }
                }
                ScheduleOp::Unpersist(d) => pending_unpersist = Some(d),
            }
        }

        // Per-run mutable state comes from the prep's scratch pool when a
        // previous run returned one (reset to pristine before use), so
        // repeated runs — above all the training fan-out's grid cells —
        // skip the block-store and executor allocations entirely.
        let mut noise = TaskNoise::new(self.params.seed, self.params.noise);
        // Absolute cluster-dynamics jitter: drawn once per run (container
        // provisioning, JVM warm-up), dominating short sample runs.
        let startup_jitter = noise.uniform() * self.params.cluster_jitter_s;
        let pooled = self
            .prep
            .scratch
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        let (mut store, mut state) = match pooled {
            Some(RunScratch {
                mut store,
                mut state,
            }) => {
                store.reset_for(&self.cluster, self.params.eviction_policy);
                state.reset(machines, self.cluster.spec.cores, noise);
                (store, state)
            }
            None => (
                BlockStore::with_policy(
                    &self.cluster,
                    Arc::clone(&self.prep.layout),
                    self.params.eviction_policy,
                ),
                ExecutorState::new(machines, self.cluster.spec.cores, noise),
            ),
        };
        // Per-dataset job-use lists for the DAG-aware eviction policies'
        // hints (only persisted datasets can ever be victims); the lists
        // themselves are precomputed in `EnginePrep`.
        let job_uses: Vec<(DatasetId, &[usize])> = (0..self.app.dataset_count() as u32)
            .map(DatasetId)
            .filter(|d| persisted[d.index()])
            .map(|d| (d, self.prep.job_uses[d.index()].as_slice()))
            .collect();
        let env = TaskEnv {
            app: self.app,
            cluster: &self.cluster,
            params: &self.params,
            persisted: &persisted,
            swap: &swap,
            sizing: Sizing::new(self.app, options.partition_skew),
            trace: options.collect_traces,
        };

        let mut now = self.params.app_startup_s + startup_jitter;
        let mut job_times = Vec::with_capacity(self.app.jobs().len());
        let mut per_job_cache = Vec::with_capacity(self.app.jobs().len());
        let mut stage_times = Vec::new();
        let mut traces = Vec::new();
        let mut recorder = TraceRecorder::new(options.trace);

        let mut chaos = ChaosState::new(&self.params.faults, self.params.retry, machines as usize);
        // Scratch buffers reused across jobs/stages.
        let mut before: Vec<(u64, u64)> = Vec::with_capacity(job_uses.len());
        let mut consumers: Vec<DatasetId> = Vec::new();
        let mut needed: Vec<bool> = Vec::new();
        let mut stage_stack: Vec<usize> = Vec::new();
        for ji in 0..self.app.jobs().len() {
            let job = JobId(ji as u32);
            let job_start = now;
            // Boundary fault events (executor loss, memory pressure) due
            // at this job start take effect now; events scheduled after
            // the last boundary are reported as "not fired" in the
            // summary instead of being silently dropped.
            {
                let _prof = obs::prof::scope("faults");
                chaos.fire_due(now, &mut store, &mut state);
            }
            // Refresh DAG-aware eviction hints: remaining references and
            // next-use distance from this job onward. Every persisted
            // dataset (the only possible victims) gets rewritten each job,
            // so stale hints cannot leak across jobs.
            for &(d, uses) in &job_uses {
                let remaining = uses.iter().filter(|&&u| u >= ji).count() as u64;
                let next = uses
                    .iter()
                    .find(|&&u| u >= ji)
                    .map_or(u32::MAX, |&u| (u - ji) as u32);
                store.set_hint(
                    d,
                    crate::eviction::DatasetHints {
                        remaining_refs: remaining,
                        next_use_distance: next,
                    },
                );
            }
            // Per-job hit/miss snapshot of the persisted datasets, aligned
            // with `job_uses` (untouched datasets read as zero, matching
            // the old map's `unwrap_or((0, 0))`).
            before.clear();
            before.extend(job_uses.iter().map(|&(d, _)| {
                store
                    .dataset_stats(d)
                    .map_or((0, 0), |s| (s.hits, s.misses))
            }));

            let plan = &self.prep.plans[ji];
            needed_stages(
                self.app,
                plan,
                &persisted,
                &store,
                &mut needed,
                &mut stage_stack,
            );
            for (sp, stage) in plan.stages.iter().enumerate() {
                if !needed[stage.id.index()] {
                    continue;
                }
                // Wide datasets of needed downstream stages that read this
                // stage's output: the static table filtered by this run's
                // `needed` set, in the order the per-stage scan produced.
                consumers.clear();
                consumers.extend(
                    self.prep.consumers[ji][sp]
                        .iter()
                        .filter(|&&(cs, _)| needed[cs as usize])
                        .map(|&(_, w)| w),
                );
                let stage_start = now;
                let stage_prof = obs::prof::scope("stages");
                now = run_stage(
                    &env,
                    &mut store,
                    &mut state,
                    &mut chaos,
                    job,
                    stage,
                    &consumers,
                    now,
                    &mut traces,
                    &mut recorder,
                );
                drop(stage_prof);
                stage_times.push(StageTiming {
                    job,
                    stage: stage.id,
                    start: stage_start,
                    finish: now,
                    tasks: stage.num_tasks,
                });
                if recorder.enabled() {
                    recorder.stage_span(job.0, stage.id.0, stage_start, now, stage.num_tasks);
                    recorder.counter_snapshot(now, gather_counters(&store, &state, &chaos));
                }
            }
            // Serial driver work: job bookkeeping plus per-machine
            // coordination (the area-B term), with a small absolute wobble
            // from cluster dynamics.
            now += self.params.driver_per_job_s
                + self.params.driver_per_machine_s * f64::from(machines)
                + state.noise.uniform() * self.params.cluster_jitter_s * 0.02;
            job_times.push(now - job_start);
            recorder.job_span(job.0, job_start, now);

            // Per-job deltas over the persisted datasets that have stats,
            // in dataset-id order (the old map iteration was unordered;
            // consumers look entries up by id, never by position).
            let deltas: Vec<(DatasetId, u64, u64)> = job_uses
                .iter()
                .zip(&before)
                .filter_map(|(&(d, _), &(h0, m0))| {
                    store
                        .dataset_stats(d)
                        .map(|s| (d, s.hits - h0, s.misses - m0))
                })
                .collect();
            per_job_cache.push(deltas);
        }

        let final_counters = gather_counters(&store, &state, &chaos);
        // Per-run counter deltas attributed to the `sim` node — applied
        // once per run from the aggregate snapshot (never per task), and
        // zero-gated so fault-free profiles show only the counters that
        // actually moved. Every value is seed-deterministic, so profile
        // structure digests stay thread-count-invariant.
        for (value, name) in [
            (final_counters.cache_hits, "cache_hits"),
            (final_counters.cache_misses, "cache_misses"),
            (final_counters.evictions, "evictions"),
            (final_counters.spills, "spills"),
            (final_counters.task_retries, "retries"),
            (final_counters.speculative_tasks, "speculative"),
        ] {
            if value > 0 {
                obs::prof::count(name, value);
            }
        }
        let faults = chaos.finish(now);
        record_run_metrics(&final_counters, state.total_tasks, &faults);
        let trace = recorder.finish(final_counters);
        let cache = CacheStats {
            peak_storage_bytes: store.peak_storage(),
            peak_exec_bytes: store.peak_exec(),
            per_dataset: store.take_stats(),
        };
        let (spilled_tasks, total_tasks, task_attempts) =
            (state.spilled_tasks, state.total_tasks, state.task_attempts);
        // Return the run's mutable state to the pool (bounded so a pile of
        // one-shot engines cannot hoard memory).
        {
            let mut pool = self
                .prep
                .scratch
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if pool.len() < 32 {
                pool.push(RunScratch { store, state });
            }
        }
        Ok(RunReport {
            app: self.app.name().to_owned(),
            schedule: shared.map_or_else(|| Arc::new(schedule.clone()), Arc::clone),
            machines,
            total_time_s: now,
            job_times_s: job_times,
            cache,
            per_job_cache,
            stage_times,
            traces,
            trace,
            spilled_tasks,
            total_tasks,
            task_attempts,
            faults,
            contention: crate::report::ContentionSummary::default(),
        })
    }
}

/// Determines which stages of a job must actually run, given current cache
/// residency: the result stage always runs; a map stage is skipped when
/// every wide dataset consuming it is fully resident (Spark would read the
/// cached blocks and skip the parent stages entirely).
pub(crate) fn needed_stages(
    app: &Application,
    plan: &StagePlan,
    persisted: &[bool],
    store: &BlockStore,
    needed: &mut Vec<bool>,
    stack: &mut Vec<usize>,
) {
    needed.clear();
    needed.resize(plan.stages.len(), false);
    // Walk top-down from the result stage.
    stack.clear();
    stack.push(plan.stages.len() - 1);
    while let Some(si) = stack.pop() {
        if needed[si] {
            continue;
        }
        needed[si] = true;
        let stage = &plan.stages[si];
        for wide in stage.shuffle_reads(app) {
            let fully_resident = persisted[wide.index()]
                && store.resident_count(wide) == app.dataset(wide).partitions;
            if fully_resident {
                continue;
            }
            // Parent stages producing this wide dataset's inputs must run.
            for &parent_ds in &app.dataset(wide).parents {
                if let Some(ps) = plan.stages.iter().position(|s| s.output == parent_ds) {
                    stack.push(ps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{AppBuilder, ComputeCost, NarrowKind, SourceFormat, WideKind};

    use crate::config::{MachineSpec, NoiseParams};

    /// A small iterative app: input → parsed (cacheable) → k gradient jobs.
    fn iterative_app(iterations: usize) -> Application {
        let mut b = AppBuilder::new("iter");
        let src = b.source("in", SourceFormat::DistributedFs, 8_000, 1_120_000_000, 8);
        let parsed = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[src],
            8_000,
            800_000_000,
            ComputeCost::new(0.05, 1e-5, 4e-9),
        );
        for i in 0..iterations {
            let g = b.wide_with_partitions(
                format!("grad[{i}]"),
                WideKind::TreeAggregate,
                &[parsed],
                8,
                1024,
                1,
                ComputeCost::new(0.01, 0.0, 1e-9),
            );
            b.job("aggregate", g);
        }
        b.build().unwrap()
    }

    fn quiet_params() -> SimParams {
        SimParams {
            noise: NoiseParams::NONE,
            cluster_jitter_s: 0.0,
            seed: 1,
            ..SimParams::default()
        }
    }

    #[test]
    fn caching_speeds_up_iterative_runs() {
        let app = iterative_app(10);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        let cold = engine
            .run(&Schedule::empty(), RunOptions::default())
            .unwrap();
        let hot = engine
            .run(
                &Schedule::persist_all([DatasetId(1)]),
                RunOptions::default(),
            )
            .unwrap();
        assert!(
            hot.total_time_s < cold.total_time_s * 0.6,
            "cached {} vs uncached {}",
            hot.total_time_s,
            cold.total_time_s
        );
        // Cache stats: 8 partitions resident, later jobs all hits.
        let stats = hot.cache.per_dataset.get(&DatasetId(1)).unwrap();
        assert_eq!(stats.resident_partitions, 8);
        assert!(stats.hits > 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn job_times_sum_to_total() {
        let app = iterative_app(5);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        let r = engine
            .run(&Schedule::empty(), RunOptions::default())
            .unwrap();
        let sum: f64 = r.job_times_s.iter().sum();
        assert!((r.total_time_s - (sum + quiet_params().app_startup_s)).abs() < 1e-9);
        assert_eq!(r.job_times_s.len(), 5);
    }

    #[test]
    fn runs_are_deterministic() {
        let app = iterative_app(4);
        let cluster = ClusterConfig::new(3, MachineSpec::paper_example());
        let params = SimParams {
            seed: 99,
            ..SimParams::default()
        };
        let engine = Engine::new(&app, cluster, params);
        let s = Schedule::persist_all([DatasetId(1)]);
        let a = engine.run(&s, RunOptions::default()).unwrap();
        let b = engine.run(&s, RunOptions::default()).unwrap();
        assert_eq!(a.total_time_s, b.total_time_s);
        assert_eq!(a.job_times_s, b.job_times_s);
    }

    #[test]
    fn memory_limited_cluster_evicts_and_recomputes() {
        // Dataset (800 MB) exceeds one tiny machine's cache: partial
        // residency, recomputation misses every iteration — area A.
        let app = iterative_app(6);
        let spec = MachineSpec {
            ram_bytes: 1_000_000_000, // M = 420 MB, holds 4/8 blocks
            ..MachineSpec::paper_example()
        };
        let cluster = ClusterConfig::new(1, spec);
        let params = SimParams {
            exec_mem_per_task_factor: 0.0,
            noise: NoiseParams::NONE,
            ..SimParams::default()
        };
        let engine = Engine::new(&app, cluster, params.clone());
        let r = engine
            .run(
                &Schedule::persist_all([DatasetId(1)]),
                RunOptions::default(),
            )
            .unwrap();
        let stats = r.cache.per_dataset.get(&DatasetId(1)).unwrap();
        assert_eq!(stats.resident_partitions, 4, "capacity/size fraction stays");
        assert!(stats.insert_failures > 0);
        assert_eq!(stats.evictions, 0, "no self-eviction thrash");
        // Per-job cache deltas show steady-state misses in later jobs.
        let last = r.per_job_cache.last().unwrap();
        let (_, hits, misses) = last.iter().find(|(d, _, _)| *d == DatasetId(1)).unwrap();
        assert_eq!(*hits, 4);
        assert_eq!(*misses, 4);
        // More machines: everything fits, misses vanish after job 1.
        let big = Engine::new(&app, ClusterConfig::new(2, spec), params);
        let r2 = big
            .run(
                &Schedule::persist_all([DatasetId(1)]),
                RunOptions::default(),
            )
            .unwrap();
        let last2 = r2.per_job_cache.last().unwrap();
        let (_, hits2, misses2) = last2.iter().find(|(d, _, _)| *d == DatasetId(1)).unwrap();
        assert_eq!(*hits2, 8);
        assert_eq!(*misses2, 0);
        assert!(r2.total_time_s < r.total_time_s);
    }

    #[test]
    fn traces_only_when_requested() {
        let app = iterative_app(2);
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        let quiet = engine
            .run(&Schedule::empty(), RunOptions::default())
            .unwrap();
        assert!(quiet.traces.is_empty());
        let traced = engine
            .run(
                &Schedule::empty(),
                RunOptions {
                    collect_traces: true,
                    ..RunOptions::default()
                },
            )
            .unwrap();
        assert_eq!(traced.traces.len() as u64, traced.total_tasks);
    }

    #[test]
    fn structured_trace_records_spans_and_counters() {
        let app = iterative_app(3);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        // Disabled by default: no trace, no allocation.
        let plain = engine
            .run(&Schedule::empty(), RunOptions::default())
            .unwrap();
        assert!(plain.trace.is_none());

        let opts = RunOptions {
            trace: crate::trace::TraceConfig::enabled(),
            ..RunOptions::default()
        };
        let traced = engine
            .run(&Schedule::persist_all([DatasetId(1)]), opts)
            .unwrap();
        let trace = traced.trace.as_ref().expect("trace present");
        let (jobs, stages, waves, tasks, snaps) = trace.event_counts();
        assert_eq!(jobs, traced.job_times_s.len());
        assert_eq!(stages, traced.stage_times.len());
        assert_eq!(tasks as u64, traced.total_tasks);
        assert!(waves >= stages, "≥1 wave per stage");
        // One counter snapshot per stage.
        assert_eq!(snaps, traced.stage_times.len());
        // Final counters match the report's aggregate cache stats.
        let hits: u64 = traced.cache.per_dataset.values().map(|s| s.hits).sum();
        assert_eq!(trace.counters.cache_hits, hits);
        assert_eq!(trace.counters.spills, traced.spilled_tasks);
        assert_eq!(trace.task_durations.count, traced.total_tasks);
        assert_eq!(trace.dropped_events, 0);
        // Identical runs produce identical traces (seeded determinism).
        let again = engine
            .run(&Schedule::persist_all([DatasetId(1)]), opts)
            .unwrap();
        assert_eq!(traced.trace, again.trace);
    }

    #[test]
    fn stage_times_tile_the_run() {
        let app = iterative_app(4);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        let r = engine
            .run(&Schedule::empty(), RunOptions::default())
            .unwrap();
        assert!(!r.stage_times.is_empty());
        let startup = quiet_params().app_startup_s;
        for st in &r.stage_times {
            assert!(st.start >= startup - 1e-9);
            assert!(st.finish <= r.total_time_s + 1e-9);
            assert!(st.duration() >= 0.0);
            assert!(st.tasks >= 1);
        }
        // Stages are reported in execution order.
        for w in r.stage_times.windows(2) {
            assert!(w[1].start >= w[0].start - 1e-9);
        }
        // Per job, stage durations fit inside the job time.
        for ji in 0..r.job_times_s.len() {
            let stage_total: f64 = r
                .stage_times
                .iter()
                .filter(|st| st.job.index() == ji)
                .map(StageTiming::duration)
                .sum();
            assert!(
                stage_total <= r.job_times_s[ji] + 1e-9,
                "job {ji}: stages {stage_total} vs job {}",
                r.job_times_s[ji]
            );
        }
    }

    #[test]
    fn cached_runs_skip_stages_in_stage_times() {
        let app = iterative_app(5);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        let cold = engine
            .run(&Schedule::empty(), RunOptions::default())
            .unwrap();
        let hot = engine
            .run(
                &Schedule::persist_all([DatasetId(1)]),
                RunOptions::default(),
            )
            .unwrap();
        // Same stage count here (caching shortens tasks, not stages), but
        // the cached map stages are far quicker after job 0.
        assert_eq!(cold.stage_times.len(), hot.stage_times.len());
        let last_cold = cold.stage_times.last().unwrap();
        let last_hot = hot.stage_times.last().unwrap();
        assert!(last_hot.finish < last_cold.finish);
    }

    #[test]
    fn rejects_foreign_schedule() {
        let app = iterative_app(1);
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        let bad = Schedule::persist_all([DatasetId(999)]);
        assert!(engine.run(&bad, RunOptions::default()).is_err());
    }

    #[test]
    fn unpersist_swap_bounds_peak_storage() {
        // x (400 MB) → y (400 MB); schedule p(x) p(y) vs p(x) u(x) p(y).
        let mut b = AppBuilder::new("swap");
        let src = b.source("in", SourceFormat::DistributedFs, 100, 400_000_000, 4);
        let x = b.narrow(
            "x",
            NarrowKind::Map,
            &[src],
            100,
            400_000_000,
            ComputeCost::new(0.01, 0.0, 1e-9),
        );
        let y = b.narrow(
            "y",
            NarrowKind::Map,
            &[x],
            100,
            400_000_000,
            ComputeCost::new(0.01, 0.0, 1e-9),
        );
        // Two jobs over x (so caching x pays), then jobs over y only.
        let vx = b.narrow("vx", NarrowKind::Map, &[x], 1, 8, ComputeCost::FREE);
        b.job("count", vx);
        let vx2 = b.narrow("vx2", NarrowKind::Map, &[x], 1, 8, ComputeCost::FREE);
        b.job("count", vx2);
        for i in 0..3 {
            let v = b.narrow(
                format!("vy{i}"),
                NarrowKind::Map,
                &[y],
                1,
                8,
                ComputeCost::FREE,
            );
            b.job("count", v);
        }
        let app = b.build().unwrap();
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());

        let both = Schedule::from_ops(vec![ScheduleOp::Persist(x), ScheduleOp::Persist(y)]);
        let swap = Schedule::from_ops(vec![
            ScheduleOp::Persist(x),
            ScheduleOp::Unpersist(x),
            ScheduleOp::Persist(y),
        ]);
        let r_both = engine.run(&both, RunOptions::default()).unwrap();
        let r_swap = engine.run(&swap, RunOptions::default()).unwrap();
        assert!(r_both.cache.peak_storage_bytes >= 790_000_000);
        assert!(
            r_swap.cache.peak_storage_bytes < 550_000_000,
            "swap peak {} should be ~max(|x|,|y|) + one block",
            r_swap.cache.peak_storage_bytes
        );
        // After the run, x is gone, y resident.
        assert_eq!(
            r_swap
                .cache
                .per_dataset
                .get(&x)
                .unwrap()
                .resident_partitions,
            0
        );
        assert_eq!(
            r_swap
                .cache
                .per_dataset
                .get(&y)
                .unwrap()
                .resident_partitions,
            4
        );
    }

    #[test]
    fn fully_cached_wide_dataset_skips_map_stages() {
        // input → parsed → wideagg (cached); iterative jobs over a narrow
        // child of wideagg. Once wideagg is resident, the expensive map
        // stage must be skipped.
        let mut b = AppBuilder::new("skip");
        let src = b.source("in", SourceFormat::DistributedFs, 8_000, 1_120_000_000, 8);
        let parsed = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[src],
            8_000,
            800_000_000,
            ComputeCost::new(0.05, 1e-5, 4e-9),
        );
        let agg = b.wide(
            "agg",
            WideKind::ReduceByKey,
            &[parsed],
            4_000,
            200_000_000,
            ComputeCost::new(0.01, 0.0, 1e-9),
        );
        for i in 0..4 {
            let v = b.narrow(
                format!("v{i}"),
                NarrowKind::Map,
                &[agg],
                1,
                8,
                ComputeCost::FREE,
            );
            b.job("count", v);
        }
        let app = b.build().unwrap();
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params());
        let cold = engine
            .run(&Schedule::empty(), RunOptions::default())
            .unwrap();
        let hot = engine
            .run(&Schedule::persist_all([agg]), RunOptions::default())
            .unwrap();
        let startup = quiet_params().app_startup_s;
        assert!(
            hot.total_time_s - startup < (cold.total_time_s - startup) * 0.5,
            "hot {} vs cold {}",
            hot.total_time_s,
            cold.total_time_s
        );
        // Task counts: cold runs map+reduce stages each job; hot runs the
        // map stage only in job 0.
        assert!(hot.total_tasks < cold.total_tasks);
    }
}
