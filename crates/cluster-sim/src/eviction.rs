//! Pluggable runtime cache-eviction policies.
//!
//! The paper's §1 applies LRU, LRC [Yu et al.] and MRD [Perez et al.] to
//! the SVM experiments "and do not realize any performance improvement
//! because SVM contains a single developer-cached dataset". This module
//! makes the block store's victim selection pluggable so that claim is
//! reproducible (see the `intro_eviction_policies` bench).
//!
//! * **LRU** — Spark's default: evict the least-recently-used block.
//! * **FIFO** — evict the oldest-inserted block (a sanity baseline).
//! * **LRC** — least reference count: evict the block of the dataset with
//!   the fewest *remaining* references in the job sequence.
//! * **MRD** — most reference distance: evict the block of the dataset
//!   whose next use is farthest in the future.
//!
//! LRC and MRD are DAG-aware: they need per-dataset hints (remaining
//! references, next-use distance) that the engine refreshes at every job
//! boundary from the lineage analysis.

use serde::{Deserialize, Serialize};

use dagflow::DatasetId;

/// Which victim-selection rule the block store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EvictionPolicyKind {
    /// Least recently used (Spark's default).
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Least (remaining) reference count, ties broken by LRU.
    Lrc,
    /// Most reference distance (farthest next use), ties broken by LRU.
    Mrd,
}

impl EvictionPolicyKind {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicyKind::Lru => "LRU",
            EvictionPolicyKind::Fifo => "FIFO",
            EvictionPolicyKind::Lrc => "LRC",
            EvictionPolicyKind::Mrd => "MRD",
        }
    }

    /// All policies, for comparison sweeps.
    #[must_use]
    pub fn all() -> [EvictionPolicyKind; 4] {
        [
            EvictionPolicyKind::Lru,
            EvictionPolicyKind::Fifo,
            EvictionPolicyKind::Lrc,
            EvictionPolicyKind::Mrd,
        ]
    }
}

/// Per-dataset scheduling hints for the DAG-aware policies, refreshed by
/// the engine at job boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DatasetHints {
    /// How many future jobs still reference the dataset.
    pub remaining_refs: u64,
    /// Distance (in jobs) to the next reference; `u32::MAX` if never used
    /// again.
    pub next_use_distance: u32,
}

/// Everything victim selection may look at for one candidate block.
#[derive(Debug, Clone, Copy)]
pub struct VictimCandidate {
    /// The block's dataset.
    pub dataset: DatasetId,
    /// Block size.
    pub bytes: u64,
    /// LRU stamp (larger = more recent).
    pub last_access: u64,
    /// Insertion stamp (larger = newer).
    pub inserted: u64,
    /// Hints for the block's dataset.
    pub hints: DatasetHints,
}

/// Returns the index of the candidate to evict under `kind`, or `None` if
/// there are no candidates.
#[must_use]
pub fn select_victim(kind: EvictionPolicyKind, candidates: &[VictimCandidate]) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let idx = match kind {
        EvictionPolicyKind::Lru => candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.last_access, c.dataset))
            .map(|(i, _)| i),
        EvictionPolicyKind::Fifo => candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.inserted, c.dataset))
            .map(|(i, _)| i),
        EvictionPolicyKind::Lrc => candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.hints.remaining_refs, c.last_access, c.dataset))
            .map(|(i, _)| i),
        EvictionPolicyKind::Mrd => candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| {
                (
                    c.hints.next_use_distance,
                    u64::MAX - c.last_access,
                    c.dataset,
                )
            })
            .map(|(i, _)| i),
    };
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(
        dataset: u32,
        last_access: u64,
        inserted: u64,
        refs: u64,
        dist: u32,
    ) -> VictimCandidate {
        VictimCandidate {
            dataset: DatasetId(dataset),
            bytes: 100,
            last_access,
            inserted,
            hints: DatasetHints {
                remaining_refs: refs,
                next_use_distance: dist,
            },
        }
    }

    #[test]
    fn lru_picks_oldest_access() {
        let c = [
            cand(0, 5, 1, 9, 1),
            cand(1, 2, 9, 9, 1),
            cand(2, 8, 2, 9, 1),
        ];
        assert_eq!(select_victim(EvictionPolicyKind::Lru, &c), Some(1));
    }

    #[test]
    fn fifo_picks_oldest_insert() {
        let c = [
            cand(0, 5, 3, 9, 1),
            cand(1, 2, 9, 9, 1),
            cand(2, 8, 1, 9, 1),
        ];
        assert_eq!(select_victim(EvictionPolicyKind::Fifo, &c), Some(2));
    }

    #[test]
    fn lrc_picks_fewest_remaining_refs() {
        let c = [
            cand(0, 5, 1, 3, 1),
            cand(1, 2, 2, 1, 1),
            cand(2, 8, 3, 7, 1),
        ];
        assert_eq!(select_victim(EvictionPolicyKind::Lrc, &c), Some(1));
    }

    #[test]
    fn lrc_ties_break_by_lru() {
        let c = [cand(0, 5, 1, 2, 1), cand(1, 2, 2, 2, 1)];
        assert_eq!(select_victim(EvictionPolicyKind::Lrc, &c), Some(1));
    }

    #[test]
    fn mrd_picks_farthest_next_use() {
        let c = [
            cand(0, 5, 1, 9, 2),
            cand(1, 2, 2, 9, 40),
            cand(2, 8, 3, 9, 7),
        ];
        assert_eq!(select_victim(EvictionPolicyKind::Mrd, &c), Some(1));
    }

    #[test]
    fn empty_candidates_yield_none() {
        for kind in EvictionPolicyKind::all() {
            assert_eq!(select_victim(kind, &[]), None);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            EvictionPolicyKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
