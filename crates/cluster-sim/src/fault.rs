//! Fault injection and Spark-style fault tolerance.
//!
//! A [`FaultPlan`] is an ordered schedule of injected events — executor
//! loss, slow node, transient task failures, memory-pressure spikes — and
//! a [`RetryPolicy`] describes how the simulated driver reacts: capped
//! task retries with deterministic backoff (`spark.task.maxFailures`),
//! executor blacklisting after repeated failures on one machine, and
//! speculative re-execution of straggler tasks (`spark.speculation`).
//!
//! Event semantics:
//!
//! * **Executor loss / memory pressure** mutate the block store, so they
//!   take effect at the first *job boundary* at or after `at_s` — the same
//!   granularity the old single `FailureSpec` used. An event scheduled
//!   after the last boundary is reported as *not fired* in the run's
//!   [`FaultSummary`] instead of being silently dropped.
//! * **Slow node / task failures** act on individual task attempts, so
//!   they apply to any attempt *starting* inside their window (slow node)
//!   or at/after `at_s` (task failures), with no boundary quantization.
//!
//! Determinism: a run with an empty plan and the default (speculation-off)
//! policy consumes zero extra RNG draws and performs the exact arithmetic
//! of a fault-free run, so its report is byte-identical to one produced
//! without the chaos layer.

use serde::{Deserialize, Serialize};

use crate::executor::ExecutorState;
use crate::memory::BlockStore;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The machine's executor dies: every cached block it held disappears
    /// and is recovered through lineage recomputation on later reads. The
    /// container is restarted immediately (YARN), so compute capacity is
    /// unchanged.
    ExecutorLoss {
        /// Index of the machine whose executor dies.
        machine: u32,
    },
    /// The machine runs degraded: every task attempt starting within
    /// `[at_s, at_s + duration_s)` on it is slowed by `factor` (GC storms,
    /// noisy neighbours, failing disks).
    SlowNode {
        /// Index of the degraded machine.
        machine: u32,
        /// Duration multiplier applied to affected task attempts (> 1).
        factor: f64,
        /// Length of the degradation window, seconds.
        duration_s: f64,
    },
    /// The next `count` task attempts starting at or after `at_s` fail
    /// transiently and are retried under the run's [`RetryPolicy`].
    TaskFailures {
        /// Number of attempts to fail.
        count: u32,
    },
    /// A co-tenant claims `bytes` of execution memory on the machine,
    /// holding it for `duration_s`; cached blocks above the protected
    /// floor R may be evicted to satisfy the claim.
    MemoryPressure {
        /// Index of the pressured machine.
        machine: u32,
        /// Execution bytes the co-tenant requests.
        bytes: u64,
        /// How long the claim is held, seconds.
        duration_s: f64,
    },
}

impl FaultKind {
    /// Canonical encoding of the event for [`crate::RunReport::digest`]:
    /// a type tag plus the parameters, floats by `to_bits`.
    #[must_use]
    pub(crate) fn digest_words(self) -> [u64; 4] {
        match self {
            FaultKind::ExecutorLoss { machine } => [0, u64::from(machine), 0, 0],
            FaultKind::SlowNode {
                machine,
                factor,
                duration_s,
            } => [
                1,
                u64::from(machine),
                factor.to_bits(),
                duration_s.to_bits(),
            ],
            FaultKind::TaskFailures { count } => [2, u64::from(count), 0, 0],
            FaultKind::MemoryPressure {
                machine,
                bytes,
                duration_s,
            } => [3, u64::from(machine), bytes, duration_s.to_bits()],
        }
    }

    /// Short human description, used by the chaos report.
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            FaultKind::ExecutorLoss { machine } => format!("executor loss on m{machine}"),
            FaultKind::SlowNode {
                machine,
                factor,
                duration_s,
            } => format!("slow node m{machine} x{factor} for {duration_s:.1} s"),
            FaultKind::TaskFailures { count } => format!("{count} transient task failures"),
            FaultKind::MemoryPressure {
                machine,
                bytes,
                duration_s,
            } => format!(
                "memory pressure on m{machine} ({} for {duration_s:.1} s)",
                obs::fmt_bytes(bytes)
            ),
        }
    }
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Earliest simulated time the event may take effect, seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered schedule of fault events. The default (empty) plan injects
/// nothing and leaves runs byte-identical to fault-free execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Events in schedule order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builder-style: appends one event.
    #[must_use]
    pub fn event(mut self, at_s: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_s, kind });
        self
    }

    /// A plan with a single executor loss — the old `FailureSpec`.
    #[must_use]
    pub fn executor_loss(machine: u32, at_s: f64) -> Self {
        FaultPlan::none().event(at_s, FaultKind::ExecutorLoss { machine })
    }
}

/// How the simulated driver reacts to task failures and stragglers.
/// The default mirrors Spark's: 4 attempts per task, no speculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per task (`spark.task.maxFailures`). After the
    /// budget is exhausted real Spark fails the job; the simulator lets
    /// the final attempt complete and records the exhaustion, so chaos
    /// runs always terminate.
    pub max_attempts: u32,
    /// Deterministic backoff before retry attempt `n` launches:
    /// `n × retry_backoff_s` after the failure instant.
    pub retry_backoff_s: f64,
    /// Blacklist a machine once this many task attempts failed on it
    /// (0 disables blacklisting). A blacklisted machine receives no new
    /// attempts unless every machine is blacklisted.
    pub blacklist_after: u32,
    /// Enable speculative re-execution of stragglers
    /// (`spark.speculation`).
    pub speculation: bool,
    /// A running task is a straggler once its duration exceeds
    /// `multiplier × mean(completed tasks in the stage)`
    /// (`spark.speculation.multiplier`).
    pub speculation_multiplier: f64,
    /// Minimum completed tasks in a stage before speculation may trigger.
    pub speculation_min_tasks: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            retry_backoff_s: 0.5,
            blacklist_after: 2,
            speculation: false,
            speculation_multiplier: 1.5,
            speculation_min_tasks: 4,
        }
    }
}

impl RetryPolicy {
    /// The default policy with speculative execution switched on.
    #[must_use]
    pub fn speculative() -> Self {
        RetryPolicy {
            speculation: true,
            ..RetryPolicy::default()
        }
    }
}

/// What became of one planned fault event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The planned event.
    pub event: FaultEvent,
    /// Whether the event took effect.
    pub fired: bool,
    /// When it first took effect (seconds), if it fired.
    pub fired_at_s: Option<f64>,
    /// Human-readable account: what the event did, or why it did not fire.
    pub detail: String,
}

/// A machine blacklisted after repeated task failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlacklistEvent {
    /// The blacklisted machine.
    pub machine: u32,
    /// When the blacklist triggered, seconds.
    pub at_s: f64,
    /// Failed attempts on the machine at that point.
    pub failures: u32,
}

/// Fault-tolerance summary of one run: per-event outcomes plus retry,
/// speculation and blacklist counters. Quiet (all-empty) for fault-free
/// runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// One outcome per planned event, in plan order.
    pub outcomes: Vec<FaultOutcome>,
    /// Task attempts that failed (injected transient failures).
    pub failed_attempts: u64,
    /// Failed attempts that were retried.
    pub retried_attempts: u64,
    /// Tasks whose retry budget was exhausted (the final attempt was
    /// forced to complete; real Spark would have failed the job).
    pub exhausted_tasks: u64,
    /// Task attempts slowed by a slow-node window.
    pub slowed_tasks: u64,
    /// Speculative task copies launched.
    pub speculative_launched: u64,
    /// Speculative copies that finished before the original attempt.
    pub speculative_wins: u64,
    /// Machines blacklisted during the run, in trigger order.
    pub blacklist: Vec<BlacklistEvent>,
}

impl FaultSummary {
    /// True when the run saw no chaos at all: no planned events and no
    /// retry/speculation/blacklist activity. Quiet summaries are excluded
    /// from [`crate::RunReport::digest`], keeping fault-free digests
    /// identical to the pre-chaos format.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.outcomes.is_empty()
            && self.failed_attempts == 0
            && self.retried_attempts == 0
            && self.exhausted_tasks == 0
            && self.slowed_tasks == 0
            && self.speculative_launched == 0
            && self.blacklist.is_empty()
    }

    /// Number of planned events that fired.
    #[must_use]
    pub fn fired_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fired).count()
    }

    /// Number of planned events that did not fire.
    #[must_use]
    pub fn unfired_count(&self) -> usize {
        self.outcomes.len() - self.fired_count()
    }
}

/// Live fault-injection state of one run. Owned by the engine; the
/// executor consults it per task attempt (slow windows, injected
/// failures, blacklist, speculation policy) and the engine fires
/// boundary events and finalizes the [`FaultSummary`].
#[derive(Debug)]
pub struct ChaosState {
    policy: RetryPolicy,
    /// Outcome slots, one per planned event, in plan order.
    outcomes: Vec<FaultOutcome>,
    /// Per-outcome effect counter (attempts slowed / failures injected).
    effect: Vec<u64>,
    /// Indices into `outcomes` of boundary events not yet fired.
    pending_boundary: Vec<usize>,
    /// Active slow windows: (outcome, machine, from_s, until_s, factor).
    windows: Vec<(usize, usize, f64, f64, f64)>,
    /// Armed transient failures: (outcome, at_s, remaining).
    pending_failures: Vec<(usize, f64, u32)>,
    /// Sum of `remaining` over `pending_failures` — the hot-path guard.
    pending_failure_total: u32,
    machine_failures: Vec<u32>,
    blacklisted: Vec<bool>,
    any_blacklisted: bool,
    all_blacklisted: bool,
    blacklist_events: Vec<BlacklistEvent>,
    /// Time of the most recent fault-injection boundary (job start).
    last_boundary_s: f64,
    failed_attempts: u64,
    retried_attempts: u64,
    exhausted_tasks: u64,
    slowed_tasks: u64,
    speculative_launched: u64,
    speculative_wins: u64,
}

impl ChaosState {
    /// Arms a plan for a run on `machines` machines.
    #[must_use]
    pub fn new(plan: &FaultPlan, policy: RetryPolicy, machines: usize) -> Self {
        let mut s = ChaosState {
            policy,
            outcomes: Vec::with_capacity(plan.events.len()),
            effect: vec![0; plan.events.len()],
            pending_boundary: Vec::new(),
            windows: Vec::new(),
            pending_failures: Vec::new(),
            pending_failure_total: 0,
            machine_failures: vec![0; machines],
            blacklisted: vec![false; machines],
            any_blacklisted: false,
            all_blacklisted: false,
            blacklist_events: Vec::new(),
            last_boundary_s: 0.0,
            failed_attempts: 0,
            retried_attempts: 0,
            exhausted_tasks: 0,
            slowed_tasks: 0,
            speculative_launched: 0,
            speculative_wins: 0,
        };
        for (oi, &ev) in plan.events.iter().enumerate() {
            let mut detail = String::new();
            let machine_of = match ev.kind {
                FaultKind::ExecutorLoss { machine }
                | FaultKind::SlowNode { machine, .. }
                | FaultKind::MemoryPressure { machine, .. } => Some(machine),
                FaultKind::TaskFailures { .. } => None,
            };
            match machine_of {
                Some(m) if (m as usize) >= machines => {
                    detail =
                        format!("machine {m} does not exist (cluster has {machines} machines)");
                }
                _ => match ev.kind {
                    FaultKind::ExecutorLoss { .. } | FaultKind::MemoryPressure { .. } => {
                        s.pending_boundary.push(oi);
                    }
                    FaultKind::SlowNode {
                        machine,
                        factor,
                        duration_s,
                    } => {
                        s.windows.push((
                            oi,
                            machine as usize,
                            ev.at_s,
                            ev.at_s + duration_s,
                            factor,
                        ));
                    }
                    FaultKind::TaskFailures { count } => {
                        s.pending_failures.push((oi, ev.at_s, count));
                        s.pending_failure_total += count;
                    }
                },
            }
            s.outcomes.push(FaultOutcome {
                event: ev,
                fired: false,
                fired_at_s: None,
                detail,
            });
        }
        s
    }

    /// The run's retry policy.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Fires every pending boundary event due at `now` (job start), in
    /// plan order. Executor loss drops the machine's cached blocks;
    /// memory pressure claims execution memory released after its
    /// duration via the executor's claim-expiry machinery.
    pub fn fire_due(&mut self, now: f64, store: &mut BlockStore, state: &mut ExecutorState) {
        self.last_boundary_s = now;
        if self.pending_boundary.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_boundary);
        for oi in pending {
            let ev = self.outcomes[oi].event;
            if now < ev.at_s {
                self.pending_boundary.push(oi);
                continue;
            }
            match ev.kind {
                FaultKind::ExecutorLoss { machine } => {
                    store.lose_machine(machine as usize);
                    self.outcomes[oi].detail =
                        "executor lost; cached blocks dropped, recovered via lineage".to_owned();
                }
                FaultKind::MemoryPressure {
                    machine,
                    bytes,
                    duration_s,
                } => {
                    let m = machine as usize;
                    let claimed = store.claim_exec(m, bytes);
                    state.add_claim(m, now + duration_s, claimed);
                    self.outcomes[oi].detail = format!(
                        "claimed {} of execution memory for {duration_s:.1} s",
                        obs::fmt_bytes(claimed)
                    );
                }
                _ => unreachable!("only boundary events are queued"),
            }
            self.outcomes[oi].fired = true;
            self.outcomes[oi].fired_at_s = Some(now);
        }
    }

    /// Combined slowdown factor for a task attempt starting at `start` on
    /// `machine` (1.0 when no window applies). Counts affected attempts.
    pub fn slow_factor(&mut self, machine: usize, start: f64) -> f64 {
        if self.windows.is_empty() {
            return 1.0;
        }
        let mut f = 1.0;
        let mut hit = false;
        for wi in 0..self.windows.len() {
            let (oi, m, from, until, factor) = self.windows[wi];
            if m == machine && start >= from && start < until {
                f *= factor;
                hit = true;
                self.effect[oi] += 1;
                if !self.outcomes[oi].fired {
                    self.outcomes[oi].fired = true;
                    self.outcomes[oi].fired_at_s = Some(start);
                }
            }
        }
        if hit {
            self.slowed_tasks += 1;
        }
        f
    }

    /// Consumes one armed transient failure applicable to an attempt
    /// starting at `start`, if any. The caller decides retry vs
    /// exhaustion from [`RetryPolicy::max_attempts`].
    pub fn take_failure(&mut self, start: f64) -> bool {
        if self.pending_failure_total == 0 {
            return false;
        }
        for i in 0..self.pending_failures.len() {
            let (oi, at, remaining) = self.pending_failures[i];
            if remaining > 0 && start >= at {
                self.pending_failures[i].2 -= 1;
                self.pending_failure_total -= 1;
                self.effect[oi] += 1;
                self.failed_attempts += 1;
                if !self.outcomes[oi].fired {
                    self.outcomes[oi].fired = true;
                    self.outcomes[oi].fired_at_s = Some(start);
                }
                return true;
            }
        }
        false
    }

    /// Records a failed-and-retried attempt on `machine` at `at`,
    /// blacklisting the machine once the policy threshold is reached.
    pub fn record_retry(&mut self, machine: usize, at: f64) {
        self.retried_attempts += 1;
        self.machine_failures[machine] += 1;
        if self.policy.blacklist_after > 0
            && self.machine_failures[machine] >= self.policy.blacklist_after
            && !self.blacklisted[machine]
        {
            self.blacklisted[machine] = true;
            self.any_blacklisted = true;
            self.all_blacklisted = self.blacklisted.iter().all(|&b| b);
            self.blacklist_events.push(BlacklistEvent {
                machine: machine as u32,
                at_s: at,
                failures: self.machine_failures[machine],
            });
        }
    }

    /// Records a task whose retry budget ran out.
    pub fn note_exhausted(&mut self) {
        self.exhausted_tasks += 1;
    }

    /// Records a speculative copy launch (and whether it won).
    pub fn note_speculative(&mut self, won: bool) {
        self.speculative_launched += 1;
        if won {
            self.speculative_wins += 1;
        }
    }

    /// Whether any machine is currently blacklisted (scheduling must use
    /// the constrained path).
    #[must_use]
    pub fn constrained(&self) -> bool {
        self.any_blacklisted
    }

    /// Whether `machine` must not receive new attempts. Always false once
    /// every machine is blacklisted — the run must still terminate.
    #[must_use]
    pub fn is_excluded(&self, machine: usize) -> bool {
        self.any_blacklisted && !self.all_blacklisted && self.blacklisted[machine]
    }

    /// Chaos counters for trace snapshots:
    /// `(task_retries, speculative_tasks, blacklisted_machines)`.
    #[must_use]
    pub fn counter_snapshot(&self) -> (u64, u64, u64) {
        (
            self.retried_attempts,
            self.speculative_launched,
            self.blacklist_events.len() as u64,
        )
    }

    /// Finalizes the run's [`FaultSummary`]: unfired events get an
    /// explanation (instead of being silently dropped) and task-granular
    /// events report how many attempts they affected.
    #[must_use]
    pub fn finish(mut self, end_s: f64) -> FaultSummary {
        for oi in 0..self.outcomes.len() {
            let o = &self.outcomes[oi];
            if !o.detail.is_empty() && !o.fired {
                continue; // out-of-range machine, explained at arm time
            }
            let ev = o.event;
            let detail = match ev.kind {
                FaultKind::SlowNode {
                    machine, factor, ..
                } => {
                    if o.fired {
                        format!(
                            "slowed {} task attempts on m{machine} x{factor}",
                            self.effect[oi]
                        )
                    } else {
                        format!(
                            "no task attempt started on m{machine} inside the window \
                             (run ended at {end_s:.3} s)"
                        )
                    }
                }
                FaultKind::TaskFailures { count } => {
                    let injected = self.effect[oi];
                    if o.fired {
                        format!("injected {injected} of {count} transient task failures")
                    } else {
                        format!(
                            "injected 0 of {count} failures: no attempt started at or after \
                             {:.3} s (run ended at {end_s:.3} s)",
                            ev.at_s
                        )
                    }
                }
                FaultKind::ExecutorLoss { .. } | FaultKind::MemoryPressure { .. } => {
                    if o.fired {
                        continue; // detail written at fire time
                    }
                    format!(
                        "not fired: scheduled at {:.3} s but the last fault-injection \
                         boundary (job start) was at {:.3} s",
                        ev.at_s, self.last_boundary_s
                    )
                }
            };
            self.outcomes[oi].detail = detail;
        }
        FaultSummary {
            outcomes: self.outcomes,
            failed_attempts: self.failed_attempts,
            retried_attempts: self.retried_attempts,
            exhausted_tasks: self.exhausted_tasks,
            slowed_tasks: self.slowed_tasks,
            speculative_launched: self.speculative_launched,
            speculative_wins: self.speculative_wins,
            blacklist: self.blacklist_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, MachineSpec, NoiseParams};
    use crate::rng::TaskNoise;

    fn harness(machines: u32) -> (BlockStore, ExecutorState) {
        let cluster = ClusterConfig::new(machines, MachineSpec::paper_example());
        let layout = std::sync::Arc::new(crate::memory::BlockLayout::from_partitions([4]));
        let store = BlockStore::new(&cluster, layout);
        let state = ExecutorState::new(machines, 4, TaskNoise::new(0, NoiseParams::NONE));
        (store, state)
    }

    #[test]
    fn empty_plan_is_quiet() {
        let chaos = ChaosState::new(&FaultPlan::none(), RetryPolicy::default(), 2);
        let summary = chaos.finish(10.0);
        assert!(summary.is_quiet());
        assert_eq!(summary.fired_count(), 0);
    }

    #[test]
    fn executor_loss_fires_at_boundary_and_drops_blocks() {
        let (mut store, mut state) = harness(2);
        store.try_insert(1, dagflow::DatasetId(0), 0, 1000);
        let plan = FaultPlan::executor_loss(1, 5.0);
        let mut chaos = ChaosState::new(&plan, RetryPolicy::default(), 2);
        chaos.fire_due(2.0, &mut store, &mut state);
        assert_eq!(store.resident_count(dagflow::DatasetId(0)), 1, "too early");
        chaos.fire_due(6.0, &mut store, &mut state);
        assert_eq!(store.resident_count(dagflow::DatasetId(0)), 0);
        let summary = chaos.finish(10.0);
        assert!(!summary.is_quiet());
        assert!(summary.outcomes[0].fired);
        assert_eq!(summary.outcomes[0].fired_at_s, Some(6.0));
    }

    #[test]
    fn late_event_is_reported_not_fired() {
        let (mut store, mut state) = harness(1);
        let plan = FaultPlan::executor_loss(0, 100.0);
        let mut chaos = ChaosState::new(&plan, RetryPolicy::default(), 1);
        chaos.fire_due(1.0, &mut store, &mut state);
        chaos.fire_due(8.0, &mut store, &mut state);
        let summary = chaos.finish(9.0);
        assert!(!summary.outcomes[0].fired);
        assert!(
            summary.outcomes[0].detail.contains("not fired"),
            "detail: {}",
            summary.outcomes[0].detail
        );
        assert!(summary.outcomes[0].detail.contains("8.000"));
        assert_eq!(summary.unfired_count(), 1);
    }

    #[test]
    fn nonexistent_machine_is_harmless_and_explained() {
        let (mut store, mut state) = harness(2);
        let plan = FaultPlan::executor_loss(99, 0.0);
        let mut chaos = ChaosState::new(&plan, RetryPolicy::default(), 2);
        chaos.fire_due(1.0, &mut store, &mut state);
        let summary = chaos.finish(2.0);
        assert!(!summary.outcomes[0].fired);
        assert!(summary.outcomes[0].detail.contains("does not exist"));
    }

    #[test]
    fn slow_window_applies_only_inside_and_on_machine() {
        let plan = FaultPlan::none().event(
            10.0,
            FaultKind::SlowNode {
                machine: 1,
                factor: 3.0,
                duration_s: 5.0,
            },
        );
        let mut chaos = ChaosState::new(&plan, RetryPolicy::default(), 2);
        assert_eq!(chaos.slow_factor(1, 9.9), 1.0, "before window");
        assert_eq!(chaos.slow_factor(0, 12.0), 1.0, "other machine");
        assert_eq!(chaos.slow_factor(1, 10.0), 3.0, "inclusive start");
        assert_eq!(chaos.slow_factor(1, 14.9), 3.0);
        assert_eq!(chaos.slow_factor(1, 15.0), 1.0, "exclusive end");
        let summary = chaos.finish(20.0);
        assert_eq!(summary.slowed_tasks, 2);
        assert!(summary.outcomes[0].fired);
        assert!(summary.outcomes[0].detail.contains("slowed 2"));
    }

    #[test]
    fn task_failures_are_consumed_in_order_and_counted() {
        let plan = FaultPlan::none().event(5.0, FaultKind::TaskFailures { count: 2 });
        let mut chaos = ChaosState::new(&plan, RetryPolicy::default(), 2);
        assert!(!chaos.take_failure(4.0), "before at_s");
        assert!(chaos.take_failure(5.0));
        assert!(chaos.take_failure(6.0));
        assert!(!chaos.take_failure(7.0), "budget spent");
        let summary = chaos.finish(8.0);
        assert_eq!(summary.failed_attempts, 2);
        assert!(summary.outcomes[0].detail.contains("injected 2 of 2"));
    }

    #[test]
    fn blacklist_triggers_after_threshold_and_never_strands_the_run() {
        let mut chaos = ChaosState::new(&FaultPlan::none(), RetryPolicy::default(), 2);
        assert!(!chaos.constrained());
        chaos.record_retry(1, 1.0);
        assert!(!chaos.is_excluded(1), "below threshold");
        chaos.record_retry(1, 2.0);
        assert!(chaos.constrained());
        assert!(chaos.is_excluded(1));
        assert!(!chaos.is_excluded(0));
        // Blacklisting every machine lifts the exclusion (termination).
        chaos.record_retry(0, 3.0);
        chaos.record_retry(0, 4.0);
        assert!(!chaos.is_excluded(0));
        assert!(!chaos.is_excluded(1));
        let summary = chaos.finish(5.0);
        assert_eq!(summary.blacklist.len(), 2);
        assert_eq!(summary.blacklist[0].machine, 1);
        assert_eq!(summary.blacklist[0].failures, 2);
        assert_eq!(summary.retried_attempts, 4);
    }

    #[test]
    fn memory_pressure_claims_and_schedules_release() {
        let (mut store, mut state) = harness(1);
        let plan = FaultPlan::none().event(
            0.0,
            FaultKind::MemoryPressure {
                machine: 0,
                bytes: 1_000_000,
                duration_s: 4.0,
            },
        );
        let mut chaos = ChaosState::new(&plan, RetryPolicy::default(), 1);
        chaos.fire_due(1.0, &mut store, &mut state);
        assert_eq!(store.exec_used(0), 1_000_000);
        assert_eq!(state.exec_claims[0].len(), 1);
        assert_eq!(state.exec_claims[0][0].0, 5.0);
        let summary = chaos.finish(10.0);
        assert!(summary.outcomes[0].fired);
        assert!(summary.outcomes[0].detail.contains("claimed"));
    }

    #[test]
    fn fault_plan_serde_roundtrip() {
        let plan = FaultPlan::none()
            .event(1.0, FaultKind::ExecutorLoss { machine: 2 })
            .event(
                3.0,
                FaultKind::SlowNode {
                    machine: 0,
                    factor: 2.5,
                    duration_s: 10.0,
                },
            )
            .event(5.0, FaultKind::TaskFailures { count: 3 })
            .event(
                7.0,
                FaultKind::MemoryPressure {
                    machine: 1,
                    bytes: 1 << 30,
                    duration_s: 2.0,
                },
            );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
