//! Per-machine unified memory and the cluster-wide block store.
//!
//! Implements Spark's memory semantics as described in §2.2 of the paper:
//!
//! * storage (cached blocks) and execution share the unified region M;
//! * inserting a new cached block may evict least-recently-used blocks of
//!   *other* datasets — never blocks of the dataset currently being cached
//!   (Spark never evicts an RDD's blocks to admit more blocks of the same
//!   RDD; this is what produces the stable `capacity/size` resident
//!   fraction of the paper's area A);
//! * execution claims may evict storage blocks, but only down to the
//!   protected floor R;
//! * unpersist drops all of a dataset's blocks immediately.
//!
//! # Dense interning
//!
//! `(dataset, partition)` pairs are interned to dense block indices via a
//! [`BlockLayout`] (a prefix sum over per-dataset partition counts), so the
//! cache-residency hot path — `residency`, `touch`/`read`, `try_insert` —
//! is straight array indexing instead of hashing. Eviction outcomes are
//! unchanged: every access and insert stamp comes from a strictly
//! monotonic clock, so victim selection has a unique minimum and is
//! independent of candidate enumeration order (this is also why the old
//! `HashMap`-iteration enumeration was deterministic across processes).

use std::collections::HashMap;
use std::sync::Arc;

use dagflow::{Application, DatasetId};

use crate::config::ClusterConfig;
use crate::eviction::{select_victim, DatasetHints, EvictionPolicyKind, VictimCandidate};
use crate::report::DatasetCacheStats;

/// Sentinel machine index meaning "not resident".
const NO_MACHINE: u32 = u32::MAX;

/// Per-block residency state. `loc == NO_MACHINE` means not resident; the
/// other fields are only meaningful while resident.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    /// Holding machine, or [`NO_MACHINE`].
    loc: u32,
    /// Position inside `resident[loc]`.
    pos: u32,
    bytes: u64,
    last_access: u64,
    inserted: u64,
}

impl Default for BlockMeta {
    fn default() -> Self {
        BlockMeta {
            loc: NO_MACHINE,
            pos: 0,
            bytes: 0,
            last_access: 0,
            inserted: 0,
        }
    }
}

/// Interns `(dataset, partition)` pairs to dense block indices: block
/// `offsets[d] + p` for partition `p` of dataset `d`. Built once per
/// application and shared (via `Arc`) by every run's [`BlockStore`].
#[derive(Debug)]
pub struct BlockLayout {
    /// `offsets[d]..offsets[d + 1]` is dataset `d`'s block range.
    offsets: Vec<usize>,
    /// Owning dataset of each block (the inverse mapping).
    block_dataset: Vec<DatasetId>,
}

impl BlockLayout {
    /// Layout for an application: one block slot per `(dataset, partition)`.
    #[must_use]
    pub fn from_app(app: &Application) -> Self {
        Self::from_partitions(app.datasets().iter().map(|d| d.partitions))
    }

    /// Layout from explicit per-dataset partition counts (dataset `i` has
    /// `partitions[i]` partitions).
    #[must_use]
    pub fn from_partitions(partitions: impl IntoIterator<Item = u32>) -> Self {
        let mut offsets = vec![0usize];
        let mut block_dataset = Vec::new();
        for (i, parts) in partitions.into_iter().enumerate() {
            let d = DatasetId(u32::try_from(i).expect("dataset count fits u32"));
            block_dataset.extend(std::iter::repeat_n(d, parts as usize));
            offsets.push(block_dataset.len());
        }
        BlockLayout {
            offsets,
            block_dataset,
        }
    }

    /// Number of datasets covered.
    #[must_use]
    pub fn dataset_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total block slots.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.block_dataset.len()
    }

    /// Partition count of a dataset.
    #[must_use]
    pub fn partitions(&self, d: DatasetId) -> u32 {
        (self.offsets[d.index() + 1] - self.offsets[d.index()]) as u32
    }

    /// Dense index of `(d, p)`, or `None` when `p` is out of the dataset's
    /// range (such a block can never be resident — the map-keyed store
    /// simply never found it).
    #[inline]
    #[must_use]
    pub fn block_of(&self, d: DatasetId, p: u32) -> Option<usize> {
        let start = self.offsets[d.index()];
        let end = self.offsets[d.index() + 1];
        let b = start + p as usize;
        (b < end).then_some(b)
    }

    /// Owning dataset of a block index.
    #[inline]
    #[must_use]
    pub fn dataset_of(&self, block: usize) -> DatasetId {
        self.block_dataset[block]
    }

    /// Partition index of a block within its dataset.
    #[inline]
    #[must_use]
    pub fn partition_of(&self, block: usize) -> u32 {
        (block - self.offsets[self.dataset_of(block).index()]) as u32
    }
}

/// Side state of a multi-tenant run: the dataset-id partitioning of the
/// combined [`BlockLayout`] plus cross-tenant eviction attribution.
///
/// The multi-tenant runner concatenates every tenant's datasets into one
/// layout; tenant `t` owns the dense dataset-id range
/// `base[t]..base[t + 1]`. While tenant `t` is active, every dataset-id
/// argument of the store's public API is interpreted in `t`'s local id
/// space and shifted by `base[t]`, so the single-tenant engine code runs
/// unmodified against the shared pool. Evictions charged while the victim
/// belongs to a *different* tenant are counted as cross-tenant, with the
/// victim block's cache lifetime accumulated for the residency half-life
/// estimate.
#[derive(Debug)]
struct Tenancy {
    /// `base[t]..base[t + 1]` is tenant `t`'s global dataset-id range.
    base: Vec<u32>,
    /// Active tenant (the one whose job body is currently executing).
    active: usize,
    /// Cached `base[active]`, the hot-path id shift.
    active_base: u32,
    /// Simulation clock of the runner, for block lifetimes.
    now_s: f64,
    /// Whether evictions are charged to the active tenant. Fault-driven
    /// evictions (machine loss) suspend charging: they are accounted by
    /// the fault summary, not as memory contention.
    charging: bool,
    /// Per-block insert time on the runner's clock.
    inserted_s: Vec<f64>,
    /// Per-tenant cross-tenant evictions suffered (their block, another
    /// tenant's insert or claim).
    suffered: Vec<u64>,
    /// Per-tenant cross-tenant evictions inflicted on other tenants.
    inflicted: Vec<u64>,
    /// Per-tenant sum of cache lifetimes of cross-evicted blocks, seconds.
    lifetime_sum_s: Vec<f64>,
}

impl Tenancy {
    /// Owning tenant of a *global* dataset id.
    fn tenant_of(&self, dataset: DatasetId) -> usize {
        self.base.partition_point(|&b| b <= dataset.0) - 1
    }
}

/// Cluster-wide cache: per-machine memory plus a dense block index and
/// per-dataset statistics.
#[derive(Debug)]
pub struct BlockStore {
    layout: Arc<BlockLayout>,
    policy: EvictionPolicyKind,
    /// Monotonic access/insert clock; every stamp is unique.
    clock: u64,
    /// Unified region M and protected storage floor R (same machine spec
    /// cluster-wide).
    unified: u64,
    min_storage: u64,
    /// Per-machine usage.
    storage_used: Vec<u64>,
    exec_used: Vec<u64>,
    /// Blocks resident on each machine (for victim enumeration).
    resident: Vec<Vec<u32>>,
    /// Per-block state, one struct per block so a read or insert touches
    /// one cache line instead of five parallel arrays.
    blocks: Vec<BlockMeta>,
    /// Per-dataset statistics; `touched[d]` marks datasets that ever got a
    /// stat update, reproducing the exact key set of the map-keyed store.
    stats: Vec<DatasetCacheStats>,
    touched: Vec<bool>,
    /// Per-dataset hints for the DAG-aware policies (default when unset).
    hints: Vec<DatasetHints>,
    /// Cluster-wide running totals, so peaks are O(1) instead of a
    /// per-insert sum over machines.
    total_storage: u64,
    total_exec: u64,
    peak_storage: u64,
    peak_exec: u64,
    /// Victim-selection scratch, reused across calls within a run.
    victim_keys: Vec<u32>,
    victim_cands: Vec<VictimCandidate>,
    /// Multi-tenant side state; `None` (the default) leaves every
    /// single-run code path untouched.
    tenancy: Option<Box<Tenancy>>,
}

impl BlockStore {
    /// Creates an empty store for a cluster, evicting with LRU (Spark's
    /// default).
    #[must_use]
    pub fn new(cluster: &ClusterConfig, layout: Arc<BlockLayout>) -> Self {
        BlockStore::with_policy(cluster, layout, EvictionPolicyKind::Lru)
    }

    /// Creates an empty store with an explicit eviction policy.
    #[must_use]
    pub fn with_policy(
        cluster: &ClusterConfig,
        layout: Arc<BlockLayout>,
        policy: EvictionPolicyKind,
    ) -> Self {
        let machines = cluster.machines as usize;
        let blocks = layout.block_count();
        let datasets = layout.dataset_count();
        BlockStore {
            policy,
            clock: 0,
            unified: cluster.spec.unified_memory(),
            min_storage: cluster.spec.min_storage(),
            storage_used: vec![0; machines],
            exec_used: vec![0; machines],
            resident: vec![Vec::new(); machines],
            blocks: vec![BlockMeta::default(); blocks],
            stats: (0..datasets)
                .map(|_| DatasetCacheStats::default())
                .collect(),
            touched: vec![false; datasets],
            hints: vec![DatasetHints::default(); datasets],
            total_storage: 0,
            total_exec: 0,
            peak_storage: 0,
            peak_exec: 0,
            victim_keys: Vec::new(),
            victim_cands: Vec::new(),
            tenancy: None,
            layout,
        }
    }

    /// Switches the store into multi-tenant mode. `base` partitions the
    /// layout's dataset-id space: tenant `t` owns
    /// `base[t]..base[t + 1]`, with `base.first() == 0` and
    /// `base.last() == dataset_count`. Until
    /// [`BlockStore::set_active_tenant`] changes it, tenant 0 is active.
    ///
    /// # Panics
    /// Panics when `base` does not tile the layout's dataset range.
    pub fn enable_tenancy(&mut self, base: Vec<u32>) {
        assert!(
            base.len() >= 2
                && base[0] == 0
                && *base.last().expect("non-empty") as usize == self.layout.dataset_count()
                && base.windows(2).all(|w| w[0] <= w[1]),
            "tenant bases must tile the combined dataset range"
        );
        let tenants = base.len() - 1;
        self.tenancy = Some(Box::new(Tenancy {
            base,
            active: 0,
            active_base: 0,
            now_s: 0.0,
            charging: true,
            inserted_s: vec![0.0; self.layout.block_count()],
            suffered: vec![0; tenants],
            inflicted: vec![0; tenants],
            lifetime_sum_s: vec![0.0; tenants],
        }));
    }

    /// Selects the tenant whose local dataset ids subsequent calls use and
    /// to whom charged evictions are attributed. No-op outside tenancy.
    pub fn set_active_tenant(&mut self, tenant: usize) {
        if let Some(t) = self.tenancy.as_deref_mut() {
            t.active = tenant;
            t.active_base = t.base[tenant];
        }
    }

    /// Advances the runner's simulation clock used to stamp block insert
    /// times and measure cross-evicted lifetimes. No-op outside tenancy.
    pub fn set_sim_now(&mut self, now_s: f64) {
        if let Some(t) = self.tenancy.as_deref_mut() {
            t.now_s = now_s;
        }
    }

    /// `(suffered, inflicted, residency_half_life_s)` of one tenant:
    /// cross-tenant evictions its blocks suffered, cross-tenant evictions
    /// it inflicted on others, and an exponential-decay half-life estimate
    /// (`ln 2 ×` mean cache lifetime of its cross-evicted blocks; zero
    /// when nothing was cross-evicted).
    #[must_use]
    pub fn tenant_contention(&self, tenant: usize) -> (u64, u64, f64) {
        let Some(t) = self.tenancy.as_deref() else {
            return (0, 0, 0.0);
        };
        let suffered = t.suffered[tenant];
        let half_life = if suffered > 0 {
            std::f64::consts::LN_2 * t.lifetime_sum_s[tenant] / suffered as f64
        } else {
            0.0
        };
        (suffered, t.inflicted[tenant], half_life)
    }

    /// Clones the touched statistics of one tenant's datasets, keyed by
    /// the tenant's *local* dataset ids — the per-tenant analogue of
    /// [`BlockStore::take_stats`], taken at the tenant's completion so
    /// later tenants' activity cannot leak in.
    #[must_use]
    pub fn tenant_stats(&self, tenant: usize) -> HashMap<DatasetId, DatasetCacheStats> {
        let Some(t) = self.tenancy.as_deref() else {
            return HashMap::new();
        };
        let (lo, hi) = (t.base[tenant] as usize, t.base[tenant + 1] as usize);
        (lo..hi)
            .filter(|&g| self.touched[g])
            .map(|g| (DatasetId((g - lo) as u32), self.stats[g].clone()))
            .collect()
    }

    /// Shifts a tenant-local dataset id into the combined layout's id
    /// space; the identity outside tenancy.
    #[inline]
    fn tid(&self, d: DatasetId) -> DatasetId {
        match self.tenancy.as_deref() {
            Some(t) => DatasetId(d.0 + t.active_base),
            None => d,
        }
    }

    /// The layout this store indexes blocks with.
    #[must_use]
    pub fn layout(&self) -> &Arc<BlockLayout> {
        &self.layout
    }

    /// Sets one dataset's DAG-aware hint (used by the LRC and MRD
    /// policies). The engine refreshes the hints of every persisted
    /// dataset at job boundaries; unset datasets keep the default hint,
    /// exactly like the old map's `unwrap_or_default` lookup.
    pub fn set_hint(&mut self, d: DatasetId, hint: DatasetHints) {
        let d = self.tid(d);
        self.hints[d.index()] = hint;
    }

    #[inline]
    fn stat(&mut self, d: DatasetId) -> &mut DatasetCacheStats {
        self.touched[d.index()] = true;
        &mut self.stats[d.index()]
    }

    fn free(&self, machine: usize) -> u64 {
        self.unified
            .saturating_sub(self.storage_used[machine])
            .saturating_sub(self.exec_used[machine])
    }

    /// Which machine holds the block, if resident.
    #[inline]
    #[must_use]
    pub fn residency(&self, dataset: DatasetId, partition: u32) -> Option<usize> {
        let b = self.layout.block_of(self.tid(dataset), partition)?;
        let m = self.blocks[b].loc;
        (m != NO_MACHINE).then_some(m as usize)
    }

    /// Records a cache read: refreshes the block's LRU stamp and counts a
    /// hit. No-op (counts a miss) if absent.
    pub fn touch(&mut self, dataset: DatasetId, partition: u32) -> bool {
        self.read(dataset, partition).is_some()
    }

    /// [`BlockStore::touch`] fused with [`BlockStore::residency`]: one
    /// lookup returning the holding machine on a hit. The clock ticks
    /// exactly once per call, hit or miss, like `touch` always did.
    #[inline]
    pub fn read(&mut self, dataset: DatasetId, partition: u32) -> Option<usize> {
        let dataset = self.tid(dataset);
        self.clock += 1;
        let now = self.clock;
        if let Some(b) = self.layout.block_of(dataset, partition) {
            let meta = &mut self.blocks[b];
            if meta.loc != NO_MACHINE {
                let m = meta.loc;
                meta.last_access = now;
                self.stat(dataset).hits += 1;
                return Some(m as usize);
            }
        }
        self.stat(dataset).misses += 1;
        None
    }

    /// Victim block on `machine` under the store's policy, excluding the
    /// `protect`ed dataset. Candidate order does not affect the outcome
    /// (unique clock stamps), only which scratch slots get filled.
    fn victim(&mut self, machine: usize, protect: Option<DatasetId>) -> Option<usize> {
        let mut keys = std::mem::take(&mut self.victim_keys);
        let mut cands = std::mem::take(&mut self.victim_cands);
        keys.clear();
        cands.clear();
        for &b in &self.resident[machine] {
            let d = self.layout.dataset_of(b as usize);
            if Some(d) == protect {
                continue;
            }
            let meta = &self.blocks[b as usize];
            keys.push(b);
            cands.push(VictimCandidate {
                dataset: d,
                bytes: meta.bytes,
                last_access: meta.last_access,
                inserted: meta.inserted,
                hints: self.hints[d.index()],
            });
        }
        let chosen = select_victim(self.policy, &cands).map(|i| keys[i] as usize);
        self.victim_keys = keys;
        self.victim_cands = cands;
        chosen
    }

    /// Structural removal of a resident block (no stat updates); returns
    /// its size.
    fn remove_block(&mut self, machine: usize, block: usize) -> u64 {
        let bytes = self.blocks[block].bytes;
        let list = &mut self.resident[machine];
        let i = self.blocks[block].pos as usize;
        list.swap_remove(i);
        if let Some(&moved) = list.get(i) {
            self.blocks[moved as usize].pos = i as u32;
        }
        self.blocks[block].loc = NO_MACHINE;
        self.storage_used[machine] -= bytes;
        self.total_storage -= bytes;
        bytes
    }

    /// Attempts to cache a freshly computed partition on `machine`,
    /// evicting LRU blocks of other datasets if needed. Returns whether the
    /// block is now resident.
    pub fn try_insert(
        &mut self,
        machine: usize,
        dataset: DatasetId,
        partition: u32,
        bytes: u64,
    ) -> bool {
        let dataset = self.tid(dataset);
        let block = self
            .layout
            .block_of(dataset, partition)
            .expect("partition within the dataset's layout");
        if self.blocks[block].loc != NO_MACHINE {
            return true; // already resident (e.g. recomputed concurrently)
        }
        self.stat(dataset).insert_attempts += 1;
        // Evict other datasets' LRU blocks until the block fits.
        while self.free(machine) < bytes {
            let Some(victim) = self.victim(machine, Some(dataset)) else {
                break;
            };
            self.evict_block(machine, victim);
        }
        if self.free(machine) < bytes {
            self.stat(dataset).insert_failures += 1;
            return false;
        }
        self.clock += 1;
        let now = self.clock;
        self.blocks[block] = BlockMeta {
            loc: machine as u32,
            pos: self.resident[machine].len() as u32,
            bytes,
            last_access: now,
            inserted: now,
        };
        self.resident[machine].push(block as u32);
        if let Some(t) = self.tenancy.as_deref_mut() {
            t.inserted_s[block] = t.now_s;
        }
        self.storage_used[machine] += bytes;
        self.total_storage += bytes;
        let s = self.stat(dataset);
        s.resident_partitions += 1;
        s.resident_bytes += bytes;
        s.peak_resident_bytes = s.peak_resident_bytes.max(s.resident_bytes);
        self.peak_storage = self.peak_storage.max(self.total_storage);
        true
    }

    fn evict_block(&mut self, machine: usize, block: usize) {
        let dataset = self.layout.dataset_of(block);
        let partition = self.layout.partition_of(block);
        // Cross-tenant attribution: a charged eviction whose victim block
        // belongs to another tenant is memory contention — count it on
        // both sides and accumulate the block's cache lifetime.
        if let Some(t) = self.tenancy.as_deref_mut() {
            if t.charging {
                let victim = t.tenant_of(dataset);
                if victim != t.active {
                    t.suffered[victim] += 1;
                    t.inflicted[t.active] += 1;
                    t.lifetime_sum_s[victim] += (t.now_s - t.inserted_s[block]).max(0.0);
                }
            }
        }
        let bytes = self.remove_block(machine, block);
        let s = self.stat(dataset);
        s.resident_partitions -= 1;
        s.resident_bytes -= bytes;
        s.evictions += 1;
        s.evicted_partition_ids.insert(partition);
    }

    /// Claims execution memory for a task on `machine`. Storage above the
    /// protected floor R is evicted (LRU, any dataset) to satisfy the
    /// claim. Returns the bytes actually claimed; a task granted less than
    /// it asked for must spill. Pass the returned value to
    /// [`BlockStore::release_exec`] when the task finishes.
    pub fn claim_exec(&mut self, machine: usize, bytes: u64) -> u64 {
        while self.free(machine) < bytes && self.storage_used[machine] > self.min_storage {
            let Some(victim) = self.victim(machine, None) else {
                break;
            };
            self.evict_block(machine, victim);
        }
        let claim = bytes.min(self.free(machine));
        self.exec_used[machine] += claim;
        self.total_exec += claim;
        self.peak_exec = self.peak_exec.max(self.total_exec);
        claim
    }

    /// Releases execution memory previously claimed on `machine`.
    pub fn release_exec(&mut self, machine: usize, bytes: u64) {
        let delta = bytes.min(self.exec_used[machine]);
        self.exec_used[machine] -= delta;
        self.total_exec -= delta;
    }

    /// Drops every block a machine holds (executor loss). The blocks
    /// count as evictions — downstream reads miss and recompute through
    /// lineage, and re-insertion may land on any machine.
    pub fn lose_machine(&mut self, machine: usize) {
        // A machine loss is a fault, not memory contention: suspend
        // cross-tenant charging for its evictions (the fault summary
        // accounts for them).
        if let Some(t) = self.tenancy.as_deref_mut() {
            t.charging = false;
        }
        while let Some(&b) = self.resident[machine].last() {
            self.evict_block(machine, b as usize);
        }
        if let Some(t) = self.tenancy.as_deref_mut() {
            t.charging = true;
        }
        self.total_exec -= self.exec_used[machine];
        self.exec_used[machine] = 0;
    }

    /// Unpersists a dataset: drops all of its blocks everywhere.
    pub fn drop_dataset(&mut self, dataset: DatasetId) {
        // Local id space: `drop_partition` applies the tenant shift.
        for p in 0..self.layout.partitions(self.tid(dataset)) {
            self.drop_partition(dataset, p);
        }
    }

    /// Drops a single partition (the `u(X) … p(Y)` partition-by-partition
    /// swap). Does not count as an eviction.
    pub fn drop_partition(&mut self, dataset: DatasetId, partition: u32) {
        let dataset = self.tid(dataset);
        let Some(block) = self.layout.block_of(dataset, partition) else {
            return;
        };
        let machine = self.blocks[block].loc;
        if machine != NO_MACHINE {
            let bytes = self.remove_block(machine as usize, block);
            let s = self.stat(dataset);
            s.resident_partitions -= 1;
            s.resident_bytes -= bytes;
            s.unpersisted += 1;
        }
    }

    /// Currently resident partition count of a dataset.
    #[inline]
    #[must_use]
    pub fn resident_count(&self, dataset: DatasetId) -> u32 {
        self.stats[self.tid(dataset).index()].resident_partitions
    }

    /// Bytes of storage used on one machine.
    #[must_use]
    pub fn storage_used(&self, machine: usize) -> u64 {
        self.storage_used[machine]
    }

    /// Bytes of execution memory in use on one machine.
    #[must_use]
    pub fn exec_used(&self, machine: usize) -> u64 {
        self.exec_used[machine]
    }

    /// Peak cluster-wide storage bytes observed.
    #[must_use]
    pub fn peak_storage(&self) -> u64 {
        self.peak_storage
    }

    /// Peak cluster-wide execution bytes observed.
    #[must_use]
    pub fn peak_exec(&self) -> u64 {
        self.peak_exec
    }

    /// Statistics of one dataset, `None` if the dataset was never touched
    /// (the map-keyed store had no entry for it).
    #[must_use]
    pub fn dataset_stats(&self, dataset: DatasetId) -> Option<&DatasetCacheStats> {
        let dataset = self.tid(dataset);
        self.touched[dataset.index()].then(|| &self.stats[dataset.index()])
    }

    /// Iterates the statistics of every touched dataset, in dataset-id
    /// order.
    pub fn touched_stats(&self) -> impl Iterator<Item = (DatasetId, &DatasetCacheStats)> {
        self.stats
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.touched[i])
            .map(|(i, s)| (DatasetId(i as u32), s))
    }

    /// Final per-dataset statistics (drained): exactly the datasets that
    /// were ever touched, as the map-keyed store reported.
    #[must_use]
    pub fn into_stats(mut self) -> HashMap<DatasetId, DatasetCacheStats> {
        self.take_stats()
    }

    /// Moves the touched-dataset statistics out without consuming the
    /// store, leaving `stats` empty. Used by the engine's run-scratch
    /// pool: the store goes back to the pool and [`BlockStore::reset_for`]
    /// rebuilds the vector on next use.
    pub fn take_stats(&mut self) -> HashMap<DatasetId, DatasetCacheStats> {
        std::mem::take(&mut self.stats)
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| self.touched[i])
            .map(|(i, s)| (DatasetId(i as u32), s))
            .collect()
    }

    /// Restores the store to the exact state a fresh
    /// [`BlockStore::with_policy`] call for `cluster`/`policy` would
    /// produce, reusing every allocation. The layout (and with it the
    /// application) must match the one the store was built with; cluster
    /// size and memory spec may differ, as they do across grid points.
    pub fn reset_for(&mut self, cluster: &ClusterConfig, policy: EvictionPolicyKind) {
        let machines = cluster.machines as usize;
        let blocks = self.layout.block_count();
        let datasets = self.layout.dataset_count();
        self.policy = policy;
        self.clock = 0;
        self.unified = cluster.spec.unified_memory();
        self.min_storage = cluster.spec.min_storage();
        self.storage_used.clear();
        self.storage_used.resize(machines, 0);
        self.exec_used.clear();
        self.exec_used.resize(machines, 0);
        self.resident.iter_mut().for_each(Vec::clear);
        self.resident.resize_with(machines, Vec::new);
        self.blocks.clear();
        self.blocks.resize(blocks, BlockMeta::default());
        self.stats.clear();
        self.stats.resize(datasets, DatasetCacheStats::default());
        self.touched.clear();
        self.touched.resize(datasets, false);
        self.hints.clear();
        self.hints.resize(datasets, DatasetHints::default());
        self.total_storage = 0;
        self.total_exec = 0;
        self.peak_storage = 0;
        self.peak_exec = 0;
        self.victim_keys.clear();
        self.victim_cands.clear();
        self.tenancy = None;
    }

    /// Number of machines in the store.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.storage_used.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineSpec;

    /// Store over a toy layout: dataset 0 is a 1-partition dummy, datasets
    /// 1 and 2 (`D_A`, `D_B`) have 10 partitions each.
    fn store(machines: u32, ram: u64) -> BlockStore {
        let spec = MachineSpec {
            ram_bytes: ram,
            ..MachineSpec::paper_example()
        };
        let layout = Arc::new(BlockLayout::from_partitions([1, 10, 10]));
        BlockStore::new(&ClusterConfig::new(machines, spec), layout)
    }

    const D_A: DatasetId = DatasetId(1);
    const D_B: DatasetId = DatasetId(2);

    #[test]
    fn layout_interning_round_trips() {
        let layout = BlockLayout::from_partitions([3, 0, 5, 1]);
        assert_eq!(layout.dataset_count(), 4);
        assert_eq!(layout.block_count(), 9);
        for d in 0..4u32 {
            for p in 0..layout.partitions(DatasetId(d)) {
                let b = layout.block_of(DatasetId(d), p).unwrap();
                assert_eq!(layout.dataset_of(b), DatasetId(d));
                assert_eq!(layout.partition_of(b), p);
            }
            // One past the end resolves to no block.
            let past = layout.partitions(DatasetId(d));
            assert_eq!(layout.block_of(DatasetId(d), past), None);
        }
    }

    #[test]
    fn insert_and_residency() {
        let mut s = store(2, 12_000_000_000);
        assert!(s.try_insert(0, D_A, 0, 1_000_000));
        assert_eq!(s.residency(D_A, 0), Some(0));
        assert_eq!(s.residency(D_A, 1), None);
        assert!(s.touch(D_A, 0));
        assert!(!s.touch(D_A, 1));
        let stats = s.dataset_stats(D_A).unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.resident_partitions, 1);
    }

    /// Spark's rule: a dataset never evicts its own blocks. Filling the
    /// machine with one dataset leaves the overflow uncached — the stable
    /// `capacity/size` residency of area A.
    #[test]
    fn same_dataset_never_self_evicts() {
        // M = (1e9 - 3e8) * 0.6 = 4.2e8; blocks of 1e8 → 4 fit.
        let mut s = store(1, 1_000_000_000);
        let mut cached = 0;
        for p in 0..10 {
            if s.try_insert(0, D_A, p, 100_000_000) {
                cached += 1;
            }
        }
        assert_eq!(cached, 4);
        assert_eq!(s.resident_count(D_A), 4);
        let st = s.dataset_stats(D_A).unwrap();
        assert_eq!(st.insert_failures, 6);
        assert_eq!(st.evictions, 0, "no self-eviction");
    }

    /// A new dataset evicts LRU blocks of an older one.
    #[test]
    fn cross_dataset_lru_eviction() {
        let mut s = store(1, 1_000_000_000); // M = 4.2e8
        for p in 0..4 {
            assert!(s.try_insert(0, D_A, p, 100_000_000));
        }
        // Touch partitions 2 and 3 so 0 and 1 are the LRU victims.
        s.touch(D_A, 2);
        s.touch(D_A, 3);
        assert!(s.try_insert(0, D_B, 0, 150_000_000));
        assert_eq!(s.resident_count(D_B), 1);
        assert_eq!(s.resident_count(D_A), 2);
        assert_eq!(s.residency(D_A, 0), None, "LRU victim");
        assert_eq!(s.residency(D_A, 1), None, "LRU victim");
        assert_eq!(s.residency(D_A, 2), Some(0));
        let st = s.dataset_stats(D_A).unwrap();
        assert_eq!(st.evictions, 2);
        assert!(st.evicted_partition_ids.contains(&0));
    }

    /// Execution pressure evicts storage only down to R.
    #[test]
    fn exec_claim_respects_storage_floor() {
        let mut s = store(1, 1_000_000_000); // M=4.2e8, R=2.1e8
        for p in 0..4 {
            assert!(s.try_insert(0, D_A, p, 100_000_000));
        }
        assert_eq!(s.storage_used(0), 400_000_000);
        // Claim 3e8 of execution: storage must shrink, but not below R.
        let claimed = s.claim_exec(0, 300_000_000);
        assert!(
            claimed < 300_000_000,
            "cannot fully satisfy without violating R"
        );
        assert!(s.storage_used(0) >= 200_000_000, "floor respected");
        assert!(s.storage_used(0) < 400_000_000, "some eviction happened");
        // A small claim that fits after the first is released.
        s.release_exec(0, s.exec_used(0));
        assert_eq!(s.claim_exec(0, 100_000_000), 100_000_000);
    }

    #[test]
    fn unpersist_drops_all_blocks() {
        let mut s = store(2, 12_000_000_000);
        s.try_insert(0, D_A, 0, 1000);
        s.try_insert(1, D_A, 1, 1000);
        s.try_insert(0, D_B, 0, 1000);
        s.drop_dataset(D_A);
        assert_eq!(s.resident_count(D_A), 0);
        assert_eq!(s.resident_count(D_B), 1);
        assert_eq!(s.residency(D_A, 1), None);
        let st = s.dataset_stats(D_A).unwrap();
        assert_eq!(st.unpersisted, 2);
        assert_eq!(st.evictions, 0);
    }

    #[test]
    fn drop_partition_swaps_one_block() {
        let mut s = store(1, 12_000_000_000);
        s.try_insert(0, D_A, 0, 1000);
        s.try_insert(0, D_A, 1, 1000);
        s.drop_partition(D_A, 0);
        assert_eq!(s.resident_count(D_A), 1);
        assert_eq!(s.residency(D_A, 1), Some(0));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = store(1, 12_000_000_000);
        assert!(s.try_insert(0, D_A, 0, 1000));
        assert!(s.try_insert(0, D_A, 0, 1000));
        assert_eq!(s.resident_count(D_A), 1);
    }

    #[test]
    fn peaks_track_maxima() {
        let mut s = store(1, 1_000_000_000);
        s.try_insert(0, D_A, 0, 100_000_000);
        s.claim_exec(0, 50_000_000);
        s.release_exec(0, 50_000_000);
        assert_eq!(s.peak_storage(), 100_000_000);
        assert_eq!(s.peak_exec(), 50_000_000);
    }

    #[test]
    fn lose_machine_evicts_and_clears_exec() {
        let mut s = store(2, 12_000_000_000);
        s.try_insert(0, D_A, 0, 1000);
        s.try_insert(0, D_A, 1, 1000);
        s.try_insert(1, D_A, 2, 1000);
        s.claim_exec(0, 500);
        s.lose_machine(0);
        assert_eq!(s.resident_count(D_A), 1);
        assert_eq!(s.storage_used(0), 0);
        assert_eq!(s.exec_used(0), 0);
        assert_eq!(s.residency(D_A, 2), Some(1));
        let st = s.dataset_stats(D_A).unwrap();
        assert_eq!(st.evictions, 2);
    }

    #[test]
    fn untouched_datasets_stay_out_of_stats() {
        let mut s = store(1, 12_000_000_000);
        s.try_insert(0, D_A, 0, 1000);
        assert!(s.dataset_stats(D_B).is_none());
        assert_eq!(s.touched_stats().count(), 1);
        let map = s.into_stats();
        assert_eq!(map.len(), 1);
        assert!(map.contains_key(&D_A));
    }

    /// Two-tenant store over the toy layout: tenant 0 owns datasets
    /// {0, 1} (dummy + 10 partitions), tenant 1 owns dataset {2} seen
    /// locally as its dataset 0 (10 partitions).
    fn tenant_store(ram: u64) -> BlockStore {
        let mut s = store(1, ram);
        s.enable_tenancy(vec![0, 2, 3]);
        s
    }

    #[test]
    fn tenancy_offsets_local_ids_round_trip() {
        let mut s = tenant_store(12_000_000_000);
        // Tenant 0's dataset 1 and tenant 1's dataset 0 are distinct
        // global blocks even though both are "their" first big dataset.
        s.set_active_tenant(0);
        assert!(s.try_insert(0, D_A, 3, 1000));
        s.set_active_tenant(1);
        assert_eq!(s.residency(DatasetId(0), 3), None, "other tenant's block");
        assert!(s.try_insert(0, DatasetId(0), 3, 1000));
        assert_eq!(s.residency(DatasetId(0), 3), Some(0));
        assert_eq!(s.resident_count(DatasetId(0)), 1);
        s.set_active_tenant(0);
        assert_eq!(s.residency(D_A, 3), Some(0));
        assert_eq!(s.resident_count(D_A), 1);
        // Per-tenant stats come back in local id space.
        let t1 = s.tenant_stats(1);
        assert_eq!(t1.len(), 1);
        assert_eq!(t1.get(&DatasetId(0)).unwrap().resident_partitions, 1);
        let t0 = s.tenant_stats(0);
        assert!(t0.contains_key(&D_A));
        assert!(!t0.contains_key(&DatasetId(2)), "local ids only");
    }

    #[test]
    fn cross_tenant_eviction_is_attributed_to_both_sides() {
        // M = 4.2e8: four 1e8 blocks fill the machine.
        let mut s = tenant_store(1_000_000_000);
        s.set_active_tenant(0);
        s.set_sim_now(10.0);
        for p in 0..4 {
            assert!(s.try_insert(0, D_A, p, 100_000_000));
        }
        // Tenant 1 inserts under pressure at t = 30 s: evicts tenant 0's
        // two LRU blocks (inserted at t = 10 s → lifetime 20 s each).
        s.set_active_tenant(1);
        s.set_sim_now(30.0);
        assert!(s.try_insert(0, DatasetId(0), 0, 150_000_000));
        let (suffered0, inflicted0, half_life0) = s.tenant_contention(0);
        assert_eq!(suffered0, 2);
        assert_eq!(inflicted0, 0);
        assert!((half_life0 - std::f64::consts::LN_2 * 20.0).abs() < 1e-12);
        let (suffered1, inflicted1, _) = s.tenant_contention(1);
        assert_eq!(suffered1, 0);
        assert_eq!(inflicted1, 2);
        // Totals balance: every suffered eviction was inflicted by someone.
        assert_eq!(suffered0 + suffered1, inflicted0 + inflicted1);
    }

    #[test]
    fn same_tenant_evictions_are_not_contention() {
        let mut s = tenant_store(1_000_000_000);
        s.set_active_tenant(0);
        for p in 0..4 {
            assert!(s.try_insert(0, D_A, p, 100_000_000));
        }
        // Tenant 0 evicting its *own* other dataset is plain pressure.
        assert!(s.try_insert(0, DatasetId(0), 0, 150_000_000));
        assert_eq!(s.tenant_contention(0), (0, 0, 0.0));
        assert_eq!(s.tenant_contention(1), (0, 0, 0.0));
    }

    #[test]
    fn machine_loss_evictions_are_not_charged_as_contention() {
        let mut s = tenant_store(12_000_000_000);
        s.set_active_tenant(0);
        s.try_insert(0, D_A, 0, 1000);
        s.set_active_tenant(1);
        s.lose_machine(0);
        assert_eq!(s.tenant_contention(0), (0, 0, 0.0), "fault, not contention");
        // Charging resumes after the loss.
        assert!(s.tenancy.as_deref().unwrap().charging);
    }

    #[test]
    fn reset_clears_tenancy() {
        let spec = MachineSpec {
            ram_bytes: 12_000_000_000,
            ..MachineSpec::paper_example()
        };
        let mut s = tenant_store(12_000_000_000);
        s.set_active_tenant(1);
        s.reset_for(&ClusterConfig::new(1, spec), EvictionPolicyKind::Lru);
        // Ids are global again: dataset 1 is D_A, not tenant 1's offset.
        assert!(s.try_insert(0, D_A, 0, 1000));
        assert_eq!(s.residency(D_A, 0), Some(0));
        assert_eq!(s.tenant_contention(0), (0, 0, 0.0));
    }
}
