//! Per-machine unified memory and the cluster-wide block store.
//!
//! Implements Spark's memory semantics as described in §2.2 of the paper:
//!
//! * storage (cached blocks) and execution share the unified region M;
//! * inserting a new cached block may evict least-recently-used blocks of
//!   *other* datasets — never blocks of the dataset currently being cached
//!   (Spark never evicts an RDD's blocks to admit more blocks of the same
//!   RDD; this is what produces the stable `capacity/size` resident
//!   fraction of the paper's area A);
//! * execution claims may evict storage blocks, but only down to the
//!   protected floor R;
//! * unpersist drops all of a dataset's blocks immediately.

use std::collections::HashMap;

use dagflow::DatasetId;

use crate::config::ClusterConfig;
use crate::eviction::{select_victim, DatasetHints, EvictionPolicyKind, VictimCandidate};
use crate::report::DatasetCacheStats;

/// Identifies one cached partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    /// The persisted dataset.
    pub dataset: DatasetId,
    /// Partition index within the dataset.
    pub partition: u32,
}

#[derive(Debug, Clone, Copy)]
struct Block {
    bytes: u64,
    last_access: u64,
    inserted: u64,
}

/// Memory state of one machine.
#[derive(Debug)]
struct MachineMemory {
    unified: u64,
    min_storage: u64,
    storage_used: u64,
    exec_used: u64,
    blocks: HashMap<BlockKey, Block>,
}

impl MachineMemory {
    fn free(&self) -> u64 {
        self.unified
            .saturating_sub(self.storage_used)
            .saturating_sub(self.exec_used)
    }

    /// Victim block under the given policy, excluding the `protect`ed
    /// dataset (the one currently being cached — Spark never evicts an
    /// RDD's blocks to admit more blocks of the same RDD).
    fn victim(
        &self,
        policy: EvictionPolicyKind,
        hints: &HashMap<DatasetId, DatasetHints>,
        protect: Option<DatasetId>,
    ) -> Option<BlockKey> {
        let mut keys: Vec<BlockKey> = Vec::with_capacity(self.blocks.len());
        let mut candidates: Vec<VictimCandidate> = Vec::with_capacity(self.blocks.len());
        for (k, b) in &self.blocks {
            if Some(k.dataset) == protect {
                continue;
            }
            keys.push(*k);
            candidates.push(VictimCandidate {
                dataset: k.dataset,
                bytes: b.bytes,
                last_access: b.last_access,
                inserted: b.inserted,
                hints: hints.get(&k.dataset).copied().unwrap_or_default(),
            });
        }
        select_victim(policy, &candidates).map(|i| keys[i])
    }
}

/// Cluster-wide cache: per-machine memory plus a global block index and
/// per-dataset statistics.
#[derive(Debug)]
pub struct BlockStore {
    machines: Vec<MachineMemory>,
    locations: HashMap<BlockKey, usize>,
    clock: u64,
    stats: HashMap<DatasetId, DatasetCacheStats>,
    peak_storage: u64,
    peak_exec: u64,
    policy: EvictionPolicyKind,
    hints: HashMap<DatasetId, DatasetHints>,
}

impl BlockStore {
    /// Creates an empty store for a cluster, evicting with LRU (Spark's
    /// default).
    #[must_use]
    pub fn new(cluster: &ClusterConfig) -> Self {
        BlockStore::with_policy(cluster, EvictionPolicyKind::Lru)
    }

    /// Creates an empty store with an explicit eviction policy.
    #[must_use]
    pub fn with_policy(cluster: &ClusterConfig, policy: EvictionPolicyKind) -> Self {
        let m = cluster.spec.unified_memory();
        let r = cluster.spec.min_storage();
        BlockStore {
            machines: (0..cluster.machines)
                .map(|_| MachineMemory {
                    unified: m,
                    min_storage: r,
                    storage_used: 0,
                    exec_used: 0,
                    blocks: HashMap::new(),
                })
                .collect(),
            locations: HashMap::new(),
            clock: 0,
            stats: HashMap::new(),
            peak_storage: 0,
            peak_exec: 0,
            policy,
            hints: HashMap::new(),
        }
    }

    /// Refreshes the DAG-aware per-dataset hints (used by the LRC and MRD
    /// policies). The engine calls this at job boundaries.
    pub fn set_hints(&mut self, hints: HashMap<DatasetId, DatasetHints>) {
        self.hints = hints;
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn stat(&mut self, d: DatasetId) -> &mut DatasetCacheStats {
        self.stats.entry(d).or_default()
    }

    /// Which machine holds the block, if resident.
    #[must_use]
    pub fn residency(&self, dataset: DatasetId, partition: u32) -> Option<usize> {
        self.locations
            .get(&BlockKey { dataset, partition })
            .copied()
    }

    /// Records a cache read: refreshes the block's LRU stamp and counts a
    /// hit. No-op (counts a miss) if absent.
    pub fn touch(&mut self, dataset: DatasetId, partition: u32) -> bool {
        let key = BlockKey { dataset, partition };
        let now = self.tick();
        if let Some(&mi) = self.locations.get(&key) {
            if let Some(b) = self.machines[mi].blocks.get_mut(&key) {
                b.last_access = now;
                self.stat(dataset).hits += 1;
                return true;
            }
        }
        self.stat(dataset).misses += 1;
        false
    }

    /// Attempts to cache a freshly computed partition on `machine`,
    /// evicting LRU blocks of other datasets if needed. Returns whether the
    /// block is now resident.
    pub fn try_insert(
        &mut self,
        machine: usize,
        dataset: DatasetId,
        partition: u32,
        bytes: u64,
    ) -> bool {
        let key = BlockKey { dataset, partition };
        if self.locations.contains_key(&key) {
            return true; // already resident (e.g. recomputed concurrently)
        }
        self.stat(dataset).insert_attempts += 1;
        // Evict other datasets' LRU blocks until the block fits.
        while self.machines[machine].free() < bytes {
            let Some(victim) =
                self.machines[machine].victim(self.policy, &self.hints, Some(dataset))
            else {
                break;
            };
            self.evict_block(machine, victim);
        }
        if self.machines[machine].free() < bytes {
            self.stat(dataset).insert_failures += 1;
            return false;
        }
        let now = self.tick();
        self.machines[machine].blocks.insert(
            key,
            Block {
                bytes,
                last_access: now,
                inserted: now,
            },
        );
        self.machines[machine].storage_used += bytes;
        self.locations.insert(key, machine);
        let s = self.stat(dataset);
        s.resident_partitions += 1;
        s.resident_bytes += bytes;
        s.peak_resident_bytes = s.peak_resident_bytes.max(s.resident_bytes);
        self.peak_storage = self
            .peak_storage
            .max(self.machines.iter().map(|m| m.storage_used).sum());
        true
    }

    fn evict_block(&mut self, machine: usize, key: BlockKey) {
        if let Some(block) = self.machines[machine].blocks.remove(&key) {
            self.machines[machine].storage_used -= block.bytes;
            self.locations.remove(&key);
            let s = self.stat(key.dataset);
            s.resident_partitions -= 1;
            s.resident_bytes -= block.bytes;
            s.evictions += 1;
            s.evicted_partition_ids.insert(key.partition);
        }
    }

    /// Claims execution memory for a task on `machine`. Storage above the
    /// protected floor R is evicted (LRU, any dataset) to satisfy the
    /// claim. Returns the bytes actually claimed; a task granted less than
    /// it asked for must spill. Pass the returned value to
    /// [`BlockStore::release_exec`] when the task finishes.
    pub fn claim_exec(&mut self, machine: usize, bytes: u64) -> u64 {
        while self.machines[machine].free() < bytes
            && self.machines[machine].storage_used > self.machines[machine].min_storage
        {
            let Some(victim) = self.machines[machine].victim(self.policy, &self.hints, None) else {
                break;
            };
            self.evict_block(machine, victim);
        }
        let claim = bytes.min(self.machines[machine].free());
        self.machines[machine].exec_used += claim;
        self.peak_exec = self
            .peak_exec
            .max(self.machines.iter().map(|m| m.exec_used).sum());
        claim
    }

    /// Releases execution memory previously claimed on `machine`.
    pub fn release_exec(&mut self, machine: usize, bytes: u64) {
        let m = &mut self.machines[machine];
        m.exec_used = m.exec_used.saturating_sub(bytes);
    }

    /// Drops every block a machine holds (executor loss). The blocks
    /// count as evictions — downstream reads miss and recompute through
    /// lineage, and re-insertion may land on any machine.
    pub fn lose_machine(&mut self, machine: usize) {
        let keys: Vec<BlockKey> = self.machines[machine].blocks.keys().copied().collect();
        for key in keys {
            self.evict_block(machine, key);
        }
        self.machines[machine].exec_used = 0;
    }

    /// Unpersists a dataset: drops all of its blocks everywhere.
    pub fn drop_dataset(&mut self, dataset: DatasetId) {
        let keys: Vec<(BlockKey, usize)> = self
            .locations
            .iter()
            .filter(|(k, _)| k.dataset == dataset)
            .map(|(k, &m)| (*k, m))
            .collect();
        for (key, machine) in keys {
            if let Some(block) = self.machines[machine].blocks.remove(&key) {
                self.machines[machine].storage_used -= block.bytes;
                self.locations.remove(&key);
                let s = self.stat(dataset);
                s.resident_partitions -= 1;
                s.resident_bytes -= block.bytes;
                s.unpersisted += 1;
            }
        }
    }

    /// Drops a single partition (the `u(X) … p(Y)` partition-by-partition
    /// swap). Does not count as an eviction.
    pub fn drop_partition(&mut self, dataset: DatasetId, partition: u32) {
        let key = BlockKey { dataset, partition };
        if let Some(&machine) = self.locations.get(&key) {
            if let Some(block) = self.machines[machine].blocks.remove(&key) {
                self.machines[machine].storage_used -= block.bytes;
                self.locations.remove(&key);
                let s = self.stat(dataset);
                s.resident_partitions -= 1;
                s.resident_bytes -= block.bytes;
                s.unpersisted += 1;
            }
        }
    }

    /// Currently resident partition count of a dataset.
    #[must_use]
    pub fn resident_count(&self, dataset: DatasetId) -> u32 {
        self.stats
            .get(&dataset)
            .map_or(0, |s| s.resident_partitions)
    }

    /// Bytes of storage used on one machine.
    #[must_use]
    pub fn storage_used(&self, machine: usize) -> u64 {
        self.machines[machine].storage_used
    }

    /// Bytes of execution memory in use on one machine.
    #[must_use]
    pub fn exec_used(&self, machine: usize) -> u64 {
        self.machines[machine].exec_used
    }

    /// Peak cluster-wide storage bytes observed.
    #[must_use]
    pub fn peak_storage(&self) -> u64 {
        self.peak_storage
    }

    /// Peak cluster-wide execution bytes observed.
    #[must_use]
    pub fn peak_exec(&self) -> u64 {
        self.peak_exec
    }

    /// Final per-dataset statistics (drained).
    #[must_use]
    pub fn into_stats(self) -> HashMap<DatasetId, DatasetCacheStats> {
        self.stats
    }

    /// Per-dataset statistics (borrowed).
    #[must_use]
    pub fn stats(&self) -> &HashMap<DatasetId, DatasetCacheStats> {
        &self.stats
    }

    /// Number of machines in the store.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineSpec;

    fn store(machines: u32, ram: u64) -> BlockStore {
        let spec = MachineSpec {
            ram_bytes: ram,
            ..MachineSpec::paper_example()
        };
        BlockStore::new(&ClusterConfig::new(machines, spec))
    }

    const D_A: DatasetId = DatasetId(1);
    const D_B: DatasetId = DatasetId(2);

    #[test]
    fn insert_and_residency() {
        let mut s = store(2, 12_000_000_000);
        assert!(s.try_insert(0, D_A, 0, 1_000_000));
        assert_eq!(s.residency(D_A, 0), Some(0));
        assert_eq!(s.residency(D_A, 1), None);
        assert!(s.touch(D_A, 0));
        assert!(!s.touch(D_A, 1));
        let stats = s.stats().get(&D_A).unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.resident_partitions, 1);
    }

    /// Spark's rule: a dataset never evicts its own blocks. Filling the
    /// machine with one dataset leaves the overflow uncached — the stable
    /// `capacity/size` residency of area A.
    #[test]
    fn same_dataset_never_self_evicts() {
        // M = (1e9 - 3e8) * 0.6 = 4.2e8; blocks of 1e8 → 4 fit.
        let mut s = store(1, 1_000_000_000);
        let mut cached = 0;
        for p in 0..10 {
            if s.try_insert(0, D_A, p, 100_000_000) {
                cached += 1;
            }
        }
        assert_eq!(cached, 4);
        assert_eq!(s.resident_count(D_A), 4);
        let st = s.stats().get(&D_A).unwrap();
        assert_eq!(st.insert_failures, 6);
        assert_eq!(st.evictions, 0, "no self-eviction");
    }

    /// A new dataset evicts LRU blocks of an older one.
    #[test]
    fn cross_dataset_lru_eviction() {
        let mut s = store(1, 1_000_000_000); // M = 4.2e8
        for p in 0..4 {
            assert!(s.try_insert(0, D_A, p, 100_000_000));
        }
        // Touch partitions 2 and 3 so 0 and 1 are the LRU victims.
        s.touch(D_A, 2);
        s.touch(D_A, 3);
        assert!(s.try_insert(0, D_B, 0, 150_000_000));
        assert_eq!(s.resident_count(D_B), 1);
        assert_eq!(s.resident_count(D_A), 2);
        assert_eq!(s.residency(D_A, 0), None, "LRU victim");
        assert_eq!(s.residency(D_A, 1), None, "LRU victim");
        assert_eq!(s.residency(D_A, 2), Some(0));
        let st = s.stats().get(&D_A).unwrap();
        assert_eq!(st.evictions, 2);
        assert!(st.evicted_partition_ids.contains(&0));
    }

    /// Execution pressure evicts storage only down to R.
    #[test]
    fn exec_claim_respects_storage_floor() {
        let mut s = store(1, 1_000_000_000); // M=4.2e8, R=2.1e8
        for p in 0..4 {
            assert!(s.try_insert(0, D_A, p, 100_000_000));
        }
        assert_eq!(s.storage_used(0), 400_000_000);
        // Claim 3e8 of execution: storage must shrink, but not below R.
        let claimed = s.claim_exec(0, 300_000_000);
        assert!(
            claimed < 300_000_000,
            "cannot fully satisfy without violating R"
        );
        assert!(s.storage_used(0) >= 200_000_000, "floor respected");
        assert!(s.storage_used(0) < 400_000_000, "some eviction happened");
        // A small claim that fits after the first is released.
        s.release_exec(0, s.exec_used(0));
        assert_eq!(s.claim_exec(0, 100_000_000), 100_000_000);
    }

    #[test]
    fn unpersist_drops_all_blocks() {
        let mut s = store(2, 12_000_000_000);
        s.try_insert(0, D_A, 0, 1000);
        s.try_insert(1, D_A, 1, 1000);
        s.try_insert(0, D_B, 0, 1000);
        s.drop_dataset(D_A);
        assert_eq!(s.resident_count(D_A), 0);
        assert_eq!(s.resident_count(D_B), 1);
        assert_eq!(s.residency(D_A, 1), None);
        let st = s.stats().get(&D_A).unwrap();
        assert_eq!(st.unpersisted, 2);
        assert_eq!(st.evictions, 0);
    }

    #[test]
    fn drop_partition_swaps_one_block() {
        let mut s = store(1, 12_000_000_000);
        s.try_insert(0, D_A, 0, 1000);
        s.try_insert(0, D_A, 1, 1000);
        s.drop_partition(D_A, 0);
        assert_eq!(s.resident_count(D_A), 1);
        assert_eq!(s.residency(D_A, 1), Some(0));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = store(1, 12_000_000_000);
        assert!(s.try_insert(0, D_A, 0, 1000));
        assert!(s.try_insert(0, D_A, 0, 1000));
        assert_eq!(s.resident_count(D_A), 1);
    }

    #[test]
    fn peaks_track_maxima() {
        let mut s = store(1, 1_000_000_000);
        s.try_insert(0, D_A, 0, 100_000_000);
        s.claim_exec(0, 50_000_000);
        s.release_exec(0, 50_000_000);
        assert_eq!(s.peak_storage(), 100_000_000);
        assert_eq!(s.peak_exec(), 50_000_000);
    }
}
