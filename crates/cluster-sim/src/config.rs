//! Cluster and simulation configuration.

use serde::{Deserialize, Serialize};

/// Spark's memory layout constants (paper §2.2, Figure 3).
///
/// `M = (ram − reserved) × memory_fraction` is the unified region shared by
/// execution and storage; `R = M × storage_fraction` is the minimum storage
/// region protected from execution pressure. The defaults are Spark 2.4's
/// (`spark.memory.fraction = 0.6`, `spark.memory.storageFraction = 0.5`,
/// 300 MB reserved), which are also the constants of the paper's running
/// example: on a 12 GB machine, `M = (12 GB − 300 MB) × 0.6 = 7.02 GB` and
/// `R = 3.51 GB`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// Bytes reserved for the system (Spark's 300 MB).
    pub reserved_bytes: u64,
    /// Fraction of remaining memory forming the unified region M.
    pub memory_fraction: f64,
    /// Fraction of M protected for storage (R).
    pub storage_fraction: f64,
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout {
            reserved_bytes: 300_000_000,
            memory_fraction: 0.6,
            storage_fraction: 0.5,
        }
    }
}

/// Hardware description of one cluster machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Total RAM in bytes.
    pub ram_bytes: u64,
    /// Executor cores (parallel task slots).
    pub cores: u32,
    /// Relative CPU speed (1.0 = the calibration machine).
    pub cpu_speed: f64,
    /// Sequential disk/DFS read bandwidth, bytes per second.
    pub disk_bandwidth: f64,
    /// Network bandwidth per machine, bytes per second.
    pub network_bandwidth: f64,
    /// Bandwidth of reading cached blocks from storage memory, bytes/s.
    pub cache_read_bandwidth: f64,
    /// Memory layout constants.
    pub memory: MemoryLayout,
}

impl MachineSpec {
    /// The paper's §2.2 example machine: 12 GB RAM, 4 cores, 1 GBit/s LAN.
    #[must_use]
    pub fn paper_example() -> Self {
        MachineSpec {
            ram_bytes: 12_000_000_000,
            cores: 4,
            cpu_speed: 1.0,
            // Effective HDFS scan bandwidth per node (replication, seek and
            // deserialization overheads included).
            disk_bandwidth: 80.0e6,
            network_bandwidth: 125.0e6, // 1 GBit/s
            cache_read_bandwidth: 2.0e9,
            memory: MemoryLayout::default(),
        }
    }

    /// The evaluation cluster of §7.1: 16 GB RAM, 4 cores at 2.9 GHz,
    /// 1 GBit/s LAN.
    #[must_use]
    pub fn private_cluster() -> Self {
        MachineSpec {
            ram_bytes: 16_000_000_000,
            ..MachineSpec::paper_example()
        }
    }

    /// The single calibration node of §7.1 (Core i3, 3.8 GB RAM).
    #[must_use]
    pub fn calibration_node() -> Self {
        MachineSpec {
            ram_bytes: 3_800_000_000,
            cores: 4,
            cpu_speed: 0.83, // 2.4 GHz vs the cluster's 2.9 GHz
            ..MachineSpec::paper_example()
        }
    }

    /// The unified memory region M in bytes (§2.2).
    #[must_use]
    pub fn unified_memory(&self) -> u64 {
        let usable = self.ram_bytes.saturating_sub(self.memory.reserved_bytes);
        (usable as f64 * self.memory.memory_fraction) as u64
    }

    /// The protected storage region R in bytes (§2.2).
    #[must_use]
    pub fn min_storage(&self) -> u64 {
        (self.unified_memory() as f64 * self.memory.storage_fraction) as u64
    }
}

/// A cluster: `machines` identical [`MachineSpec`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker machines.
    pub machines: u32,
    /// Per-machine hardware.
    pub spec: MachineSpec,
}

impl ClusterConfig {
    /// Convenience constructor.
    #[must_use]
    pub fn new(machines: u32, spec: MachineSpec) -> Self {
        ClusterConfig { machines, spec }
    }

    /// Total task slots.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.machines * self.spec.cores
    }

    /// Total unified memory across machines.
    #[must_use]
    pub fn total_unified_memory(&self) -> u64 {
        u64::from(self.machines) * self.spec.unified_memory()
    }
}

/// Task-duration noise: a lognormal factor `exp(σ·z)` on every task plus
/// rare stragglers — the "uncertain internal cluster dynamics and
/// stragglers" of §7.3/§7.5 that make some recommendations near-optimal
/// rather than optimal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// Lognormal sigma of per-task noise (0 disables).
    pub sigma: f64,
    /// Probability that a task is a straggler.
    pub straggler_prob: f64,
    /// Duration multiplier for straggler tasks.
    pub straggler_factor: f64,
    /// Minimum duration of a straggler task, seconds. Stragglers stem from
    /// GC pauses, disk hiccups and slow containers, whose magnitude does
    /// not shrink with the data: a task processing a few kilobytes still
    /// stalls for seconds. This floor is what makes tiny-sample training
    /// runs (Ernest's, §7.3) noisy while full-scale tasks barely notice.
    pub straggler_floor_s: f64,
}

impl NoiseParams {
    /// No noise at all (fully deterministic task durations).
    pub const NONE: NoiseParams = NoiseParams {
        sigma: 0.0,
        straggler_prob: 0.0,
        straggler_factor: 1.0,
        straggler_floor_s: 0.0,
    };
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams {
            sigma: 0.04,
            straggler_prob: 0.01,
            straggler_factor: 2.5,
            straggler_floor_s: 2.5,
        }
    }
}

/// Engine-level simulation parameters. The workload crate ships calibrated
/// values per application; these defaults describe a generic Spark 2.4 +
/// YARN deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// One-off application start-up (container launch, context init).
    pub app_startup_s: f64,
    /// Serial driver time per job (DAG construction, result handling).
    pub driver_per_job_s: f64,
    /// Extra serial driver time per machine per job (coordination,
    /// result aggregation fan-in) — the area-B growth term.
    pub driver_per_machine_s: f64,
    /// Serial driver cost of launching one task (scheduling loop).
    pub task_launch_s: f64,
    /// Fixed latency per shuffle-read connection to one peer machine.
    pub shuffle_connection_s: f64,
    /// Execution memory the application claims, as a fraction of the
    /// unified region M when all cores run tasks (each task claims
    /// `fraction × M / cores` — Spark's fair-share execution pool). This
    /// is what the §5.3 memory factor measures: SVM's 0.202 reproduces
    /// the paper's "20.2 % of M is utilized for execution", leaving
    /// 5.6 GB per 12 GB machine for caching.
    pub exec_mem_per_task_factor: f64,
    /// Slowdown multiplier applied to a task that could not claim its
    /// execution memory (spilling).
    pub spill_penalty: f64,
    /// Runtime cache-eviction policy (Spark's default is LRU; LRC and MRD
    /// reproduce the §1 eviction-policy comparison).
    pub eviction_policy: crate::eviction::EvictionPolicyKind,
    /// Task-duration noise.
    pub noise: NoiseParams,
    /// Absolute per-run cluster-dynamics jitter, seconds: container
    /// provisioning, YARN scheduling and JVM warm-up vary between runs by
    /// a roughly constant amount regardless of data size. A uniform draw
    /// in `[0, cluster_jitter_s]` is added to the startup and a smaller
    /// per-job wobble to driver time. This is the "uncertain internal
    /// cluster dynamics" of §7.3 that makes short sample runs (Ernest's
    /// training data) noisy while leaving long runs essentially
    /// unaffected.
    pub cluster_jitter_s: f64,
    /// Ordered schedule of injected fault events (executor loss, slow
    /// nodes, transient task failures, memory pressure). Empty by
    /// default: a run with an empty plan is byte-identical to one with
    /// no chaos layer at all.
    pub faults: crate::fault::FaultPlan,
    /// Fault-tolerance policy: task retry, blacklisting, speculation.
    pub retry: crate::fault::RetryPolicy,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            app_startup_s: 8.0,
            driver_per_job_s: 0.25,
            driver_per_machine_s: 0.03,
            task_launch_s: 0.004,
            shuffle_connection_s: 0.02,
            exec_mem_per_task_factor: 0.15,
            spill_penalty: 1.6,
            eviction_policy: crate::eviction::EvictionPolicyKind::Lru,
            noise: NoiseParams::default(),
            cluster_jitter_s: 12.0,
            faults: crate::fault::FaultPlan::default(),
            retry: crate::fault::RetryPolicy::default(),
            seed: 0xC0FFEE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2.2's worked example: 12 GB machine ⇒ M = 7.02 GB, R = 3.51 GB.
    #[test]
    fn paper_memory_layout_example() {
        let spec = MachineSpec::paper_example();
        assert_eq!(spec.unified_memory(), 7_020_000_000);
        assert_eq!(spec.min_storage(), 3_510_000_000);
    }

    #[test]
    fn cluster_totals() {
        let c = ClusterConfig::new(7, MachineSpec::paper_example());
        assert_eq!(c.total_cores(), 28);
        assert_eq!(c.total_unified_memory(), 7 * 7_020_000_000);
    }

    #[test]
    fn reserved_larger_than_ram_saturates() {
        let spec = MachineSpec {
            ram_bytes: 100,
            ..MachineSpec::paper_example()
        };
        assert_eq!(spec.unified_memory(), 0);
        assert_eq!(spec.min_storage(), 0);
    }

    #[test]
    fn noise_none_is_identity() {
        assert_eq!(NoiseParams::NONE.sigma, 0.0);
        assert_eq!(NoiseParams::NONE.straggler_factor, 1.0);
    }
}
