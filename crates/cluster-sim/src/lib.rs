#![warn(missing_docs)]
//! # cluster-sim — a discrete-event Spark-like cluster simulator
//!
//! The execution substrate for the Juggler (SIGMOD '22) reproduction. The
//! real paper runs on a 12-node Spark 2.4 cluster; this crate replaces that
//! testbed with a simulator that implements the *mechanisms* Juggler's
//! observations rest on:
//!
//! * **Unified memory (§2.2)** — per machine, `M = (RAM − reserved) ×
//!   memory_fraction` shared between execution and storage, with a floor `R
//!   = M × storage_fraction` below which cached blocks are safe from
//!   execution pressure. Blocks of the dataset currently being cached are
//!   never evicted to make room for its own new blocks — Spark's rule, and
//!   the reason a dataset bigger than the cluster's cache keeps a
//!   `capacity/size` fraction resident and recomputes the rest every
//!   iteration (the paper's *area A*).
//! * **Wave-based task execution (§2.1, §3.3)** — stages run `num_tasks`
//!   tasks over `machines × cores` slots with cache-locality preference,
//!   seeded lognormal noise and rare stragglers.
//! * **Shuffle and driver overheads** — per-job serial driver time, a
//!   per-machine coordination term, and all-to-all shuffle reads whose
//!   per-peer overhead grows with the number of machines (the paper's
//!   *area B*).
//! * **Schedule semantics (§5.1)** — persist on first computation;
//!   `u(X) … p(Y)` swaps X's blocks out partition-by-partition as Y's
//!   blocks materialize, so the pair's peak footprint is `max(|X|, |Y|)`.
//!
//! Every run is deterministic given [`SimParams::seed`]. Reports expose
//! task-level traces (consumed by the `instrument` crate, which plays the
//! role of the paper's Spark_i) and cache statistics (consumed by Juggler's
//! memory calibration).

pub mod config;
pub mod engine;
pub mod eviction;
pub mod executor;
pub mod fault;
pub mod memory;
pub mod report;
pub mod rng;
pub mod task;
pub mod tenant;
pub mod trace;
pub mod trace_view;

pub use config::{ClusterConfig, MachineSpec, MemoryLayout, NoiseParams, SimParams};
pub use engine::{Engine, EnginePrep, RunOptions};
pub use eviction::EvictionPolicyKind;
pub use fault::{
    BlacklistEvent, FaultEvent, FaultKind, FaultOutcome, FaultPlan, FaultSummary, RetryPolicy,
};
pub use memory::{BlockLayout, BlockStore};
pub use report::{
    CacheStats, ContentionSummary, DatasetCacheStats, PipelineStep, RunReport, StageTiming,
    StepKind, TaskTrace,
};
pub use tenant::{TenancyReport, Tenant, TenantSet};
pub use trace::{
    DurationHistogram, RunTrace, TraceConfig, TraceCounters, TraceEvent, TraceRecorder,
};
pub use trace_view::render_gantt;
