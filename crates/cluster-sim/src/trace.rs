//! Structured run tracing: span + counter events recorded into a bounded
//! ring buffer during a simulated run, with Chrome `trace_event` and JSONL
//! exporters.
//!
//! The layer exists because aggregate [`crate::RunReport`] numbers cannot
//! answer *which* task, wave or eviction made a run diverge from the
//! paper's figures. With tracing enabled the engine emits
//!
//! * **span events** — one per job, stage, wave and task, with integer
//!   microsecond timestamps;
//! * **counter snapshots** — cumulative cache hits/misses, evictions,
//!   insert failures, unpersists, spills and locality fallbacks, taken at
//!   every stage boundary;
//!
//! into a fixed-capacity ring buffer (oldest events drop first; the drop
//! count is reported). When disabled, recording is a single branch per
//! call site — no allocation, no event construction.
//!
//! **Determinism contract:** timestamps are produced by the deterministic
//! simulator clock and quantized to integer microseconds, so for a fixed
//! `(application, cluster, SimParams::seed)` the event stream — and both
//! serialized exports — are bit-identical on every run, at any worker
//! thread count of the surrounding experiment harness.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Default ring-buffer capacity, events.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Number of log2 buckets in the task-duration histogram.
const HIST_BUCKETS: usize = 32;

/// Trace knob carried by [`crate::RunOptions`]: whether to record, and how
/// many events the ring buffer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record structured trace events for this run.
    pub enabled: bool,
    /// Ring-buffer capacity in events; once full, the oldest events are
    /// dropped (and counted in [`RunTrace::dropped_events`]).
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing on, default capacity.
    #[must_use]
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Converts simulator seconds to integer trace microseconds. Quantizing
/// keeps every export byte-stable: no float formatting is involved.
#[must_use]
pub fn to_micros(seconds: f64) -> u64 {
    if seconds <= 0.0 {
        return 0;
    }
    (seconds * 1e6).round() as u64
}

/// Cumulative run counters, snapshotted at stage boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCounters {
    /// Cache reads that found the block resident.
    pub cache_hits: u64,
    /// Cache reads that missed (forcing recomputation).
    pub cache_misses: u64,
    /// Blocks evicted under memory pressure.
    pub evictions: u64,
    /// Cache inserts rejected for lack of memory.
    pub insert_failures: u64,
    /// Blocks dropped by unpersist/swap.
    pub unpersisted: u64,
    /// Tasks that could not claim execution memory and spilled.
    pub spills: u64,
    /// Tasks that gave up on their cache-local machine and ran elsewhere.
    pub locality_fallbacks: u64,
    /// Task attempts that failed from an injected fault and were retried.
    pub task_retries: u64,
    /// Speculative straggler copies launched.
    pub speculative_tasks: u64,
    /// Machines blacklisted after repeated task failures.
    pub blacklisted_machines: u64,
}

/// One structured trace event. Timestamps are integer microseconds of
/// simulated time (see [`to_micros`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// One job, start to finish (driver tail included).
    JobSpan {
        /// Job index.
        job: u32,
        /// Span start, µs.
        start_us: u64,
        /// Span end, µs.
        end_us: u64,
    },
    /// One executed stage.
    StageSpan {
        /// Containing job.
        job: u32,
        /// Stage id within the job.
        stage: u32,
        /// Span start, µs.
        start_us: u64,
        /// Span end, µs.
        end_us: u64,
        /// Tasks the stage ran.
        tasks: u32,
    },
    /// One wave of a stage: the tasks dispatched onto the `wave`-th round
    /// of cluster slots (`⌈tasks / total_cores⌉` waves per stage, §3.3).
    WaveSpan {
        /// Containing job.
        job: u32,
        /// Containing stage.
        stage: u32,
        /// Wave index within the stage.
        wave: u32,
        /// Earliest task start in the wave, µs.
        start_us: u64,
        /// Latest task finish in the wave, µs.
        end_us: u64,
        /// Tasks in the wave.
        tasks: u32,
    },
    /// One executed task.
    TaskSpan {
        /// Containing job.
        job: u32,
        /// Containing stage.
        stage: u32,
        /// Task index (= partition index of the stage output).
        task: u32,
        /// Machine the task ran on.
        machine: u32,
        /// Core lane on that machine.
        core: u32,
        /// Task start, µs.
        start_us: u64,
        /// Task end, µs.
        end_us: u64,
        /// The task could not claim its execution memory and spilled.
        spilled: bool,
        /// The task preferred a cache-local machine but ran elsewhere.
        locality_fallback: bool,
    },
    /// Cumulative counters at a stage boundary.
    CounterSnapshot {
        /// Snapshot time, µs.
        at_us: u64,
        /// Cumulative values since run start.
        counters: TraceCounters,
    },
}

impl TraceEvent {
    /// Span start (snapshot time for counters), µs — events are recorded
    /// in execution order, exporters never need to sort.
    #[must_use]
    pub fn timestamp_us(&self) -> u64 {
        match *self {
            TraceEvent::JobSpan { start_us, .. }
            | TraceEvent::StageSpan { start_us, .. }
            | TraceEvent::WaveSpan { start_us, .. }
            | TraceEvent::TaskSpan { start_us, .. } => start_us,
            TraceEvent::CounterSnapshot { at_us, .. } => at_us,
        }
    }
}

/// Fixed-capacity event ring: pushes past capacity drop the oldest event
/// and bump the drop counter, so a trace of a long run keeps its tail
/// (the part that usually holds the divergence being debugged).
#[derive(Debug)]
pub struct TraceBuffer {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty ring of `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            // Grow on demand (amortized O(1)) instead of pre-allocating the
            // full ring: short runs never pay for a capacity they don't use.
            events: std::collections::VecDeque::with_capacity(capacity.min(256)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest one when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring into a `Vec`, oldest first.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_iter().collect()
    }
}

/// Histogram of task durations in log2(µs) buckets: bucket `i` counts
/// durations in `[2^i, 2^(i+1))` µs (bucket 0 additionally holds sub-µs
/// tasks; the last bucket is open-ended).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurationHistogram {
    /// Bucket counts; index = `floor(log2(duration_us))`, clamped.
    pub buckets: Vec<u64>,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations, µs.
    pub total_us: u64,
    /// Largest recorded duration, µs.
    pub max_us: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

impl DurationHistogram {
    /// Records one duration.
    pub fn record(&mut self, duration_us: u64) {
        let bucket = if duration_us == 0 {
            0
        } else {
            (duration_us.ilog2() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_us = self.total_us.saturating_add(duration_us);
        self.max_us = self.max_us.max(duration_us);
    }

    /// Mean recorded duration, µs.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// The structured trace of one run, attached to
/// [`crate::RunReport::trace`] when [`TraceConfig::enabled`] is set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Events in execution order (oldest first; the ring keeps the tail).
    pub events: Vec<TraceEvent>,
    /// Events lost to the ring-buffer capacity.
    pub dropped_events: u64,
    /// Final cumulative counters.
    pub counters: TraceCounters,
    /// Histogram of task durations.
    pub task_durations: DurationHistogram,
}

impl RunTrace {
    /// Number of events of each span kind `(jobs, stages, waves, tasks,
    /// counter snapshots)`.
    #[must_use]
    pub fn event_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for e in &self.events {
            match e {
                TraceEvent::JobSpan { .. } => c.0 += 1,
                TraceEvent::StageSpan { .. } => c.1 += 1,
                TraceEvent::WaveSpan { .. } => c.2 += 1,
                TraceEvent::TaskSpan { .. } => c.3 += 1,
                TraceEvent::CounterSnapshot { .. } => c.4 += 1,
            }
        }
        c
    }

    /// One-line human summary for report printing. Durations go through
    /// [`obs::fmt_duration_s`] like every other human-facing duration.
    #[must_use]
    pub fn summary(&self) -> String {
        let (jobs, stages, waves, tasks, snaps) = self.event_counts();
        format!(
            "trace: {} events ({jobs} jobs, {stages} stages, {waves} waves, {tasks} tasks, \
             {snaps} counter snapshots), {} dropped; cache {}/{} hit/miss, {} evictions, \
             {} spills, {} locality fallbacks; mean task {}",
            self.events.len(),
            self.dropped_events,
            self.counters.cache_hits,
            self.counters.cache_misses,
            self.counters.evictions,
            self.counters.spills,
            self.counters.locality_fallbacks,
            obs::fmt_duration_s(self.task_durations.mean_us() / 1e6),
        )
    }

    /// Exports the trace in Chrome `trace_event` JSON (the array-of-events
    /// object form), loadable in `chrome://tracing` and Perfetto.
    ///
    /// Layout: pid 0 is the driver (job/stage/wave spans on tid 0/1/2);
    /// each machine `m` is pid `m + 1` with one tid per core. All numbers
    /// are integers, so the output is byte-stable across runs.
    #[must_use]
    pub fn to_chrome_json(&self, run_name: &str) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"driver ({})\"}}}}",
            escape_json(run_name)
        );
        // Name the machine processes that actually appear.
        let mut max_machine: Option<u32> = None;
        for e in &self.events {
            if let TraceEvent::TaskSpan { machine, .. } = e {
                max_machine = Some(max_machine.map_or(*machine, |m: u32| m.max(*machine)));
            }
        }
        if let Some(mm) = max_machine {
            for m in 0..=mm {
                let _ = write!(
                    out,
                    ",{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"machine {m}\"}}}}",
                    m + 1
                );
            }
        }
        for e in &self.events {
            out.push(',');
            match *e {
                TraceEvent::JobSpan {
                    job,
                    start_us,
                    end_us,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"name\":\"job {job}\",\"cat\":\"job\",\
                         \"pid\":0,\"tid\":0,\"ts\":{start_us},\"dur\":{}}}",
                        end_us.saturating_sub(start_us)
                    );
                }
                TraceEvent::StageSpan {
                    job,
                    stage,
                    start_us,
                    end_us,
                    tasks,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"name\":\"stage {job}.{stage}\",\"cat\":\"stage\",\
                         \"pid\":0,\"tid\":1,\"ts\":{start_us},\"dur\":{},\
                         \"args\":{{\"tasks\":{tasks}}}}}",
                        end_us.saturating_sub(start_us)
                    );
                }
                TraceEvent::WaveSpan {
                    job,
                    stage,
                    wave,
                    start_us,
                    end_us,
                    tasks,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"name\":\"wave {job}.{stage}.{wave}\",\"cat\":\"wave\",\
                         \"pid\":0,\"tid\":2,\"ts\":{start_us},\"dur\":{},\
                         \"args\":{{\"tasks\":{tasks}}}}}",
                        end_us.saturating_sub(start_us)
                    );
                }
                TraceEvent::TaskSpan {
                    job,
                    stage,
                    task,
                    machine,
                    core,
                    start_us,
                    end_us,
                    spilled,
                    locality_fallback,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"name\":\"task {job}.{stage}.{task}\",\"cat\":\"task\",\
                         \"pid\":{},\"tid\":{core},\"ts\":{start_us},\"dur\":{},\
                         \"args\":{{\"spilled\":{spilled},\"locality_fallback\":{locality_fallback}}}}}",
                        machine + 1,
                        end_us.saturating_sub(start_us)
                    );
                }
                TraceEvent::CounterSnapshot { at_us, counters } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"C\",\"name\":\"cache\",\"pid\":0,\"tid\":0,\"ts\":{at_us},\
                         \"args\":{{\"hits\":{},\"misses\":{}}}}}",
                        counters.cache_hits, counters.cache_misses
                    );
                    let _ = write!(
                        out,
                        ",{{\"ph\":\"C\",\"name\":\"memory\",\"pid\":0,\"tid\":0,\"ts\":{at_us},\
                         \"args\":{{\"evictions\":{},\"insert_failures\":{},\"unpersisted\":{}}}}}",
                        counters.evictions, counters.insert_failures, counters.unpersisted
                    );
                    let _ = write!(
                        out,
                        ",{{\"ph\":\"C\",\"name\":\"tasks\",\"pid\":0,\"tid\":0,\"ts\":{at_us},\
                         \"args\":{{\"spills\":{},\"locality_fallbacks\":{}}}}}",
                        counters.spills, counters.locality_fallbacks
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Exports the trace in collapsed-stack format (`job;stage;machine
    /// weight` lines, weights in simulated microseconds of task time) —
    /// loadable by inferno and speedscope. Routed through
    /// [`obs::prof::fold_stacks`], the same folder the phase profiler's
    /// flamegraph export uses, so both artifact families are produced by
    /// one exporter. Timestamps come from the deterministic simulator
    /// clock, so the output is byte-stable for a fixed seed.
    #[must_use]
    pub fn to_collapsed(&self) -> String {
        obs::prof::fold_stacks(self.events.iter().filter_map(|e| match *e {
            TraceEvent::TaskSpan {
                job,
                stage,
                machine,
                start_us,
                end_us,
                ..
            } => Some((
                vec![
                    format!("job {job}"),
                    format!("stage {job}.{stage}"),
                    format!("machine {machine}"),
                ],
                end_us.saturating_sub(start_us),
            )),
            _ => None,
        }))
    }

    /// Exports the trace as JSONL: one serde-serialized event per line,
    /// preceded by no header — grep/jq-friendly.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            // The vendored serde stub never fails on these shapes.
            if let Ok(line) = serde_json::to_string(e) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec!['?'],
            c => vec![c],
        })
        .collect()
}

/// Per-run recorder owned by the engine. All recording methods are no-ops
/// when the config has tracing disabled — a single branch, no allocation.
#[derive(Debug)]
pub struct TraceRecorder {
    buf: Option<TraceBuffer>,
    hist: DurationHistogram,
}

impl TraceRecorder {
    /// A recorder honouring `config`.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        TraceRecorder {
            buf: config.enabled.then(|| TraceBuffer::new(config.capacity)),
            hist: DurationHistogram::default(),
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records a job span.
    #[inline]
    pub fn job_span(&mut self, job: u32, start_s: f64, end_s: f64) {
        if let Some(buf) = &mut self.buf {
            buf.push(TraceEvent::JobSpan {
                job,
                start_us: to_micros(start_s),
                end_us: to_micros(end_s),
            });
        }
    }

    /// Records a stage span.
    #[inline]
    pub fn stage_span(&mut self, job: u32, stage: u32, start_s: f64, end_s: f64, tasks: u32) {
        if let Some(buf) = &mut self.buf {
            buf.push(TraceEvent::StageSpan {
                job,
                stage,
                start_us: to_micros(start_s),
                end_us: to_micros(end_s),
                tasks,
            });
        }
    }

    /// Records a wave span.
    #[inline]
    pub fn wave_span(
        &mut self,
        job: u32,
        stage: u32,
        wave: u32,
        start_s: f64,
        end_s: f64,
        tasks: u32,
    ) {
        if let Some(buf) = &mut self.buf {
            buf.push(TraceEvent::WaveSpan {
                job,
                stage,
                wave,
                start_us: to_micros(start_s),
                end_us: to_micros(end_s),
                tasks,
            });
        }
    }

    /// Records a task span and its duration histogram sample.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn task_span(
        &mut self,
        job: u32,
        stage: u32,
        task: u32,
        machine: u32,
        core: u32,
        start_s: f64,
        end_s: f64,
        spilled: bool,
        locality_fallback: bool,
    ) {
        if let Some(buf) = &mut self.buf {
            let start_us = to_micros(start_s);
            let end_us = to_micros(end_s);
            self.hist.record(end_us.saturating_sub(start_us));
            buf.push(TraceEvent::TaskSpan {
                job,
                stage,
                task,
                machine,
                core,
                start_us,
                end_us,
                spilled,
                locality_fallback,
            });
        }
    }

    /// Records a cumulative-counter snapshot.
    #[inline]
    pub fn counter_snapshot(&mut self, at_s: f64, counters: TraceCounters) {
        if let Some(buf) = &mut self.buf {
            buf.push(TraceEvent::CounterSnapshot {
                at_us: to_micros(at_s),
                counters,
            });
        }
    }

    /// Finalizes the trace; `None` when recording was disabled.
    #[must_use]
    pub fn finish(self, final_counters: TraceCounters) -> Option<RunTrace> {
        let buf = self.buf?;
        let dropped = buf.dropped();
        Some(RunTrace {
            events: buf.into_events(),
            dropped_events: dropped,
            counters: final_counters,
            task_durations: self.hist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(job: u32, task: u32, start_us: u64, end_us: u64) -> TraceEvent {
        TraceEvent::TaskSpan {
            job,
            stage: 0,
            task,
            machine: 0,
            core: 0,
            start_us,
            end_us,
            spilled: false,
            locality_fallback: false,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..5 {
            buf.push(task(0, i, u64::from(i), u64::from(i) + 1));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let events = buf.into_events();
        // Oldest two (tasks 0, 1) were dropped; the tail survives.
        match events[0] {
            TraceEvent::TaskSpan { task, .. } => assert_eq!(task, 2),
            ref e => panic!("unexpected {e:?}"),
        }
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn disabled_recorder_produces_nothing() {
        let mut r = TraceRecorder::new(TraceConfig::default());
        assert!(!r.enabled());
        r.job_span(0, 0.0, 1.0);
        r.task_span(0, 0, 0, 0, 0, 0.0, 1.0, false, false);
        r.counter_snapshot(1.0, TraceCounters::default());
        assert!(r.finish(TraceCounters::default()).is_none());
    }

    #[test]
    fn micros_quantization_is_monotone_and_clamped() {
        assert_eq!(to_micros(-1.0), 0);
        assert_eq!(to_micros(0.0), 0);
        assert_eq!(to_micros(1.0), 1_000_000);
        assert_eq!(to_micros(0.0000015), 2); // rounds
        assert!(to_micros(2.0) > to_micros(1.999_999));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = DurationHistogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1024); // bucket 10
        h.record(u64::MAX); // clamped to last bucket
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[31], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.max_us, u64::MAX);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let mut r = TraceRecorder::new(TraceConfig::enabled());
        r.task_span(0, 0, 0, 1, 2, 0.0, 0.5, true, false);
        r.wave_span(0, 0, 0, 0.0, 0.5, 1);
        r.stage_span(0, 0, 0.0, 0.5, 1);
        r.counter_snapshot(
            0.5,
            TraceCounters {
                cache_hits: 3,
                ..Default::default()
            },
        );
        r.job_span(0, 0.0, 0.6);
        let trace = r
            .finish(TraceCounters {
                cache_hits: 3,
                ..Default::default()
            })
            .unwrap();
        let json = trace.to_chrome_json("unit \"test\"");
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .expect("traceEvents key")
            .expect_array("traceEvents")
            .expect("traceEvents array");
        // 1 driver metadata + 2 machine metadata (pids 1, 2) + 5 recorded
        // events, of which the counter snapshot expands to 3 "C" events.
        assert_eq!(events.len(), 3 + 4 + 3);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\\\"test\\\""), "run name escaped");
    }

    #[test]
    fn jsonl_round_trips_events() {
        let mut r = TraceRecorder::new(TraceConfig::enabled());
        r.task_span(1, 2, 3, 0, 1, 0.1, 0.2, false, true);
        r.counter_snapshot(0.2, TraceCounters::default());
        let trace = r.finish(TraceCounters::default()).unwrap();
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, original) in lines.iter().zip(&trace.events) {
            let back: TraceEvent = serde_json::from_str(line).expect("parses back");
            assert_eq!(&back, original);
        }
    }

    #[test]
    fn collapsed_export_folds_task_spans() {
        let mut r = TraceRecorder::new(TraceConfig::enabled());
        // Two tasks of the same stage on machine 0 fold into one line.
        r.task_span(0, 0, 0, 0, 0, 0.0, 0.001, false, false);
        r.task_span(0, 0, 1, 0, 1, 0.0, 0.002, false, false);
        r.task_span(1, 0, 0, 1, 0, 0.0, 0.004, false, false);
        r.job_span(0, 0.0, 0.002); // non-task events are ignored
        let trace = r.finish(TraceCounters::default()).unwrap();
        let collapsed = trace.to_collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(
            lines,
            vec![
                "job 0;stage 0.0;machine 0 3000",
                "job 1;stage 1.0;machine 1 4000",
            ]
        );
    }

    #[test]
    fn summary_mentions_counts() {
        let mut r = TraceRecorder::new(TraceConfig::enabled());
        r.task_span(0, 0, 0, 0, 0, 0.0, 1.0, false, false);
        let trace = r
            .finish(TraceCounters {
                spills: 7,
                ..Default::default()
            })
            .unwrap();
        let s = trace.summary();
        assert!(s.contains("1 tasks"), "{s}");
        assert!(s.contains("7 spills"), "{s}");
    }
}
