//! Computing one task: the pipeline walk.
//!
//! A task materializes partition `p` of its stage's output dataset by
//! recursively materializing parents *within the stage*:
//!
//! * persisted + resident ⇒ cache read (fast; the 97×-cheaper path of the
//!   paper's Figure 2 discussion);
//! * source ⇒ stable-storage read at disk bandwidth;
//! * wide ⇒ shuffle read (network fetch from every machine + reduce
//!   compute);
//! * narrow ⇒ recurse into parents, then apply the operator's compute cost.
//!
//! After computing a persisted dataset's partition the walker tries to
//! cache it, honouring the `u(X) … p(Y)` partition swap of schedules.
//! Like Spark, the walk does not memoize within a task: a dataset reachable
//! via two in-stage paths is computed twice.

use std::collections::HashMap;

use dagflow::{Application, Bytes, ComputeCost, Dataset, DatasetId, OpKind};

use crate::config::{ClusterConfig, SimParams};
use crate::memory::BlockStore;
use crate::report::{PipelineStep, StepKind};

/// Deterministic per-partition size skew: a factor in `[1−s, 1+s]` drawn
/// from a hash of `(dataset, partition)`, so it is stable across runs and
/// cluster configurations. The paper observes partitions up to 2× larger
/// than others (§7.5); `s = 0.33` reproduces that ratio.
#[must_use]
pub fn skew_factor(dataset: DatasetId, partition: u32, skew: f64) -> f64 {
    if skew == 0.0 {
        // 1.0 + 0.0 * (2u − 1) is exactly 1.0 for every finite u, so the
        // fast path is bit-identical to the full computation.
        return 1.0;
    }
    // SplitMix64 over the pair for well-mixed bits.
    let mut z =
        (u64::from(dataset.0) << 32 | u64::from(partition)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = z as f64 / u64::MAX as f64; // [0, 1]
    1.0 + skew * (2.0 * u - 1.0)
}

/// Sizing helper: per-partition bytes and records with skew applied.
///
/// The per-dataset average sizes (`bytes / partitions`) are precomputed at
/// construction — they are partition-independent, and the divisions were a
/// measurable slice of the task walk's per-call cost. The skew factor is
/// applied exactly as before (`average * skew_factor`), so results are
/// bit-identical to the on-the-fly computation.
#[derive(Debug, Clone)]
pub struct Sizing {
    /// Skew amplitude `s`.
    pub skew: f64,
    /// `base_bytes[d]` — average partition bytes of dataset `d`.
    base_bytes: Vec<f64>,
    /// `base_records[d]` — average partition records of dataset `d`.
    base_records: Vec<f64>,
}

impl Sizing {
    /// Precomputes per-dataset average partition sizes for an application.
    #[must_use]
    pub fn new(app: &Application, skew: f64) -> Self {
        Sizing {
            skew,
            base_bytes: app
                .datasets()
                .iter()
                .map(Dataset::partition_bytes)
                .collect(),
            base_records: app
                .datasets()
                .iter()
                .map(Dataset::partition_records)
                .collect(),
        }
    }

    /// Bytes of one partition of a dataset.
    #[inline]
    #[must_use]
    pub fn partition_bytes(&self, d: DatasetId, p: u32) -> f64 {
        self.base_bytes[d.index()] * skew_factor(d, p, self.skew)
    }

    /// Records of one partition of a dataset.
    #[inline]
    #[must_use]
    pub fn partition_records(&self, d: DatasetId, p: u32) -> f64 {
        self.base_records[d.index()] * skew_factor(d, p, self.skew)
    }
}

/// Everything a task walk needs to know about its environment.
pub struct TaskEnv<'a> {
    /// The application plan.
    pub app: &'a Application,
    /// Cluster hardware.
    pub cluster: &'a ClusterConfig,
    /// Simulation parameters.
    pub params: &'a SimParams,
    /// Datasets with an active persist directive.
    pub persisted: &'a [bool],
    /// `swap[y] = x` when the schedule says `u(x)` right before `p(y)`.
    pub swap: &'a HashMap<DatasetId, DatasetId>,
    /// Sizing (skew) helper.
    pub sizing: Sizing,
    /// Whether to record pipeline steps.
    pub trace: bool,
}

/// Outcome of walking one task's pipeline.
#[derive(Debug, Default)]
pub struct TaskWalk {
    /// Total compute duration (seconds, before noise and spill penalty).
    pub duration: f64,
    /// Steps with offsets relative to task start (absolute times are filled
    /// in by the executor).
    pub steps: Vec<PipelineStep>,
}

impl TaskWalk {
    fn push_step(
        &mut self,
        trace: bool,
        dataset: DatasetId,
        kind: StepKind,
        dur: f64,
        out_bytes: f64,
    ) {
        let start = self.duration;
        self.duration += dur;
        if trace {
            self.steps.push(PipelineStep {
                dataset,
                kind,
                start,
                finish: self.duration,
                out_bytes: out_bytes.max(0.0) as Bytes,
            });
        }
    }
}

/// Partition-independent terms of one shuffle-write step, precomputed once
/// per stage instead of once per task. Every field holds exactly the value
/// the per-task computation produced (same expressions, same inputs), so
/// task durations are bit-identical; only the per-task divisions go away.
#[derive(Debug, Clone, Copy)]
pub struct ConsumerCost {
    /// The consuming wide dataset.
    wide: DatasetId,
    /// Bytes this map task writes (`shuffled bytes / map tasks`).
    written: f64,
    /// Seconds spent writing (`written / disk_bandwidth`).
    write_s: f64,
    /// For combining wide transformations: records per map task and the
    /// consumer's compute cost (the map-side combine scan). `None` when
    /// the shuffle does not combine map-side.
    combine: Option<(f64, ComputeCost)>,
}

impl ConsumerCost {
    /// Precomputes the shuffle-write terms for one `(producing stage
    /// output, consuming wide)` pair.
    #[must_use]
    pub fn build(env: &TaskEnv<'_>, output: DatasetId, wide: DatasetId) -> Self {
        let w = env.app.dataset(wide);
        let map_tasks = f64::from(env.app.dataset(output).partitions.max(1));
        let written = shuffled_bytes(env.app, wide) / map_tasks;
        let combine = wide_combines(w.op).then(|| (w.records as f64 / map_tasks, w.compute));
        ConsumerCost {
            wide,
            written,
            write_s: written / env.cluster.spec.disk_bandwidth,
            combine,
        }
    }
}

/// Walks the pipeline for partition `p` of `output` on `machine`, mutating
/// the block store (cache hits, inserts, swaps).
///
/// `shuffle_consumers` carries the precomputed shuffle-write costs of the
/// wide datasets (of the current job) that read this stage's output; a
/// `ShuffleWrite` step is appended for each.
pub fn walk_task(
    env: &TaskEnv<'_>,
    store: &mut BlockStore,
    machine: usize,
    output: DatasetId,
    p: u32,
    shuffle_consumers: &[ConsumerCost],
) -> TaskWalk {
    let mut walk = TaskWalk::default();
    materialize(env, store, machine, output, p, &mut walk);
    for c in shuffle_consumers {
        // Map-side combine work (the scan producing partial aggregates) is
        // part of the Shuffle Write half of a combining wide transformation.
        let combine = match c.combine {
            Some((records, compute)) => {
                let input = env.sizing.partition_bytes(output, p);
                compute.task_seconds(records, input) / env.cluster.spec.cpu_speed
            }
            None => 0.0,
        };
        let dur = combine + c.write_s;
        walk.push_step(env.trace, c.wide, StepKind::ShuffleWrite, dur, c.written);
    }
    walk
}

/// Total bytes crossing the network for a wide dataset's shuffle: combining
/// shuffles move only partial aggregates (≈ the output size per map task);
/// non-combining shuffles move the full parent data.
fn shuffled_bytes(app: &Application, wide: DatasetId) -> f64 {
    let w = app.dataset(wide);
    if wide_combines(w.op) {
        // One partial aggregate per map task.
        let map_tasks: u32 = w
            .parents
            .iter()
            .map(|&p| app.dataset(p).partitions)
            .max()
            .unwrap_or(1);
        w.bytes as f64 * f64::from(map_tasks.max(1)) / f64::from(w.partitions.max(1))
    } else {
        w.parents.iter().map(|&p| app.dataset(p).bytes as f64).sum()
    }
}

fn wide_combines(op: OpKind) -> bool {
    matches!(op, OpKind::Wide(k) if k.combines_map_side())
}

/// Reduce-side cost of materializing one partition of a wide dataset:
/// network fetch of this reducer's share plus merge/compute work.
fn shuffle_read_seconds(env: &TaskEnv<'_>, wide: DatasetId, p: u32) -> f64 {
    let spec = &env.cluster.spec;
    let w = env.app.dataset(wide);
    let fetched = shuffled_bytes(env.app, wide) / f64::from(w.partitions.max(1));
    let fetch = fetched / spec.network_bandwidth
        + f64::from(env.cluster.machines) * env.params.shuffle_connection_s;
    let compute = if wide_combines(w.op) {
        // The scan work was charged map-side; merging partials is cheap.
        (w.compute.fixed_s + w.compute.per_input_byte_s * fetched) / spec.cpu_speed
    } else {
        let records = env.sizing.partition_records(wide, p);
        w.compute.task_seconds(records, fetched) / spec.cpu_speed
    };
    fetch + compute
}

/// Recursively makes partition `p` of `d` available inside the task.
fn materialize(
    env: &TaskEnv<'_>,
    store: &mut BlockStore,
    machine: usize,
    d: DatasetId,
    p: u32,
    walk: &mut TaskWalk,
) {
    let spec = &env.cluster.spec;
    let bytes = env.sizing.partition_bytes(d, p);
    let is_persisted = env.persisted[d.index()];

    if is_persisted {
        // One fused lookup: counts the hit/miss and returns the holder.
        if let Some(holder) = store.read(d, p) {
            // Local read from storage memory, or a remote fetch if locality
            // scheduling could not place us on the holder.
            let bw = if holder == machine {
                spec.cache_read_bandwidth
            } else {
                spec.network_bandwidth
            };
            walk.push_step(env.trace, d, StepKind::CacheRead, bytes / bw, bytes);
            return;
        }
        // Persisted but not resident: the miss is recorded; recompute below.
    }

    let ds = env.app.dataset(d);
    match ds.op {
        OpKind::Source(_) => {
            walk.push_step(
                env.trace,
                d,
                StepKind::SourceRead,
                bytes / spec.disk_bandwidth,
                bytes,
            );
        }
        OpKind::Wide(_) => {
            let dur = shuffle_read_seconds(env, d, p);
            walk.push_step(env.trace, d, StepKind::ShuffleRead, dur, bytes);
        }
        OpKind::Narrow(_) => {
            let mut input_bytes = 0.0;
            for &par in &ds.parents {
                input_bytes += env.sizing.partition_bytes(par, p);
                materialize(env, store, machine, par, p, walk);
            }
            let records = env.sizing.partition_records(d, p);
            let compute = ds.compute.task_seconds(records, input_bytes) / spec.cpu_speed;
            walk.push_step(env.trace, d, StepKind::Compute, compute, bytes);
        }
    }

    if is_persisted && store.try_insert(machine, d, p, bytes.max(1.0) as Bytes) {
        apply_swap(env, store, d, p);
    }
}

/// Applies the `u(X) … p(Y)` partition-by-partition swap: as Y's blocks
/// materialize, X's are dropped so the pair never occupies more than
/// `max(|X|, |Y|)` plus one partition.
fn apply_swap(env: &TaskEnv<'_>, store: &mut BlockStore, y: DatasetId, p: u32) {
    let Some(&x) = env.swap.get(&y) else { return };
    let py = env.app.dataset(y).partitions;
    let px = env.app.dataset(x).partitions;
    let y_resident = store.resident_count(y);
    // Keep at most this many X blocks while Y is y_resident/py done.
    let keep = ((f64::from(px) * (1.0 - f64::from(y_resident) / f64::from(py.max(1))))
        .ceil()
        .max(0.0)) as u32;
    // Prefer dropping the co-indexed partition, then sweep others.
    if store.resident_count(x) > keep && p < px {
        store.drop_partition(x, p);
    }
    let mut q = 0;
    while store.resident_count(x) > keep && q < px {
        store.drop_partition(x, q);
        q += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{AppBuilder, ComputeCost, NarrowKind, SourceFormat, WideKind};

    use crate::config::MachineSpec;
    use crate::memory::BlockLayout;

    fn store_for(app: &Application, cluster: &ClusterConfig) -> BlockStore {
        BlockStore::new(cluster, std::sync::Arc::new(BlockLayout::from_app(app)))
    }

    fn env_fixture() -> (Application, ClusterConfig, SimParams) {
        let mut b = AppBuilder::new("taskfix");
        let src = b.source("in", SourceFormat::DistributedFs, 8_000, 800_000_000, 8);
        let parsed = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[src],
            8_000,
            640_000_000,
            ComputeCost::new(0.05, 1e-5, 2e-9),
        );
        let agg = b.wide_with_partitions(
            "agg",
            WideKind::TreeAggregate,
            &[parsed],
            8,
            1024,
            1,
            ComputeCost::new(0.02, 0.0, 1e-9),
        );
        b.job("collect", agg);
        let app = b.build().unwrap();
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let params = SimParams::default();
        (app, cluster, params)
    }

    use dagflow::Application;

    fn make_env<'a>(
        app: &'a Application,
        cluster: &'a ClusterConfig,
        params: &'a SimParams,
        persisted: &'a [bool],
        swap: &'a HashMap<DatasetId, DatasetId>,
    ) -> TaskEnv<'a> {
        TaskEnv {
            app,
            cluster,
            params,
            persisted,
            swap,
            sizing: Sizing::new(app, 0.0),
            trace: true,
        }
    }

    fn costs(env: &TaskEnv<'_>, output: DatasetId, wides: &[DatasetId]) -> Vec<ConsumerCost> {
        wides
            .iter()
            .map(|&w| ConsumerCost::build(env, output, w))
            .collect()
    }

    #[test]
    fn skew_factor_is_deterministic_and_bounded() {
        let d = DatasetId(5);
        let a = skew_factor(d, 3, 0.33);
        let b = skew_factor(d, 3, 0.33);
        assert_eq!(a, b);
        for p in 0..1000 {
            let f = skew_factor(d, p, 0.33);
            assert!((0.67..=1.33).contains(&f), "{f}");
        }
        // Mean close to 1 so totals are preserved.
        let mean: f64 = (0..10_000).map(|p| skew_factor(d, p, 0.33)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.01, "{mean}");
    }

    #[test]
    fn source_then_narrow_pipeline_costs_add_up() {
        let (app, cluster, params) = env_fixture();
        let persisted = vec![false; app.dataset_count()];
        let swap = HashMap::new();
        let env = make_env(&app, &cluster, &params, &persisted, &swap);
        let mut store = store_for(&app, &cluster);
        let cc = costs(&env, DatasetId(1), &[DatasetId(2)]);
        let walk = walk_task(&env, &mut store, 0, DatasetId(1), 0, &cc);
        // Steps: SourceRead(in), Compute(parsed), ShuffleWrite(agg).
        assert_eq!(walk.steps.len(), 3);
        assert_eq!(walk.steps[0].kind, StepKind::SourceRead);
        assert_eq!(walk.steps[1].kind, StepKind::Compute);
        assert_eq!(walk.steps[2].kind, StepKind::ShuffleWrite);
        assert_eq!(walk.steps[2].dataset, DatasetId(2));
        // Durations: 100 MB read at 80 MB/s, parse compute, then the
        // combining shuffle write: map-side combine over the 80 MB parsed
        // partition plus a tiny partial-aggregate write (8 × 1024 B total
        // over 8 map tasks).
        let read = 100_000_000.0 / 80.0e6;
        let compute = 0.05 + 1e-5 * 1000.0 + 2e-9 * 100_000_000.0;
        let combine = 0.02 + 1e-9 * 80_000_000.0; // agg cost over parsed partition
        let write = 1024.0 / 80.0e6;
        assert!(
            (walk.duration - (read + compute + combine + write)).abs() < 1e-9,
            "duration {}",
            walk.duration
        );
        // Steps are contiguous.
        assert_eq!(walk.steps[0].start, 0.0);
        for w in walk.steps.windows(2) {
            assert!((w[0].finish - w[1].start).abs() < 1e-12);
        }
    }

    #[test]
    fn persisted_dataset_gets_cached_then_read() {
        let (app, cluster, params) = env_fixture();
        let mut persisted = vec![false; app.dataset_count()];
        persisted[1] = true; // persist "parsed"
        let swap = HashMap::new();
        let env = make_env(&app, &cluster, &params, &persisted, &swap);
        let mut store = store_for(&app, &cluster);
        let first = walk_task(&env, &mut store, 0, DatasetId(1), 0, &[]);
        assert_eq!(store.resident_count(DatasetId(1)), 1);
        let second = walk_task(&env, &mut store, 0, DatasetId(1), 0, &[]);
        assert_eq!(second.steps.len(), 1);
        assert_eq!(second.steps[0].kind, StepKind::CacheRead);
        assert!(
            second.duration < first.duration / 10.0,
            "cache read {} vs recompute {}",
            second.duration,
            first.duration
        );
        let stats = store.dataset_stats(DatasetId(1)).unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1, "the first walk missed before computing");
    }

    #[test]
    fn remote_cache_read_is_slower_than_local() {
        let (app, cluster, params) = env_fixture();
        let mut persisted = vec![false; app.dataset_count()];
        persisted[1] = true;
        let swap = HashMap::new();
        let env = make_env(&app, &cluster, &params, &persisted, &swap);
        let mut store = store_for(&app, &cluster);
        walk_task(&env, &mut store, 0, DatasetId(1), 0, &[]);
        let local = walk_task(&env, &mut store, 0, DatasetId(1), 0, &[]);
        let remote = walk_task(&env, &mut store, 1, DatasetId(1), 0, &[]);
        assert!(remote.duration > local.duration * 2.0);
    }

    #[test]
    fn wide_dataset_costs_shuffle_read() {
        let (app, cluster, params) = env_fixture();
        let persisted = vec![false; app.dataset_count()];
        let swap = HashMap::new();
        let env = make_env(&app, &cluster, &params, &persisted, &swap);
        let mut store = store_for(&app, &cluster);
        let walk = walk_task(&env, &mut store, 0, DatasetId(2), 0, &[]);
        assert_eq!(walk.steps.len(), 1);
        assert_eq!(walk.steps[0].kind, StepKind::ShuffleRead);
        // treeAggregate combines map-side: the reducer fetches 8 partial
        // aggregates of 1024 B and merges them.
        let fetched = 1024.0 * 8.0;
        let fetch = fetched / 125.0e6 + 2.0 * params.shuffle_connection_s;
        let merge = 0.02 + 1e-9 * fetched;
        assert!(
            (walk.duration - (fetch + merge)).abs() < 1e-9,
            "duration {}",
            walk.duration
        );
    }

    #[test]
    fn swap_drops_old_blocks_as_new_ones_arrive() {
        let mut b = AppBuilder::new("swapfix");
        let src = b.source("in", SourceFormat::DistributedFs, 100, 1_000_000, 4);
        let x = b.narrow(
            "x",
            NarrowKind::Map,
            &[src],
            100,
            1_000_000,
            ComputeCost::FREE,
        );
        let y = b.narrow(
            "y",
            NarrowKind::Map,
            &[x],
            100,
            1_000_000,
            ComputeCost::FREE,
        );
        b.job("count", y);
        let app = b.build().unwrap();
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let params = SimParams::default();
        let mut persisted = vec![false; app.dataset_count()];
        persisted[x.index()] = true;
        persisted[y.index()] = true;
        let mut swap = HashMap::new();
        swap.insert(y, x);
        let env = make_env(&app, &cluster, &params, &persisted, &swap);
        let mut store = store_for(&app, &cluster);
        // Materialize and cache all of X first.
        for p in 0..4 {
            walk_task(&env, &mut store, 0, x, p, &[]);
        }
        assert_eq!(store.resident_count(x), 4);
        // Now compute Y partition by partition: X shrinks in lock-step.
        for p in 0..4 {
            walk_task(&env, &mut store, 0, y, p, &[]);
            let expect_x = 4 - (p + 1);
            assert!(
                store.resident_count(x) <= expect_x + 1,
                "after {} Y blocks, X has {}",
                p + 1,
                store.resident_count(x)
            );
        }
        assert_eq!(store.resident_count(y), 4);
        assert_eq!(store.resident_count(x), 0, "fully swapped out");
        let sx = store.dataset_stats(x).unwrap();
        assert_eq!(sx.evictions, 0, "swap is unpersist, not eviction");
        assert_eq!(sx.unpersisted, 4);
    }

    #[test]
    fn untraced_walk_collects_no_steps() {
        let (app, cluster, params) = env_fixture();
        let persisted = vec![false; app.dataset_count()];
        let swap = HashMap::new();
        let mut env = make_env(&app, &cluster, &params, &persisted, &swap);
        env.trace = false;
        let mut store = store_for(&app, &cluster);
        let walk = walk_task(&env, &mut store, 0, DatasetId(1), 0, &[]);
        assert!(walk.steps.is_empty());
        assert!(walk.duration > 0.0);
    }
}
