//! Multi-tenant concurrent simulation: N applications share one cluster
//! under FAIR-style slot sharing and a unified cache pool.
//!
//! The paper's engine assumes each application owns the cluster; Yang et
//! al. (intermediate-data caching for parallel frameworks) show that
//! co-running jobs contending for unified memory change which datasets
//! are worth caching. This module models exactly that regime while
//! changing *nothing* about the single-app hot path:
//!
//! - **FAIR slot sharing.** Each tenant runs its jobs against a private
//!   [`ExecutorState`] whose core grid is resized at job boundaries to
//!   `max(1, ⌊cores × w_t / Σ w⌋)` over the tenants present (arrived,
//!   unfinished, weight > 0). The per-task execution-memory grant divides
//!   by the share, so a squeezed tenant runs fewer, hungrier tasks — the
//!   FAIR scheduler's "fewer slots" expressed through the existing
//!   [`crate::executor::run_stage`] math, untouched.
//! - **Shared cache pool.** One [`BlockStore`] spans every tenant's
//!   datasets via a concatenated [`crate::memory::BlockLayout`]; tenant-
//!   local dataset ids are shifted into the combined space inside the
//!   store, so engine and task code run unmodified. One tenant's inserts
//!   evict another's LRU blocks, and the store attributes each
//!   cross-tenant eviction to both sides.
//! - **Interleaving.** Tenants advance job-at-a-time in global-clock
//!   order (min cursor, ties to the lower index) — strictly sequential,
//!   so every result is bit-identical across `JUGGLER_THREADS` settings.
//!   All *reported* times stay on each tenant's own clock (seconds since
//!   its arrival), which keeps a lone active tenant byte-identical to a
//!   plain [`Engine::run`] of the same configuration.
//!
//! Per-tenant fault plans ([`crate::fault::FaultPlan`] in each tenant's
//! [`SimParams`]) fire on the tenant's own timeline, so every tenancy
//! scenario composes with chaos coverage for free.

use std::collections::HashMap;
use std::sync::Arc;

use dagflow::{Application, DagError, DatasetId, JobId, Schedule, ScheduleOp};

use crate::config::{ClusterConfig, SimParams};
use crate::engine::{needed_stages, record_run_metrics, RunOptions};
use crate::engine::{Engine, EnginePrep};
use crate::executor::{run_stage, ExecutorState};
use crate::fault::ChaosState;
use crate::memory::{BlockLayout, BlockStore};
use crate::report::{CacheStats, ContentionSummary, RunReport, StageTiming};
use crate::rng::TaskNoise;
use crate::task::{Sizing, TaskEnv};
use crate::trace::{TraceCounters, TraceRecorder};

/// One application in a [`TenantSet`]: what to run, when it arrives, and
/// its FAIR scheduling weight.
#[derive(Debug, Clone)]
pub struct Tenant<'a> {
    /// The tenant's application.
    pub app: &'a Application,
    /// Persistence schedule the engine enforces for this tenant.
    pub schedule: Arc<Schedule>,
    /// Simulation parameters (seed, noise, faults, …) of this tenant's
    /// run. The shared pool's eviction policy comes from tenant 0.
    pub params: SimParams,
    /// Seconds after cluster start this tenant arrives. Reported times
    /// stay on the tenant's own clock; the offset orders tenants on the
    /// global clock.
    pub arrival_offset_s: f64,
    /// FAIR scheduling weight. A weight `≤ 0` marks the tenant
    /// *inactive*: admitted to the set but scheduled no slots — it runs
    /// nothing and must be invisible in the other tenants' results.
    pub weight: f64,
}

impl<'a> Tenant<'a> {
    /// A weight-1, offset-0 tenant — the common case.
    #[must_use]
    pub fn new(app: &'a Application, schedule: Arc<Schedule>, params: SimParams) -> Self {
        Tenant {
            app,
            schedule,
            params,
            arrival_offset_s: 0.0,
            weight: 1.0,
        }
    }

    fn active(&self) -> bool {
        self.weight > 0.0
    }
}

/// A set of applications sharing one cluster.
#[derive(Debug, Clone)]
pub struct TenantSet<'a> {
    /// The shared cluster every tenant runs on.
    pub cluster: ClusterConfig,
    /// The tenants, in admission order (index = tenant id).
    pub tenants: Vec<Tenant<'a>>,
}

/// Result of a [`TenantSet::run`]: one [`RunReport`] per tenant (same
/// order as the set) plus the global makespan.
#[derive(Debug, Clone)]
pub struct TenancyReport {
    /// Per-tenant reports. Times inside each report are seconds since
    /// that tenant's arrival; inactive tenants get an empty placeholder.
    pub reports: Vec<RunReport>,
    /// Global wall clock when the last tenant finished: the maximum of
    /// `arrival_offset_s + total_time_s` over active tenants.
    pub makespan_s: f64,
}

impl TenancyReport {
    /// Every cross-tenant eviction suffered by someone was inflicted by
    /// someone else: `Σ suffered == Σ inflicted`. A violation means the
    /// store's attribution lost an event.
    #[must_use]
    pub fn cross_evictions_balance(&self) -> bool {
        let suffered: u64 = self
            .reports
            .iter()
            .map(|r| r.contention.cross_evictions_suffered)
            .sum();
        let inflicted: u64 = self
            .reports
            .iter()
            .map(|r| r.contention.cross_evictions_inflicted)
            .sum();
        suffered == inflicted
    }
}

/// Per-tenant mutable run state, mirroring what [`Engine::run`] keeps on
/// its stack for a single application.
struct TenantRun {
    prep: Arc<EnginePrep>,
    persisted: Vec<bool>,
    swap: HashMap<DatasetId, DatasetId>,
    /// Persisted datasets and their job-use lists, for the eviction
    /// hints (local ids; the store shifts them).
    uses: Vec<(DatasetId, Vec<usize>)>,
    sizing: Sizing,
    state: ExecutorState,
    chaos: ChaosState,
    /// Tenant-local clock: seconds since this tenant's arrival.
    now: f64,
    next_job: usize,
    cur_cores: u32,
    job_times: Vec<f64>,
    per_job_cache: Vec<Vec<(DatasetId, u64, u64)>>,
    stage_times: Vec<StageTiming>,
    traces: Vec<crate::report::TaskTrace>,
    recorder: TraceRecorder,
    report: Option<RunReport>,
}

impl<'a> TenantSet<'a> {
    /// Runs every tenant to completion on the shared cluster.
    ///
    /// A single-*active*-tenant set delegates to the plain [`Engine`] —
    /// it *is* the single-app path (a lone weightless tenant instead
    /// yields its placeholder). Larger sets run the interleaved scheduler;
    /// when only one tenant is active (the rest weight `≤ 0`), the
    /// active tenant's report — including its digest — is byte-identical
    /// to the plain engine's.
    ///
    /// # Errors
    /// Fails when the set is empty or any tenant's schedule references
    /// datasets outside its application.
    pub fn run(&self, options: RunOptions) -> Result<TenancyReport, DagError> {
        let Some(first) = self.tenants.first() else {
            return Err(DagError::NoJobs);
        };
        for t in &self.tenants {
            t.app.check_schedule(&t.schedule)?;
        }
        if self.tenants.len() == 1 && first.active() {
            let engine = Engine::new(first.app, self.cluster, first.params.clone());
            let report = engine.run_shared(&first.schedule, options)?;
            let makespan_s = first.arrival_offset_s + report.total_time_s;
            return Ok(TenancyReport {
                reports: vec![report],
                makespan_s,
            });
        }
        self.run_interleaved(options)
    }

    fn run_interleaved(&self, options: RunOptions) -> Result<TenancyReport, DagError> {
        let _prof = obs::prof::scope("sim");
        let n = self.tenants.len();
        let machines = self.cluster.machines.max(1);
        let full_cores = self.cluster.spec.cores;

        // Concatenated block layout: tenant t owns global dataset ids
        // `base[t]..base[t + 1]`. The pool's eviction policy is tenant
        // 0's — one shared store has one policy.
        let mut parts: Vec<u32> = Vec::new();
        let mut base: Vec<u32> = Vec::with_capacity(n + 1);
        base.push(0);
        for t in &self.tenants {
            parts.extend(t.app.datasets().iter().map(|d| d.partitions));
            base.push(base.last().unwrap() + t.app.dataset_count() as u32);
        }
        let layout = Arc::new(BlockLayout::from_partitions(parts));
        let mut store = BlockStore::with_policy(
            &self.cluster,
            layout,
            self.tenants[0].params.eviction_policy,
        );
        store.enable_tenancy(base);

        let mut runs: Vec<TenantRun> = Vec::with_capacity(n);
        for t in &self.tenants {
            let mut persisted = vec![false; t.app.dataset_count()];
            let mut swap: HashMap<DatasetId, DatasetId> = HashMap::new();
            let mut pending_unpersist: Option<DatasetId> = None;
            for op in t.schedule.ops() {
                match *op {
                    ScheduleOp::Persist(d) => {
                        persisted[d.index()] = true;
                        if let Some(x) = pending_unpersist.take() {
                            swap.insert(d, x);
                        }
                    }
                    ScheduleOp::Unpersist(d) => pending_unpersist = Some(d),
                }
            }
            let prep = Arc::new(EnginePrep::new(t.app));
            let uses: Vec<(DatasetId, Vec<usize>)> = (0..t.app.dataset_count() as u32)
                .map(DatasetId)
                .filter(|d| persisted[d.index()])
                .map(|d| (d, prep.job_uses[d.index()].clone()))
                .collect();
            let mut noise = TaskNoise::new(t.params.seed, t.params.noise);
            let startup_jitter = noise.uniform() * t.params.cluster_jitter_s;
            let state = ExecutorState::new(machines, full_cores, noise);
            let chaos = ChaosState::new(&t.params.faults, t.params.retry, machines as usize);
            runs.push(TenantRun {
                prep,
                persisted,
                swap,
                uses,
                sizing: Sizing::new(t.app, options.partition_skew),
                state,
                chaos,
                now: t.params.app_startup_s + startup_jitter,
                next_job: 0,
                cur_cores: full_cores,
                job_times: Vec::with_capacity(t.app.jobs().len()),
                per_job_cache: Vec::with_capacity(t.app.jobs().len()),
                stage_times: Vec::new(),
                traces: Vec::new(),
                recorder: TraceRecorder::new(options.trace),
                report: None,
            });
        }

        let active = |t: &Tenant<'a>| t.active();
        let active_count = self.tenants.iter().filter(|t| active(t)).count();
        // Inactive tenants finish immediately with a placeholder report.
        for (ti, t) in self.tenants.iter().enumerate() {
            if !active(t) {
                runs[ti].report = Some(placeholder_report(t, ti, n, machines));
            }
        }

        // Scratch shared across tenants (the loop is strictly serial).
        let mut before: Vec<(u64, u64)> = Vec::new();
        let mut consumers: Vec<DatasetId> = Vec::new();
        let mut needed: Vec<bool> = Vec::new();
        let mut stage_stack: Vec<usize> = Vec::new();
        let mut makespan_s: f64 = 0.0;

        loop {
            // Next tenant on the global clock: unfinished, active, min
            // `arrival + local now`; ties go to the lower index.
            let mut chosen: Option<(usize, f64)> = None;
            for (ti, t) in self.tenants.iter().enumerate() {
                if runs[ti].report.is_some() || !active(t) {
                    continue;
                }
                let cursor = t.arrival_offset_s + runs[ti].now;
                if chosen.is_none_or(|(_, c)| cursor < c) {
                    chosen = Some((ti, cursor));
                }
            }
            let Some((ti, global_now)) = chosen else {
                break;
            };
            let tenant = &self.tenants[ti];

            // FAIR share at this instant: tenants that have arrived by
            // the chosen cursor, are active, and are unfinished.
            let present: f64 = self
                .tenants
                .iter()
                .enumerate()
                .filter(|&(i, t)| {
                    active(t) && runs[i].report.is_none() && t.arrival_offset_s <= global_now
                })
                .map(|(_, t)| t.weight)
                .sum();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let share = ((f64::from(full_cores) * tenant.weight / present).floor() as u32).max(1);
            let tr = &mut runs[ti];
            if share != tr.cur_cores {
                tr.state.resize_cores(machines, share);
                tr.cur_cores = share;
            }
            let tcluster = ClusterConfig::new(
                machines,
                crate::config::MachineSpec {
                    cores: share,
                    ..self.cluster.spec
                },
            );

            store.set_active_tenant(ti);
            store.set_sim_now(global_now);

            // ---- One job, mirroring `Engine::run` body exactly. ----
            let ji = tr.next_job;
            let job = JobId(ji as u32);
            let job_start = tr.now;
            {
                let _prof = obs::prof::scope("faults");
                tr.chaos.fire_due(tr.now, &mut store, &mut tr.state);
            }
            for (d, uses) in &tr.uses {
                let remaining = uses.iter().filter(|&&u| u >= ji).count() as u64;
                let next = uses
                    .iter()
                    .find(|&&u| u >= ji)
                    .map_or(u32::MAX, |&u| (u - ji) as u32);
                store.set_hint(
                    *d,
                    crate::eviction::DatasetHints {
                        remaining_refs: remaining,
                        next_use_distance: next,
                    },
                );
            }
            before.clear();
            before.extend(tr.uses.iter().map(|(d, _)| {
                store
                    .dataset_stats(*d)
                    .map_or((0, 0), |s| (s.hits, s.misses))
            }));

            let prep = Arc::clone(&tr.prep);
            let plan = &prep.plans[ji];
            needed_stages(
                tenant.app,
                plan,
                &tr.persisted,
                &store,
                &mut needed,
                &mut stage_stack,
            );
            let env = TaskEnv {
                app: tenant.app,
                cluster: &tcluster,
                params: &tenant.params,
                persisted: &tr.persisted,
                swap: &tr.swap,
                sizing: tr.sizing.clone(),
                trace: options.collect_traces,
            };
            for (sp, stage) in plan.stages.iter().enumerate() {
                if !needed[stage.id.index()] {
                    continue;
                }
                consumers.clear();
                consumers.extend(
                    prep.consumers[ji][sp]
                        .iter()
                        .filter(|&&(cs, _)| needed[cs as usize])
                        .map(|&(_, w)| w),
                );
                let stage_start = tr.now;
                store.set_sim_now(tenant.arrival_offset_s + stage_start);
                let stage_prof = obs::prof::scope("stages");
                tr.now = run_stage(
                    &env,
                    &mut store,
                    &mut tr.state,
                    &mut tr.chaos,
                    job,
                    stage,
                    &consumers,
                    tr.now,
                    &mut tr.traces,
                    &mut tr.recorder,
                );
                drop(stage_prof);
                tr.stage_times.push(StageTiming {
                    job,
                    stage: stage.id,
                    start: stage_start,
                    finish: tr.now,
                    tasks: stage.num_tasks,
                });
                if tr.recorder.enabled() {
                    tr.recorder
                        .stage_span(job.0, stage.id.0, stage_start, tr.now, stage.num_tasks);
                    tr.recorder.counter_snapshot(
                        tr.now,
                        tenant_counters(&store, ti, &tr.state, &tr.chaos),
                    );
                }
            }
            tr.now += tenant.params.driver_per_job_s
                + tenant.params.driver_per_machine_s * f64::from(machines)
                + tr.state.noise.uniform() * tenant.params.cluster_jitter_s * 0.02;
            tr.job_times.push(tr.now - job_start);
            tr.recorder.job_span(job.0, job_start, tr.now);
            let deltas: Vec<(DatasetId, u64, u64)> = tr
                .uses
                .iter()
                .zip(&before)
                .filter_map(|((d, _), &(h0, m0))| {
                    store
                        .dataset_stats(*d)
                        .map(|s| (*d, s.hits - h0, s.misses - m0))
                })
                .collect();
            tr.per_job_cache.push(deltas);
            tr.next_job += 1;

            // ---- Tenant finished: finalize its report *now*, so later
            // tenants' activity cannot leak into its statistics. ----
            if tr.next_job == tenant.app.jobs().len() {
                store.set_sim_now(tenant.arrival_offset_s + tr.now);
                let report = finalize_tenant(tenant, ti, active_count, machines, tr, &store);
                makespan_s = makespan_s.max(tenant.arrival_offset_s + report.total_time_s);
                runs[ti].report = Some(report);
                // The tenant's executors exit with it: its cached blocks
                // leave the shared pool. A drop, not an eviction — the
                // report snapshot above already captured its statistics,
                // and departed tenants can no longer *suffer* evictions,
                // which keeps `Σ suffered == Σ inflicted` exact.
                for d in 0..tenant.app.dataset_count() as u32 {
                    store.drop_dataset(DatasetId(d));
                }
            }
        }

        record_tenancy_metrics(&runs);
        Ok(TenancyReport {
            reports: runs
                .into_iter()
                .map(|r| r.report.expect("all ran"))
                .collect(),
            makespan_s,
        })
    }
}

/// Assembles a finished tenant's [`RunReport`] from the shared store and
/// the tenant's private state — the tail of [`Engine::run`], with
/// per-tenant statistics cloned out of the pool instead of drained.
fn finalize_tenant(
    tenant: &Tenant<'_>,
    ti: usize,
    active_count: usize,
    machines: u32,
    tr: &mut TenantRun,
    store: &BlockStore,
) -> RunReport {
    let final_counters = tenant_counters(store, ti, &tr.state, &tr.chaos);
    for (value, name) in [
        (final_counters.cache_hits, "cache_hits"),
        (final_counters.cache_misses, "cache_misses"),
        (final_counters.evictions, "evictions"),
        (final_counters.spills, "spills"),
        (final_counters.task_retries, "retries"),
        (final_counters.speculative_tasks, "speculative"),
    ] {
        if value > 0 {
            obs::prof::count(name, value);
        }
    }
    let machines_usize = machines as usize;
    let chaos = std::mem::replace(
        &mut tr.chaos,
        ChaosState::new(
            &crate::fault::FaultPlan::default(),
            tenant.params.retry,
            machines_usize,
        ),
    );
    let faults = chaos.finish(tr.now);
    record_run_metrics(&final_counters, tr.state.total_tasks, &faults);
    let recorder = std::mem::replace(
        &mut tr.recorder,
        TraceRecorder::new(crate::trace::TraceConfig::default()),
    );
    let trace = recorder.finish(final_counters);
    let per_dataset = store.tenant_stats(ti);
    let cache = CacheStats {
        peak_storage_bytes: store.peak_storage(),
        peak_exec_bytes: store.peak_exec(),
        per_dataset,
    };
    // A lone active tenant saw no contention-capable co-tenant: its
    // summary stays quiet, so its digest matches the plain engine's.
    let contention = if active_count >= 2 {
        let (suffered, inflicted, half_life) = store.tenant_contention(ti);
        ContentionSummary {
            tenant: ti as u32,
            tenants: active_count as u32,
            weight: tenant.weight,
            arrival_offset_s: tenant.arrival_offset_s,
            slot_wait_s: tr.state.slot_wait_s,
            cross_evictions_suffered: suffered,
            cross_evictions_inflicted: inflicted,
            residency_half_life_s: half_life,
        }
    } else {
        ContentionSummary::default()
    };
    RunReport {
        app: tenant.app.name().to_owned(),
        schedule: Arc::clone(&tenant.schedule),
        machines,
        total_time_s: tr.now,
        job_times_s: std::mem::take(&mut tr.job_times),
        cache,
        per_job_cache: std::mem::take(&mut tr.per_job_cache),
        stage_times: std::mem::take(&mut tr.stage_times),
        traces: std::mem::take(&mut tr.traces),
        trace,
        spilled_tasks: tr.state.spilled_tasks,
        total_tasks: tr.state.total_tasks,
        task_attempts: tr.state.task_attempts,
        faults,
        contention,
    }
}

/// Run-wide counters scoped to one tenant's datasets — the per-tenant
/// analogue of the engine's `gather_counters`, which sums the whole
/// (here: shared) store.
fn tenant_counters(
    store: &BlockStore,
    tenant: usize,
    state: &ExecutorState,
    chaos: &ChaosState,
) -> TraceCounters {
    let (task_retries, speculative_tasks, blacklisted_machines) = chaos.counter_snapshot();
    let mut c = TraceCounters {
        spills: state.spilled_tasks,
        locality_fallbacks: state.locality_fallbacks,
        task_retries,
        speculative_tasks,
        blacklisted_machines,
        ..TraceCounters::default()
    };
    for s in store.tenant_stats(tenant).values() {
        c.cache_hits += s.hits;
        c.cache_misses += s.misses;
        c.evictions += s.evictions;
        c.insert_failures += s.insert_failures;
        c.unpersisted += s.unpersisted;
    }
    c
}

/// The empty report of an inactive (weight `≤ 0`) tenant: admitted,
/// scheduled nothing, ran nothing. Its contention summary self-describes
/// the admission (index, set size, zero weight) without ever touching
/// the pool.
fn placeholder_report(tenant: &Tenant<'_>, ti: usize, tenants: usize, machines: u32) -> RunReport {
    RunReport {
        app: tenant.app.name().to_owned(),
        schedule: Arc::clone(&tenant.schedule),
        machines,
        total_time_s: 0.0,
        job_times_s: Vec::new(),
        cache: CacheStats::default(),
        per_job_cache: Vec::new(),
        stage_times: Vec::new(),
        traces: Vec::new(),
        trace: None,
        spilled_tasks: 0,
        total_tasks: 0,
        task_attempts: 0,
        faults: crate::fault::FaultSummary::default(),
        contention: ContentionSummary {
            tenant: ti as u32,
            tenants: tenants as u32,
            weight: 0.0,
            arrival_offset_s: tenant.arrival_offset_s,
            ..ContentionSummary::default()
        },
    }
}

/// Zero-gated tenancy counters for the global metrics registry.
fn record_tenancy_metrics(runs: &[TenantRun]) {
    let reg = obs::global();
    if !reg.enabled() {
        return;
    }
    reg.counter(
        "sim_tenancy_runs_total",
        "multi-tenant simulations completed",
    )
    .inc();
    let cross: u64 = runs
        .iter()
        .filter_map(|r| r.report.as_ref())
        .map(|r| r.contention.cross_evictions_inflicted)
        .sum();
    if cross > 0 {
        reg.counter(
            "sim_cross_tenant_evictions_total",
            "cached blocks evicted by another tenant's memory pressure",
        )
        .add(cross);
    }
    let waits: f64 = runs
        .iter()
        .filter_map(|r| r.report.as_ref())
        .map(|r| r.contention.slot_wait_s)
        .sum();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let wait_ms = (waits * 1e3) as u64;
    if wait_ms > 0 {
        reg.counter(
            "sim_slot_wait_ms_total",
            "milliseconds task attempts queued for FAIR slots",
        )
        .add(wait_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{AppBuilder, ComputeCost, NarrowKind, SourceFormat, WideKind};

    use crate::config::{MachineSpec, NoiseParams};

    /// Iterative app (input → cached parse → k aggregate jobs), the same
    /// shape the engine's own tests use.
    fn iterative_app(name: &str, iterations: usize) -> Application {
        let mut b = AppBuilder::new(name);
        let src = b.source("in", SourceFormat::DistributedFs, 8_000, 1_120_000_000, 8);
        let parsed = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[src],
            8_000,
            800_000_000,
            ComputeCost::new(0.05, 1e-5, 4e-9),
        );
        for i in 0..iterations {
            let g = b.wide_with_partitions(
                format!("grad[{i}]"),
                WideKind::TreeAggregate,
                &[parsed],
                8,
                1024,
                1,
                ComputeCost::new(0.01, 0.0, 1e-9),
            );
            b.job("aggregate", g);
        }
        b.build().unwrap()
    }

    fn quiet_params(seed: u64) -> SimParams {
        SimParams {
            noise: NoiseParams::NONE,
            cluster_jitter_s: 0.0,
            seed,
            ..SimParams::default()
        }
    }

    fn persist_parsed() -> Arc<Schedule> {
        Arc::new(Schedule::persist_all([DatasetId(1)]))
    }

    #[test]
    fn single_tenant_set_is_the_plain_engine() {
        let app = iterative_app("solo", 5);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app, cluster, quiet_params(7));
        let plain = engine
            .run_shared(&persist_parsed(), RunOptions::default())
            .unwrap();
        let set = TenantSet {
            cluster,
            tenants: vec![Tenant::new(&app, persist_parsed(), quiet_params(7))],
        };
        let tr = set.run(RunOptions::default()).unwrap();
        assert_eq!(tr.reports.len(), 1);
        assert_eq!(tr.reports[0].digest(), plain.digest());
        assert_eq!(tr.reports[0], plain);
        assert!((tr.makespan_s - plain.total_time_s).abs() < 1e-12);
    }

    #[test]
    fn inactive_second_tenant_is_invisible() {
        let app_a = iterative_app("a", 6);
        let app_b = iterative_app("b", 3);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let engine = Engine::new(&app_a, cluster, quiet_params(11));
        let plain = engine
            .run_shared(&persist_parsed(), RunOptions::default())
            .unwrap();
        let set = TenantSet {
            cluster,
            tenants: vec![
                Tenant::new(&app_a, persist_parsed(), quiet_params(11)),
                Tenant {
                    weight: 0.0,
                    ..Tenant::new(&app_b, persist_parsed(), quiet_params(12))
                },
            ],
        };
        let tr = set.run(RunOptions::default()).unwrap();
        // The real interleaved runner (not the fast path) must reproduce
        // the plain engine byte-for-byte for the lone active tenant.
        assert_eq!(tr.reports[0].digest(), plain.digest());
        assert_eq!(tr.reports[0].total_time_s, plain.total_time_s);
        assert_eq!(tr.reports[0].cache, plain.cache);
        // The inactive tenant ran nothing and self-describes.
        assert_eq!(tr.reports[1].total_tasks, 0);
        assert_eq!(tr.reports[1].contention.weight, 0.0);
        assert_eq!(tr.reports[1].contention.tenant, 1);
    }

    #[test]
    fn two_active_tenants_terminate_and_account() {
        let app_a = iterative_app("a", 5);
        let app_b = iterative_app("b", 4);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let set = TenantSet {
            cluster,
            tenants: vec![
                Tenant::new(&app_a, persist_parsed(), quiet_params(21)),
                Tenant {
                    arrival_offset_s: 3.0,
                    weight: 2.0,
                    ..Tenant::new(&app_b, persist_parsed(), quiet_params(22))
                },
            ],
        };
        let tr = set.run(RunOptions::default()).unwrap();
        assert!(tr.cross_evictions_balance());
        for (ti, r) in tr.reports.iter().enumerate() {
            assert_eq!(r.job_times_s.len(), [5, 4][ti]);
            assert!(r.total_time_s > 0.0);
            assert_eq!(r.task_attempts, r.total_tasks, "fault-free");
            assert_eq!(r.contention.tenant, ti as u32);
            assert_eq!(r.contention.tenants, 2);
            assert!(!r.contention.is_quiet(), "multi-tenant runs are marked");
        }
        assert!(tr.makespan_s >= tr.reports[0].total_time_s);
        assert!(tr.makespan_s >= 3.0 + tr.reports[1].total_time_s);
        // Determinism: the same set reruns to identical digests.
        let again = set.run(RunOptions::default()).unwrap();
        for (a, b) in tr.reports.iter().zip(&again.reports) {
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn memory_pressure_produces_cross_evictions() {
        // One tiny machine: the two tenants' cached datasets cannot both
        // fit, so the later arrival evicts the earlier one's blocks.
        let app_a = iterative_app("a", 6);
        let app_b = iterative_app("b", 6);
        let spec = MachineSpec {
            ram_bytes: 1_600_000_000,
            ..MachineSpec::paper_example()
        };
        let cluster = ClusterConfig::new(1, spec);
        let set = TenantSet {
            cluster,
            tenants: vec![
                Tenant::new(&app_a, persist_parsed(), quiet_params(31)),
                Tenant {
                    arrival_offset_s: 7.0,
                    ..Tenant::new(&app_b, persist_parsed(), quiet_params(32))
                },
            ],
        };
        let tr = set.run(RunOptions::default()).unwrap();
        assert!(tr.cross_evictions_balance());
        // The late arrival's inserts must push out the incumbent's blocks,
        // which by then have been resident for a while.
        let incumbent = &tr.reports[0].contention;
        assert!(
            incumbent.cross_evictions_suffered > 0,
            "pool must cross-evict"
        );
        assert!(incumbent.residency_half_life_s > 0.0);
    }

    #[test]
    fn empty_set_is_rejected() {
        let set = TenantSet {
            cluster: ClusterConfig::new(1, MachineSpec::paper_example()),
            tenants: vec![],
        };
        assert!(set.run(RunOptions::default()).is_err());
    }
}
