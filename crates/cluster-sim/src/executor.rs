//! Wave-based stage execution with cache locality, execution-memory claims
//! and seeded noise.
//!
//! Tasks are dispatched in index order; each waits for (a) a free core and
//! (b) the driver's serial launch loop (`task_launch_s` per task). A task
//! prefers the machine holding its cached partition (Spark's locality
//! scheduling) unless that machine is busy far beyond the cluster-wide
//! earliest slot (`LOCALITY_WAIT_S`, mirroring `spark.locality.wait`).
//! Stage duration is the makespan over all tasks — the `N_waves` structure
//! of the paper's §3.3 emerges from `⌈tasks / cores⌉` waves of roughly
//! equal task durations.

use dagflow::{DatasetId, JobId, Stage};

use crate::fault::ChaosState;
use crate::memory::BlockStore;
use crate::report::TaskTrace;
use crate::rng::TaskNoise;
use crate::task::{walk_task, ConsumerCost, TaskEnv};
use crate::trace::TraceRecorder;

/// How long a task will wait for its preferred (cache-local) machine before
/// falling back to any machine, seconds. Mirrors `spark.locality.wait = 3s`.
const LOCALITY_WAIT_S: f64 = 3.0;

/// A finite `f64` with a total order, for the running-median heaps.
#[derive(PartialEq)]
struct FiniteF64(f64);

impl Eq for FiniteF64 {}

impl PartialOrd for FiniteF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite durations")
    }
}

/// Running lower median of completed task durations in a stage, via the
/// classic two-heap scheme: `lo` (max-heap) holds the smaller half
/// including the median, `hi` (min-heap) the larger half. O(log n) per
/// insert and O(1) per query — a sorted `Vec` costs an O(n) memmove per
/// insert, which at paper scale (thousands of tasks per run) blows the
/// chaos machinery's fault-free overhead budget.
#[derive(Default)]
struct RunningMedian {
    lo: std::collections::BinaryHeap<FiniteF64>,
    hi: std::collections::BinaryHeap<std::cmp::Reverse<FiniteF64>>,
}

impl RunningMedian {
    fn insert(&mut self, x: f64) {
        if self.lo.peek().is_none_or(|m| x <= m.0) {
            self.lo.push(FiniteF64(x));
        } else {
            self.hi.push(std::cmp::Reverse(FiniteF64(x)));
        }
        // Rebalance so lo holds ⌈n/2⌉ elements (its max is the lower
        // median, matching `sorted[(n - 1) / 2]`).
        if self.lo.len() > self.hi.len() + 1 {
            let FiniteF64(x) = self.lo.pop().expect("lo non-empty");
            self.hi.push(std::cmp::Reverse(FiniteF64(x)));
        } else if self.hi.len() > self.lo.len() {
            let std::cmp::Reverse(FiniteF64(x)) = self.hi.pop().expect("hi non-empty");
            self.lo.push(FiniteF64(x));
        }
    }

    fn get(&self) -> f64 {
        self.lo.peek().expect("median of at least one task").0
    }

    /// Empties both heaps, keeping their capacity so the structure can be
    /// reused across stages without reallocating.
    fn clear(&mut self) {
        self.lo.clear();
        self.hi.clear();
    }
}

/// Total task slots of a cluster. Both factors are widened to `usize`
/// *before* multiplying: the old `(machines * cores) as usize` computed the
/// product in `u32`, which overflows (panic in debug, silent wraparound in
/// release) on large machine-sweep configurations like 2^16 × 2^16.
#[must_use]
pub fn total_slots(machines: u32, cores: u32) -> usize {
    machines as usize * cores as usize
}

/// Mutable per-run scheduling state shared across stages.
pub struct ExecutorState {
    /// Next free time of each core, indexed `machine * cores + core`.
    /// Private so every write goes through [`ExecutorState::set_core_free`],
    /// which keeps `machine_best` coherent.
    core_free: Vec<f64>,
    /// Cached earliest core per machine: `(slot, free_at)` of the *first*
    /// minimum among the machine's cores — the same element a left-to-right
    /// `min_by` scan over `core_free` would pick, so slot choice (and with
    /// it every digest) is unchanged. Turns the per-attempt
    /// `machines × cores` scan into a `machines` scan plus an O(cores)
    /// refresh per core write.
    machine_best: Vec<(usize, f64)>,
    /// Cores per machine (the `machine_best` refresh stride).
    cores: usize,
    /// Outstanding execution-memory claims per machine: `(release_at,
    /// bytes)`, kept sorted ascending by release time (insert via
    /// [`ExecutorState::add_claim`]) so expiry pops an already-sorted
    /// prefix instead of scanning — and mispredicting on — a mixed list.
    pub exec_claims: Vec<std::collections::VecDeque<(f64, u64)>>,
    /// Noise source.
    pub noise: TaskNoise,
    /// Tasks that had to spill.
    pub spilled_tasks: u64,
    /// Total tasks executed.
    pub total_tasks: u64,
    /// Total task attempts, including retried failures and speculative
    /// copies (equals `total_tasks` in fault-free runs).
    pub task_attempts: u64,
    /// Tasks that preferred their cache-local machine but ran elsewhere
    /// because the locality wait was exceeded.
    pub locality_fallbacks: u64,
    /// Cumulative seconds task attempts spent waiting for a free core
    /// beyond driver dispatch, stage start, and retry backoff — the
    /// slot-contention signal the multi-tenant runner folds into
    /// [`crate::report::ContentionSummary`]. Observation only: nothing in
    /// the simulation reads it back.
    pub slot_wait_s: f64,
    /// Scratch running-median of completed task durations for speculation
    /// detection, cleared at every stage start. Lives here (not in
    /// `run_stage`) so heap capacity is reused across the hundreds of
    /// stages of an iterative run instead of reallocated per stage.
    spec_durations: RunningMedian,
    /// Scratch wave bookkeeping for the structured trace, cleared at every
    /// stage start (reused for the same reason as `spec_durations`).
    waves: Vec<(f64, f64, u32)>,
    /// Per-stage hoisted shuffle-write costs, taken out of the state for
    /// the duration of a stage (`mem::take`) and put back afterwards so
    /// the allocation is reused across the hundreds of stages of a run.
    consumer_costs: Vec<ConsumerCost>,
    /// Per-stage persisted-dataset preference list, reused like
    /// `consumer_costs`.
    pref_datasets: Vec<DatasetId>,
}

impl ExecutorState {
    /// Fresh state for a cluster.
    #[must_use]
    pub fn new(machines: u32, cores: u32, noise: TaskNoise) -> Self {
        ExecutorState {
            core_free: vec![0.0; total_slots(machines, cores)],
            machine_best: (0..machines as usize)
                .map(|m| (m * cores as usize, 0.0))
                .collect(),
            cores: (cores as usize).max(1),
            exec_claims: (0..machines)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            noise,
            spilled_tasks: 0,
            total_tasks: 0,
            task_attempts: 0,
            locality_fallbacks: 0,
            slot_wait_s: 0.0,
            spec_durations: RunningMedian::default(),
            waves: Vec::new(),
            consumer_costs: Vec::new(),
            pref_datasets: Vec::new(),
        }
    }

    /// Restores the state to exactly what [`ExecutorState::new`] would
    /// build for the given cluster shape and noise source, reusing the
    /// existing allocations (claim deques, median heaps, stage scratch).
    pub fn reset(&mut self, machines: u32, cores: u32, noise: TaskNoise) {
        self.core_free.clear();
        self.core_free.resize(total_slots(machines, cores), 0.0);
        self.machine_best.clear();
        self.machine_best
            .extend((0..machines as usize).map(|m| (m * cores as usize, 0.0)));
        self.cores = (cores as usize).max(1);
        self.exec_claims.iter_mut().for_each(|q| q.clear());
        self.exec_claims
            .resize_with(machines as usize, Default::default);
        self.noise = noise;
        self.spilled_tasks = 0;
        self.total_tasks = 0;
        self.task_attempts = 0;
        self.locality_fallbacks = 0;
        self.slot_wait_s = 0.0;
        self.spec_durations.clear();
        self.waves.clear();
    }

    /// Reshapes the executor to a new core width between jobs — the FAIR
    /// slot-share lever of the multi-tenant runner. Counters, the noise
    /// stream, and stage scratch all survive; only the core grid is
    /// rebuilt, free at time zero. That is exact at a job boundary: every
    /// core's next-free time is at most the last stage finish (which the
    /// caller's time cursor has already passed), and task starts clamp to
    /// the stage start, so a zeroed grid schedules identically to the old
    /// one. Outstanding execution-memory claims must already be expired —
    /// [`run_stage`] releases everything it claimed by stage end.
    pub fn resize_cores(&mut self, machines: u32, cores: u32) {
        debug_assert!(
            self.exec_claims
                .iter()
                .all(std::collections::VecDeque::is_empty),
            "core resize requires a job boundary (no outstanding claims)"
        );
        self.core_free.clear();
        self.core_free.resize(total_slots(machines, cores), 0.0);
        self.machine_best.clear();
        self.machine_best
            .extend((0..machines as usize).map(|m| (m * cores as usize, 0.0)));
        self.cores = (cores as usize).max(1);
        self.exec_claims
            .resize_with(machines as usize, Default::default);
    }

    /// Updates a core's next-free time and refreshes the owning machine's
    /// cached earliest core. The refresh is a left-to-right first-min scan,
    /// replicating the tie-breaking of the scan it replaces.
    #[inline]
    fn set_core_free(&mut self, machine: usize, slot: usize, t: f64) {
        debug_assert_eq!(machine, slot / self.cores);
        self.core_free[slot] = t;
        let m = machine;
        let base = m * self.cores;
        // Manual first-min scan with strict `<`: same element as
        // `min_by(partial_cmp)`, but compiled to conditional moves — noisy
        // runs produce randomly-ordered times, and a branching scan pays a
        // misprediction on most comparisons.
        let mut bs = base;
        let mut bv = self.core_free[base];
        for s in base + 1..base + self.cores {
            let v = self.core_free[s];
            let better = v < bv;
            bs = if better { s } else { bs };
            bv = if better { v } else { bv };
        }
        self.machine_best[m] = (bs, bv);
    }

    /// Records an execution-memory claim on `machine`, keeping the list
    /// sorted by release time. Claims are recorded in task-completion order,
    /// so the new claim almost always belongs at the back.
    pub fn add_claim(&mut self, machine: usize, release_at: f64, bytes: u64) {
        let claims = &mut self.exec_claims[machine];
        let mut i = claims.len();
        while i > 0 && claims[i - 1].0 > release_at {
            i -= 1;
        }
        claims.insert(i, (release_at, bytes));
    }

    /// Releases every claim that expires at or before `now` on `machine`.
    /// Same set of claims as an unordered scan would release (the predicate
    /// is per-claim), and `release_exec` is a plain byte-count subtraction,
    /// so release order does not affect any observable state.
    fn expire_claims(&mut self, store: &mut BlockStore, machine: usize, now: f64) {
        let claims = &mut self.exec_claims[machine];
        while let Some(&(t, bytes)) = claims.front() {
            if t > now {
                break;
            }
            store.release_exec(machine, bytes);
            claims.pop_front();
        }
    }
}

/// Picks the core for a task attempt:
/// `(machine, slot, free_at, locality_fallback)`. The fast path (no
/// blacklist, no machine to avoid) is the pre-chaos locality logic
/// unchanged; the constrained path excludes blacklisted machines and —
/// when an alternative exists — the machine a previous attempt just failed
/// on. If the constraints exclude everything, they are ignored: the run
/// must terminate. Returning the machine index (instead of leaving callers
/// to divide `slot / cores`) keeps integer division out of the per-task
/// path.
fn choose_slot(
    state: &ExecutorState,
    chaos: &ChaosState,
    machines: usize,
    preferred: Option<usize>,
    avoid: Option<usize>,
) -> (usize, usize, f64, bool) {
    // `machine_best[m]` is maintained as exactly the first-min core scan
    // the old code did per call.
    let constrained = avoid.is_some() || chaos.constrained();
    let allowed =
        |m: usize| -> bool { !chaos.is_excluded(m) && (avoid != Some(m) || machines == 1) };
    let global_best = if constrained {
        (0..machines)
            .filter(|&m| allowed(m))
            .map(|m| (m, state.machine_best[m]))
            .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite times"))
    } else {
        None
    }
    .unwrap_or_else(|| {
        // Branchless first-min over the per-machine cached bests (see
        // `set_core_free` for why not `min_by`).
        let mut bm = 0;
        let mut best = state.machine_best[0];
        for m in 1..machines {
            let c = state.machine_best[m];
            let better = c.1 < best.1;
            bm = if better { m } else { bm };
            best = if better { c } else { best };
        }
        (bm, best)
    });
    let (gm, (gslot, gfree)) = global_best;
    match preferred {
        Some(m) if !constrained || allowed(m) => {
            let (lslot, lfree) = state.machine_best[m];
            if lfree <= gfree + LOCALITY_WAIT_S {
                // The local best is one of m's own cores: never a fallback.
                (m, lslot, lfree, false)
            } else {
                (gm, gslot, gfree, m != gm)
            }
        }
        Some(m) => (gm, gslot, gfree, m != gm), // preferred machine excluded
        None => (gm, gslot, gfree, false),
    }
}

/// Runs one stage starting at `stage_start`; returns the stage finish time
/// and appends traces when tracing is on. Structured span events (tasks,
/// waves) go to `recorder` when it is enabled. `chaos` carries the run's
/// fault plan and retry policy; with an empty plan and the default policy
/// the stage executes the exact fault-free arithmetic (zero extra RNG
/// draws), so reports stay byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn run_stage(
    env: &TaskEnv<'_>,
    store: &mut BlockStore,
    state: &mut ExecutorState,
    chaos: &mut ChaosState,
    job: JobId,
    stage: &Stage,
    shuffle_consumers: &[DatasetId],
    stage_start: f64,
    traces: &mut Vec<TaskTrace>,
    recorder: &mut TraceRecorder,
) -> f64 {
    let machines = env.cluster.machines as usize;
    let cores = env.cluster.spec.cores as usize;
    let policy = chaos.policy();
    // Completed-task durations for speculation, kept sorted so detection
    // uses the *median* like Spark's TaskSetManager — a mean would be
    // inflated by the very stragglers speculation hunts, pushing
    // detection so late the copy can never win. Only maintained when
    // speculation is on, keeping the fault-free hot path unchanged.
    let track_speculation = policy.speculation && machines > 1;
    let mut done_tasks: u64 = 0;
    state.spec_durations.clear();
    // Wave bookkeeping for the structured trace: wave `w` holds the tasks
    // dispatched onto the `w`-th round of cluster slots.
    let slots = total_slots(env.cluster.machines, env.cluster.spec.cores).max(1);
    state.waves.clear();
    // Execution memory a task claims: its fair share of the execution
    // pool (Spark's UnifiedMemoryManager grants each of N concurrent
    // tasks up to 1/N of the pool). The workload-specific factor says how
    // much of M the application's execution actually uses.
    let exec_bytes = (env.cluster.spec.unified_memory() as f64
        * env.params.exec_mem_per_task_factor
        / f64::from(env.cluster.spec.cores.max(1))) as u64;

    // Hoist the partition-independent work out of the task loop: the
    // shuffle-write cost terms and the stage's persisted datasets
    // (deepest-first, the locality-preference scan order). The buffers
    // live in `ExecutorState` and are taken for the stage's duration so
    // their allocations survive across stages; they are restored before
    // returning.
    let mut consumer_costs = std::mem::take(&mut state.consumer_costs);
    consumer_costs.clear();
    consumer_costs.extend(
        shuffle_consumers
            .iter()
            .map(|&w| ConsumerCost::build(env, stage.output, w)),
    );
    let mut pref_datasets = std::mem::take(&mut state.pref_datasets);
    pref_datasets.clear();
    pref_datasets.extend(
        stage
            .datasets
            .iter()
            .rev()
            .copied()
            .filter(|&d| env.persisted[d.index()]),
    );

    let mut stage_finish = stage_start;
    for task_idx in 0..stage.num_tasks {
        // Serial driver dispatch: task i cannot launch before the driver
        // has processed i launches.
        let dispatch_ready = stage_start + f64::from(task_idx + 1) * env.params.task_launch_s;

        // Preferred machine: holder of the deepest cached block for this
        // partition (closest to the stage output).
        let preferred = pref_datasets
            .iter()
            .find_map(|&d| store.residency(d, task_idx));

        // Attempt loop: a transient failure kills the attempt halfway
        // through, releases its core and memory at the failure instant,
        // and reschedules after a linear backoff on a different machine
        // when one exists. A failed attempt's cache reads and inserts
        // stand — the retry recomputes through whatever lineage state the
        // first attempt left behind, which is exactly Spark's behaviour.
        let mut attempt: u32 = 0;
        let mut avoid: Option<usize> = None;
        let mut retry_ready = 0.0f64;
        let (slot, machine, start, claimed, mut walk, duration, spilled, fell_back) = loop {
            let (machine, slot, slot_free, locality_fallback) =
                choose_slot(state, chaos, machines, preferred, avoid);
            state.locality_fallbacks += u64::from(locality_fallback);
            // `max` over finite values is associative, so grouping the
            // non-slot terms first leaves `start` bit-identical while
            // exposing the queueing delay (`start − ready`) for the
            // slot-wait accumulator.
            let ready = dispatch_ready.max(stage_start).max(retry_ready);
            let start = slot_free.max(ready);
            state.slot_wait_s += start - ready;

            // Memory: release expired claims, then claim for this task.
            state.expire_claims(store, machine, start);
            let claimed = store.claim_exec(machine, exec_bytes);

            let walk = walk_task(env, store, machine, stage.output, task_idx, &consumer_costs);
            let (noise_factor, is_straggler) = state.noise.sample();
            // GC pauses and slow containers have an absolute magnitude: a
            // straggler never finishes faster than the floor, no matter how
            // tiny its partition is. Selecting the floor (0 for normal
            // tasks; `max(d, 0.0)` is the identity for the non-negative
            // durations here) keeps the rare-straggler branch out of the
            // hot loop.
            let floor = if is_straggler {
                state.noise.straggler_floor_s()
            } else {
                0.0
            };
            let mut duration = (walk.duration * noise_factor).max(floor);
            let spilled = claimed < exec_bytes;
            if spilled {
                duration *= env.params.spill_penalty;
                state.spilled_tasks += 1;
            }
            let slow = chaos.slow_factor(machine, start);
            if slow != 1.0 {
                duration *= slow;
            }
            state.task_attempts += 1;
            if chaos.take_failure(start) {
                if attempt + 1 < policy.max_attempts {
                    let fail_at = start + duration * 0.5;
                    state.set_core_free(machine, slot, fail_at);
                    store.release_exec(machine, claimed);
                    chaos.record_retry(machine, fail_at);
                    attempt += 1;
                    avoid = if machines > 1 { Some(machine) } else { None };
                    retry_ready = fail_at + policy.retry_backoff_s * f64::from(attempt);
                    continue;
                }
                // Retry budget exhausted: real Spark fails the job after
                // max_attempts; the simulator completes the final attempt
                // and records the exhaustion so chaos runs terminate.
                chaos.note_exhausted();
            }
            break (
                slot,
                machine,
                start,
                claimed,
                walk,
                duration,
                spilled,
                locality_fallback,
            );
        };
        let mut finish = start + duration;
        let mut eff_duration = duration;

        // Speculative execution: once enough tasks of the stage finished,
        // a running attempt that exceeds multiplier × mean is copied onto
        // another machine; whichever copy finishes first wins and the
        // loser is killed at that instant.
        let mut winner = (machine, slot, start);
        let mut speculated = false;
        if track_speculation && done_tasks >= u64::from(policy.speculation_min_tasks) {
            let median = state.spec_durations.get();
            if duration > policy.speculation_multiplier * median {
                let detect_at = start + policy.speculation_multiplier * median;
                let copy_best = (0..machines)
                    .filter(|&m| m != machine && !chaos.is_excluded(m))
                    .map(|m| (m, state.machine_best[m]))
                    .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite times"));
                if let Some((cmachine, (cslot, cfree))) = copy_best {
                    let cstart = cfree.max(detect_at);
                    state.expire_claims(store, cmachine, cstart);
                    let cclaimed = store.claim_exec(cmachine, exec_bytes);
                    let cwalk = walk_task(
                        env,
                        store,
                        cmachine,
                        stage.output,
                        task_idx,
                        &consumer_costs,
                    );
                    let (cnoise, cstraggler) = state.noise.sample();
                    let mut cduration = cwalk.duration * cnoise;
                    if cstraggler {
                        cduration = cduration.max(state.noise.straggler_floor_s());
                    }
                    if cclaimed < exec_bytes {
                        cduration *= env.params.spill_penalty;
                        state.spilled_tasks += 1;
                    }
                    let cslow = chaos.slow_factor(cmachine, cstart);
                    if cslow != 1.0 {
                        cduration *= cslow;
                    }
                    state.task_attempts += 1;
                    let cfinish = cstart + cduration;
                    let won = cfinish < finish;
                    chaos.note_speculative(won);
                    let effective = cfinish.min(finish);
                    state.set_core_free(cmachine, cslot, effective.max(cstart));
                    state.add_claim(cmachine, effective.max(cstart), cclaimed);
                    state.set_core_free(machine, slot, effective);
                    state.add_claim(machine, effective, claimed);
                    if won {
                        finish = cfinish;
                        winner = (cmachine, cslot, cstart);
                        walk = cwalk;
                        eff_duration = cduration;
                    }
                    speculated = true;
                }
            }
        }
        if !speculated {
            state.set_core_free(machine, slot, finish);
            state.add_claim(machine, finish, claimed);
        }
        let (run_machine, run_slot, run_start) = winner;
        state.total_tasks += 1;
        done_tasks += 1;
        if track_speculation {
            state.spec_durations.insert(eff_duration);
        }
        stage_finish = stage_finish.max(finish);

        if recorder.enabled() {
            recorder.task_span(
                job.0,
                stage.id.0,
                task_idx,
                run_machine as u32,
                (run_slot % cores) as u32,
                run_start,
                finish,
                spilled,
                fell_back,
            );
            let wave = task_idx as usize / slots;
            if state.waves.len() <= wave {
                state
                    .waves
                    .resize(wave + 1, (f64::INFINITY, f64::NEG_INFINITY, 0));
            }
            let w = &mut state.waves[wave];
            w.0 = w.0.min(start);
            w.1 = w.1.max(finish);
            w.2 += 1;
        }

        if env.trace {
            // Shift step offsets to absolute times, scaled to the noisy
            // duration so steps still tile the (winning) attempt exactly.
            let scale = if walk.duration > 0.0 {
                eff_duration / walk.duration
            } else {
                1.0
            };
            for s in &mut walk.steps {
                s.start = run_start + s.start * scale;
                s.finish = run_start + s.finish * scale;
            }
            traces.push(TaskTrace {
                job,
                stage: stage.id,
                task: task_idx,
                machine: run_machine as u32,
                start: run_start,
                finish,
                steps: walk.steps,
            });
        }
    }
    for (wi, &(start, finish, tasks)) in state.waves.iter().enumerate() {
        recorder.wave_span(job.0, stage.id.0, wi as u32, start, finish, tasks);
    }
    // Release claims that expire at stage end so the next stage starts
    // clean.
    for m in 0..machines {
        state.expire_claims(store, m, stage_finish);
    }
    // Hand the hoisted-scratch allocations back for the next stage.
    state.consumer_costs = consumer_costs;
    state.pref_datasets = pref_datasets;
    stage_finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, SourceFormat, StagePlan};
    use std::collections::HashMap;

    use crate::trace::TraceConfig;

    use crate::config::{ClusterConfig, MachineSpec, NoiseParams, SimParams};
    use crate::fault::{FaultPlan, RetryPolicy};
    use crate::memory::BlockLayout;
    use crate::task::Sizing;

    fn store_for(app: &Application, cluster: &ClusterConfig) -> BlockStore {
        BlockStore::new(cluster, std::sync::Arc::new(BlockLayout::from_app(app)))
    }

    fn inert_chaos(machines: u32) -> ChaosState {
        ChaosState::new(
            &FaultPlan::none(),
            RetryPolicy::default(),
            machines as usize,
        )
    }

    fn fixture(partitions: u32) -> Application {
        let mut b = AppBuilder::new("exec");
        let src = b.source(
            "in",
            SourceFormat::DistributedFs,
            1000,
            80_000_000 * u64::from(partitions),
            partitions,
        );
        let m = b.narrow(
            "m",
            NarrowKind::Map,
            &[src],
            1000,
            80_000_000 * u64::from(partitions),
            ComputeCost::new(0.0, 0.0, 0.0),
        );
        b.job("count", m);
        b.build().unwrap()
    }

    fn no_noise_params() -> SimParams {
        SimParams {
            task_launch_s: 0.0,
            noise: NoiseParams::NONE,
            exec_mem_per_task_factor: 0.0,
            ..SimParams::default()
        }
    }

    #[test]
    fn waves_scale_with_cores() {
        // 16 equal tasks of 1 s (140 MB at 140 MB/s) on 1 machine × 4 cores
        // = 4 waves ⇒ ~4 s; on 2 machines = 2 waves ⇒ ~2 s.
        let app = fixture(16);
        let params = no_noise_params();
        let swap = HashMap::new();
        let persisted = vec![false; app.dataset_count()];
        for (machines, expect) in [(1u32, 4.0f64), (2, 2.0), (4, 1.0)] {
            let cluster = ClusterConfig::new(machines, MachineSpec::paper_example());
            let env = TaskEnv {
                app: &app,
                cluster: &cluster,
                params: &params,
                persisted: &persisted,
                swap: &swap,
                sizing: Sizing::new(&app, 0.0),
                trace: false,
            };
            let mut store = store_for(&app, &cluster);
            let mut state = ExecutorState::new(
                machines,
                cluster.spec.cores,
                TaskNoise::new(0, NoiseParams::NONE),
            );
            let plan = StagePlan::build(&app, dagflow::JobId(0));
            let mut traces = Vec::new();
            let mut recorder = TraceRecorder::new(TraceConfig::default());
            let mut chaos = inert_chaos(machines);
            let finish = run_stage(
                &env,
                &mut store,
                &mut state,
                &mut chaos,
                dagflow::JobId(0),
                plan.result_stage(),
                &[],
                0.0,
                &mut traces,
                &mut recorder,
            );
            assert!(
                (finish - expect).abs() < 0.05,
                "{machines} machines: finish {finish}, expect {expect}"
            );
            assert_eq!(state.total_tasks, 16);
        }
    }

    #[test]
    fn locality_prefers_cached_machine() {
        let app = fixture(2);
        let params = no_noise_params();
        let swap = HashMap::new();
        let mut persisted = vec![false; app.dataset_count()];
        persisted[1] = true;
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let env = TaskEnv {
            app: &app,
            cluster: &cluster,
            params: &params,
            persisted: &persisted,
            swap: &swap,
            sizing: Sizing::new(&app, 0.0),
            trace: true,
        };
        let mut store = store_for(&app, &cluster);
        let mut state = ExecutorState::new(2, 4, TaskNoise::new(0, NoiseParams::NONE));
        let plan = StagePlan::build(&app, dagflow::JobId(0));
        let mut traces = Vec::new();
        let mut recorder = TraceRecorder::new(TraceConfig::default());
        let mut chaos = inert_chaos(cluster.machines);
        run_stage(
            &env,
            &mut store,
            &mut state,
            &mut chaos,
            dagflow::JobId(0),
            plan.result_stage(),
            &[],
            0.0,
            &mut traces,
            &mut recorder,
        );
        // Record where each partition was cached.
        let homes: Vec<Option<usize>> = (0..2)
            .map(|p| store.residency(dagflow::DatasetId(1), p))
            .collect();
        traces.clear();
        // Run again: each task must land on its cached machine.
        let finish = run_stage(
            &env,
            &mut store,
            &mut state,
            &mut chaos,
            dagflow::JobId(0),
            plan.result_stage(),
            &[],
            10.0,
            &mut traces,
            &mut recorder,
        );
        for t in &traces {
            assert_eq!(
                Some(t.machine as usize),
                homes[t.task as usize],
                "locality respected"
            );
        }
        // Cached reads: 140 MB at 2 GB/s = 0.07 s each, both parallel.
        assert!(finish - 10.0 < 0.2, "cached rerun took {}", finish - 10.0);
    }

    #[test]
    fn traces_tile_the_task_exactly_under_noise() {
        let app = fixture(8);
        let mut params = no_noise_params();
        params.noise = NoiseParams {
            sigma: 0.2,
            straggler_prob: 0.2,
            straggler_factor: 3.0,
            straggler_floor_s: 0.0,
        };
        let swap = HashMap::new();
        let persisted = vec![false; app.dataset_count()];
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let env = TaskEnv {
            app: &app,
            cluster: &cluster,
            params: &params,
            persisted: &persisted,
            swap: &swap,
            sizing: Sizing::new(&app, 0.3),
            trace: true,
        };
        let mut store = store_for(&app, &cluster);
        let mut state = ExecutorState::new(2, 4, TaskNoise::new(7, params.noise));
        let plan = StagePlan::build(&app, dagflow::JobId(0));
        let mut traces = Vec::new();
        let mut recorder = TraceRecorder::new(TraceConfig::default());
        let mut chaos = inert_chaos(cluster.machines);
        run_stage(
            &env,
            &mut store,
            &mut state,
            &mut chaos,
            dagflow::JobId(0),
            plan.result_stage(),
            &[],
            0.0,
            &mut traces,
            &mut recorder,
        );
        assert_eq!(traces.len(), 8);
        for t in &traces {
            assert!((t.steps.first().unwrap().start - t.start).abs() < 1e-9);
            assert!((t.steps.last().unwrap().finish - t.finish).abs() < 1e-9);
        }
    }

    #[test]
    fn spill_penalty_applies_when_memory_tight() {
        // Execution demand far beyond the unified region: every task must
        // spill.
        let spec = MachineSpec {
            ram_bytes: 400_000_000, // M = 60 MB
            ..MachineSpec::paper_example()
        };
        let app = fixture(4);
        let mut params = no_noise_params();
        params.exec_mem_per_task_factor = 8.0; // each task wants 2×M
        params.spill_penalty = 2.0;
        let swap = HashMap::new();
        let persisted = vec![false; app.dataset_count()];
        let cluster = ClusterConfig::new(1, spec);
        let env = TaskEnv {
            app: &app,
            cluster: &cluster,
            params: &params,
            persisted: &persisted,
            swap: &swap,
            sizing: Sizing::new(&app, 0.0),
            trace: false,
        };
        let mut store = store_for(&app, &cluster);
        let mut state = ExecutorState::new(1, 4, TaskNoise::new(0, NoiseParams::NONE));
        let plan = StagePlan::build(&app, dagflow::JobId(0));
        let mut traces = Vec::new();
        let mut recorder = TraceRecorder::new(TraceConfig::default());
        let mut chaos = inert_chaos(cluster.machines);
        let finish = run_stage(
            &env,
            &mut store,
            &mut state,
            &mut chaos,
            dagflow::JobId(0),
            plan.result_stage(),
            &[],
            0.0,
            &mut traces,
            &mut recorder,
        );
        assert_eq!(state.spilled_tasks, 4);
        // 4 tasks of 2 s on 4 cores ⇒ one 2 s wave.
        assert!((finish - 2.0).abs() < 0.01, "finish {finish}");
    }

    /// Regression: `2^16 machines × 2^16 cores` overflows a `u32` product
    /// (the old `(machines * cores) as usize`); the widened helper must
    /// return the true slot count.
    #[test]
    fn total_slots_widens_before_multiplying() {
        assert_eq!(total_slots(1 << 16, 1 << 16), 1usize << 32);
        assert_eq!(total_slots(u32::MAX, 1), u32::MAX as usize);
        assert_eq!(
            total_slots(u32::MAX, u32::MAX),
            (u32::MAX as usize) * (u32::MAX as usize)
        );
        assert_eq!(total_slots(0, 8), 0);
    }
}
