//! Text rendering of task traces: a per-machine Gantt view of one run —
//! the quickest way to see waves, stragglers, locality and cache effects
//! without leaving the terminal.
//!
//! ```text
//! m0 |000:1111:22222222:333   |
//! m1 |000:111:2222222:3333    |
//!     ^ tasks labelled by stage, ':' = idle gap
//! ```

use std::fmt::Write as _;

use crate::report::{RunReport, TaskTrace};

/// Renders a Gantt-style timeline of the traced tasks, `width` characters
/// wide, one row per (machine, core-lane). Returns an empty string when
/// the report holds no traces (run with `collect_traces: true`).
#[must_use]
pub fn render_gantt(report: &RunReport, width: usize) -> String {
    if report.traces.is_empty() || width < 10 {
        return String::new();
    }
    let t0 = report
        .traces
        .iter()
        .map(|t| t.start)
        .fold(f64::INFINITY, f64::min);
    let t1 = report
        .traces
        .iter()
        .map(|t| t.finish)
        .fold(0.0f64, f64::max);
    let span = (t1 - t0).max(1e-9);
    let scale = width as f64 / span;

    // Assign tasks to lanes: per machine, greedy first-fit by start time.
    let mut machines: Vec<Vec<Vec<&TaskTrace>>> = Vec::new();
    let mut sorted: Vec<&TaskTrace> = report.traces.iter().collect();
    sorted.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));
    for t in sorted {
        let mi = t.machine as usize;
        if machines.len() <= mi {
            machines.resize_with(mi + 1, Vec::new);
        }
        let lanes = &mut machines[mi];
        let lane = lanes
            .iter_mut()
            .find(|lane| lane.last().is_none_or(|prev| prev.finish <= t.start + 1e-9));
        match lane {
            Some(lane) => lane.push(t),
            None => lanes.push(vec![t]),
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "gantt: {} tasks over {:.1}s (each column ≈ {:.2}s); digits = stage id mod 10",
        report.traces.len(),
        span,
        span / width as f64
    );
    for (mi, lanes) in machines.iter().enumerate() {
        for (li, lane) in lanes.iter().enumerate() {
            let mut row = vec![' '; width];
            for t in lane {
                let a = (((t.start - t0) * scale) as usize).min(width - 1);
                let b = (((t.finish - t0) * scale).ceil() as usize).clamp(a + 1, width);
                let ch = char::from_digit(t.stage.0 % 10, 10).unwrap_or('#');
                for cell in &mut row[a..b] {
                    *cell = ch;
                }
            }
            let label = if li == 0 {
                format!("m{mi:<2}")
            } else {
                "   ".to_owned()
            };
            let _ = writeln!(out, "{label}|{}|", row.iter().collect::<String>());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, MachineSpec, NoiseParams, SimParams};
    use crate::engine::{Engine, RunOptions};
    use dagflow::{AppBuilder, ComputeCost, NarrowKind, Schedule, SourceFormat};

    fn traced_report(machines: u32) -> RunReport {
        let mut b = AppBuilder::new("gantt");
        let s = b.source("in", SourceFormat::DistributedFs, 1000, 800_000_000, 8);
        let m = b.narrow(
            "m",
            NarrowKind::Map,
            &[s],
            1000,
            800_000_000,
            ComputeCost::FREE,
        );
        b.job("count", m);
        b.job("count2", m);
        let app = b.build().unwrap();
        let params = SimParams {
            noise: NoiseParams::NONE,
            cluster_jitter_s: 0.0,
            ..SimParams::default()
        };
        Engine::new(
            &app,
            ClusterConfig::new(machines, MachineSpec::paper_example()),
            params,
        )
        .run(
            &Schedule::empty(),
            RunOptions {
                collect_traces: true,
                ..RunOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn renders_one_row_per_busy_core() {
        let report = traced_report(2);
        let g = render_gantt(&report, 60);
        // 2 machines × 4 cores busy in the first wave.
        let rows = g.lines().filter(|l| l.contains('|')).count();
        assert_eq!(rows, 8, "{g}");
        assert!(g.contains("m0"));
        assert!(g.contains("m1"));
    }

    #[test]
    fn rows_have_requested_width() {
        let report = traced_report(1);
        let g = render_gantt(&report, 40);
        for line in g.lines().filter(|l| l.contains('|')) {
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), 40, "{line}");
        }
    }

    #[test]
    fn empty_traces_render_empty() {
        let mut report = traced_report(1);
        report.traces.clear();
        assert!(render_gantt(&report, 60).is_empty());
        let report2 = traced_report(1);
        assert!(render_gantt(&report2, 5).is_empty(), "width floor");
    }

    #[test]
    fn every_task_paints_at_least_one_cell() {
        let report = traced_report(2);
        let g = render_gantt(&report, 30);
        let painted: usize = g
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.chars().filter(|c| c.is_ascii_digit()).count())
            .sum();
        assert!(painted >= report.traces.len());
    }
}
