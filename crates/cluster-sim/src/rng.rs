//! Deterministic noise generation for task durations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::NoiseParams;

/// Seeded task-noise source. One instance per run; draws are consumed in
/// task-assignment order, so equal seeds and equal schedules give identical
/// runs.
#[derive(Debug)]
pub struct TaskNoise {
    rng: SmallRng,
    params: NoiseParams,
}

impl TaskNoise {
    /// Creates a noise source from a seed and parameters.
    #[must_use]
    pub fn new(seed: u64, params: NoiseParams) -> Self {
        TaskNoise {
            rng: SmallRng::seed_from_u64(seed),
            params,
        }
    }

    /// Multiplier to apply to one task's duration: lognormal `exp(σ·z)`
    /// (z approximated by an Irwin–Hall sum of 12 uniforms) times an
    /// occasional straggler factor. Always ≥ a small positive bound.
    pub fn factor(&mut self) -> f64 {
        self.sample().0
    }

    /// Draws `(multiplier, is_straggler)` for one task. Straggler tasks
    /// additionally have their duration floored at
    /// `NoiseParams::straggler_floor_s` by the executor.
    pub fn sample(&mut self) -> (f64, bool) {
        let mut m = 1.0;
        if self.params.sigma > 0.0 {
            let z: f64 = (0..12).map(|_| self.rng.gen::<f64>()).sum::<f64>() - 6.0;
            m *= (self.params.sigma * z).exp();
        }
        let mut straggler = false;
        if self.params.straggler_prob > 0.0 && self.rng.gen::<f64>() < self.params.straggler_prob {
            m *= self.params.straggler_factor;
            straggler = true;
        }
        (m.max(0.05), straggler)
    }

    /// The configured straggler duration floor, seconds.
    #[must_use]
    pub fn straggler_floor_s(&self) -> f64 {
        self.params.straggler_floor_s
    }

    /// A uniform draw in `[0, 1)` from the same stream (used for the
    /// absolute cluster-dynamics jitter).
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_identity() {
        let mut n = TaskNoise::new(7, NoiseParams::NONE);
        for _ in 0..100 {
            assert_eq!(n.factor(), 1.0);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let p = NoiseParams::default();
        let mut a = TaskNoise::new(42, p);
        let mut b = TaskNoise::new(42, p);
        for _ in 0..1000 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let p = NoiseParams::default();
        let mut a = TaskNoise::new(1, p);
        let mut b = TaskNoise::new(2, p);
        let same = (0..100).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 5);
    }

    #[test]
    fn noise_is_centered_and_bounded() {
        let p = NoiseParams {
            sigma: 0.05,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            straggler_floor_s: 0.0,
        };
        let mut n = TaskNoise::new(3, p);
        let draws: Vec<f64> = (0..10_000).map(|_| n.factor()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!(draws.iter().all(|&d| d > 0.5 && d < 2.0));
    }

    #[test]
    fn stragglers_appear_at_roughly_requested_rate() {
        let p = NoiseParams {
            sigma: 0.0,
            straggler_prob: 0.05,
            straggler_factor: 3.0,
            straggler_floor_s: 0.0,
        };
        let mut n = TaskNoise::new(9, p);
        let stragglers = (0..10_000).filter(|_| n.factor() > 2.0).count();
        assert!((300..700).contains(&stragglers), "{stragglers}");
    }
}
