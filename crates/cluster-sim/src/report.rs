//! Run reports: timings, cache statistics, and task-level traces.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dagflow::{DatasetId, JobId, Schedule, StageId};

/// Per-dataset cache statistics accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetCacheStats {
    /// Cache reads that found the block resident.
    pub hits: u64,
    /// Cache reads that missed (forcing recomputation).
    pub misses: u64,
    /// Attempts to insert a block.
    pub insert_attempts: u64,
    /// Inserts that failed for lack of memory.
    pub insert_failures: u64,
    /// Blocks evicted by LRU pressure (storage or execution).
    pub evictions: u64,
    /// Blocks dropped by unpersist/swap.
    pub unpersisted: u64,
    /// Currently resident partitions.
    pub resident_partitions: u32,
    /// Currently resident bytes.
    pub resident_bytes: u64,
    /// Peak resident bytes over the run.
    pub peak_resident_bytes: u64,
    /// Distinct partition indices that were evicted at least once.
    pub evicted_partition_ids: BTreeSet<u32>,
}

/// Aggregated cache behaviour of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Per persisted dataset.
    pub per_dataset: HashMap<DatasetId, DatasetCacheStats>,
    /// Peak storage bytes across the cluster.
    pub peak_storage_bytes: u64,
    /// Peak execution bytes across the cluster.
    pub peak_exec_bytes: u64,
}

impl CacheStats {
    /// Fraction of a dataset's partitions resident at the end of the run.
    /// `None` if the dataset was never cached.
    #[must_use]
    pub fn resident_fraction(&self, dataset: DatasetId, total_partitions: u32) -> Option<f64> {
        let s = self.per_dataset.get(&dataset)?;
        if s.insert_attempts == 0 {
            return None;
        }
        Some(f64::from(s.resident_partitions) / f64::from(total_partitions.max(1)))
    }

    /// Fraction of a dataset's partitions that were evicted at least once
    /// — the paper's per-configuration "percentage of data partitions
    /// evicted from cache" (Figure 2 discussion).
    #[must_use]
    pub fn evicted_fraction(&self, dataset: DatasetId, total_partitions: u32) -> f64 {
        let missing = self.per_dataset.get(&dataset).map_or(0u32, |s| {
            (s.evicted_partition_ids.len() as u32)
                .max(total_partitions.saturating_sub(s.resident_partitions))
        });
        f64::from(missing.min(total_partitions)) / f64::from(total_partitions.max(1))
    }
}

/// What one step of a task's pipeline did. The `instrument` crate maps
/// these to the paper's §3.3 transformation-time model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StepKind {
    /// Read a source partition from stable storage.
    SourceRead,
    /// Read a cached block from storage memory.
    CacheRead,
    /// Fetched shuffle output from all map tasks (Shuffle Read — the first
    /// "narrow half" of a wide transformation).
    ShuffleRead,
    /// Computed the dataset's partition by applying its operator.
    Compute,
    /// Wrote shuffle output for a downstream stage (Shuffle Write — the
    /// trailing "narrow half" of a wide transformation, recorded in the map
    /// stage).
    ShuffleWrite,
}

/// One step in a task's pipeline, with intra-task timestamps (seconds,
/// relative to application start).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineStep {
    /// The dataset the step materializes (for `ShuffleWrite`, the wide
    /// dataset whose map output is written).
    pub dataset: DatasetId,
    /// Step kind.
    pub kind: StepKind,
    /// Absolute start time.
    pub start: f64,
    /// Absolute finish time.
    pub finish: f64,
    /// Bytes of the produced partition (output of the step).
    pub out_bytes: u64,
}

/// Trace of one executed task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTrace {
    /// Job the task belongs to.
    pub job: JobId,
    /// Stage within the job.
    pub stage: StageId,
    /// Task index within the stage (= partition index of the stage output).
    pub task: u32,
    /// Machine the task ran on.
    pub machine: u32,
    /// Task start (absolute seconds).
    pub start: f64,
    /// Task finish (absolute seconds).
    pub finish: f64,
    /// Pipeline steps in execution order.
    pub steps: Vec<PipelineStep>,
}

/// Timing of one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Containing job.
    pub job: JobId,
    /// Stage id within the job.
    pub stage: StageId,
    /// Stage start (absolute seconds).
    pub start: f64,
    /// Stage finish (absolute seconds).
    pub finish: f64,
    /// Number of tasks the stage ran.
    pub tasks: u32,
}

impl StageTiming {
    /// Stage wall-clock duration.
    #[must_use]
    pub fn duration(&self) -> f64 {
        (self.finish - self.start).max(0.0)
    }
}

/// Multi-tenant contention outcome for one tenant of a
/// [`crate::tenant::TenantSet`] run: how long its tasks queued for FAIR
/// slots, how often other tenants evicted its cached blocks (and vice
/// versa), and how long its blocks survived in the shared pool. Quiet
/// (all-default) for single-app runs, mirroring
/// [`crate::fault::FaultSummary`]'s quiet-exclusion contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ContentionSummary {
    /// This tenant's index within the tenant set.
    pub tenant: u32,
    /// Number of *active* (weight > 0) tenants that shared the cluster
    /// (0 = not a tenancy run). Weightless placeholders are excluded so
    /// admitting one never perturbs the other tenants' digests; a
    /// placeholder's own summary reports the admitted set size instead,
    /// as its self-description.
    pub tenants: u32,
    /// FAIR scheduling weight of this tenant.
    pub weight: f64,
    /// Seconds after cluster start this tenant arrived.
    pub arrival_offset_s: f64,
    /// Cumulative seconds task attempts queued for a free slot beyond
    /// dispatch, stage start, and retry backoff.
    pub slot_wait_s: f64,
    /// Cached blocks of this tenant evicted by *other* tenants' inserts.
    pub cross_evictions_suffered: u64,
    /// Cached blocks of *other* tenants evicted by this tenant's inserts.
    pub cross_evictions_inflicted: u64,
    /// Median cache lifetime (`ln 2 ×` mean) of this tenant's
    /// cross-evicted blocks, seconds; 0 when nothing was cross-evicted.
    pub residency_half_life_s: f64,
}

impl ContentionSummary {
    /// `true` when the run saw no tenancy at all — every field at its
    /// default. Quiet summaries are excluded from the digest so
    /// single-app reports keep their pre-tenancy byte format.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// Result of one simulated application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Schedule the engine enforced (shared — reports are cloned and
    /// fanned across threads during training, so the schedule rides along
    /// by reference count instead of deep copy).
    pub schedule: Arc<Schedule>,
    /// Number of machines.
    pub machines: u32,
    /// End-to-end wall-clock time, seconds (including startup).
    pub total_time_s: f64,
    /// Per-job wall-clock times, seconds.
    pub job_times_s: Vec<f64>,
    /// Cache behaviour.
    pub cache: CacheStats,
    /// Per-job, per-persisted-dataset (hits, misses) — the iteration-level
    /// eviction picture of §7.5.
    pub per_job_cache: Vec<Vec<(DatasetId, u64, u64)>>,
    /// Per-stage timings (always collected; a handful of entries per job).
    pub stage_times: Vec<StageTiming>,
    /// Task traces (present when requested via `RunOptions`).
    pub traces: Vec<TaskTrace>,
    /// Structured span/counter trace (present when `RunOptions::trace` was
    /// enabled); exportable as Chrome `trace_event` JSON or JSONL.
    pub trace: Option<crate::trace::RunTrace>,
    /// Count of tasks that had to spill (could not claim execution
    /// memory).
    pub spilled_tasks: u64,
    /// Total tasks executed.
    pub total_tasks: u64,
    /// Total task attempts, including retried failures and speculative
    /// copies. Equals `total_tasks` in fault-free runs.
    pub task_attempts: u64,
    /// Fault-injection outcomes and fault-tolerance counters: per-event
    /// fired/not-fired accounting, retries, speculation wins, blacklist
    /// events. Quiet (all-empty) for fault-free runs.
    pub faults: crate::fault::FaultSummary,
    /// Multi-tenant contention outcome: slot waits, cross-tenant
    /// evictions, residency half-life. Quiet (all-default) for
    /// single-app runs.
    #[serde(default)]
    pub contention: ContentionSummary,
}

impl RunReport {
    /// Cost in machine-seconds: `machines × time`, the paper's pricing
    /// model (§5.5).
    #[must_use]
    pub fn cost_machine_seconds(&self) -> f64 {
        f64::from(self.machines) * self.total_time_s
    }

    /// Cost in machine-minutes, the unit of the paper's evaluation
    /// figures.
    #[must_use]
    pub fn cost_machine_minutes(&self) -> f64 {
        self.cost_machine_seconds() / 60.0
    }

    /// Content digest of the run's *outcome*: a SHA-256 over a canonical
    /// byte encoding of what the simulation produced (app, schedule,
    /// machine count, timings, cache peaks, per-dataset cache counters,
    /// spill counts). Two runs of the same configuration must produce the
    /// same digest regardless of worker-thread count or whether tracing
    /// was requested — `traces`/`trace` are deliberately excluded, they
    /// describe *how* the run was observed, not *what* it computed.
    /// Floats enter by `to_bits`, so the digest detects even sub-format
    /// numeric drift.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut h = obs::Sha256::new();
        let put_u64 = |h: &mut obs::Sha256, x: u64| h.update(&x.to_be_bytes());
        let put_str = |h: &mut obs::Sha256, s: &str| {
            h.update(&(s.len() as u64).to_be_bytes());
            h.update(s.as_bytes());
        };
        put_str(&mut h, &self.app);
        put_str(&mut h, &self.schedule.notation());
        put_u64(&mut h, u64::from(self.machines));
        put_u64(&mut h, self.total_time_s.to_bits());
        put_u64(&mut h, self.job_times_s.len() as u64);
        for t in &self.job_times_s {
            put_u64(&mut h, t.to_bits());
        }
        put_u64(&mut h, self.cache.peak_storage_bytes);
        put_u64(&mut h, self.cache.peak_exec_bytes);
        // HashMap iteration order is nondeterministic; sort by dataset.
        let mut datasets: Vec<&DatasetId> = self.cache.per_dataset.keys().collect();
        datasets.sort();
        put_u64(&mut h, datasets.len() as u64);
        for d in datasets {
            let s = &self.cache.per_dataset[d];
            put_u64(&mut h, u64::from(d.0));
            for counter in [
                s.hits,
                s.misses,
                s.insert_attempts,
                s.insert_failures,
                s.evictions,
                s.unpersisted,
                u64::from(s.resident_partitions),
                s.resident_bytes,
                s.peak_resident_bytes,
            ] {
                put_u64(&mut h, counter);
            }
        }
        put_u64(&mut h, self.stage_times.len() as u64);
        for st in &self.stage_times {
            put_u64(&mut h, u64::from(st.job.0));
            put_u64(&mut h, u64::from(st.stage.0));
            put_u64(&mut h, st.start.to_bits());
            put_u64(&mut h, st.finish.to_bits());
            put_u64(&mut h, u64::from(st.tasks));
        }
        put_u64(&mut h, self.spilled_tasks);
        put_u64(&mut h, self.total_tasks);
        // Chaos block: hashed only when the run actually saw chaos, so
        // fault-free digests are byte-identical to the pre-chaos format
        // (ledger manifests and drift baselines stay valid).
        if !self.faults.is_quiet() {
            put_u64(&mut h, self.task_attempts);
            for counter in [
                self.faults.failed_attempts,
                self.faults.retried_attempts,
                self.faults.exhausted_tasks,
                self.faults.slowed_tasks,
                self.faults.speculative_launched,
                self.faults.speculative_wins,
            ] {
                put_u64(&mut h, counter);
            }
            put_u64(&mut h, self.faults.outcomes.len() as u64);
            for o in &self.faults.outcomes {
                put_u64(&mut h, u64::from(o.fired));
                put_u64(&mut h, o.event.at_s.to_bits());
                put_u64(&mut h, o.fired_at_s.map_or(u64::MAX, f64::to_bits));
                for w in o.event.kind.digest_words() {
                    put_u64(&mut h, w);
                }
                put_str(&mut h, &o.detail);
            }
            put_u64(&mut h, self.faults.blacklist.len() as u64);
            for b in &self.faults.blacklist {
                put_u64(&mut h, u64::from(b.machine));
                put_u64(&mut h, b.at_s.to_bits());
                put_u64(&mut h, u64::from(b.failures));
            }
        }
        // Contention block: hashed only for tenancy runs, so single-app
        // digests are byte-identical to the pre-tenancy format.
        if !self.contention.is_quiet() {
            let c = &self.contention;
            put_u64(&mut h, u64::from(c.tenant));
            put_u64(&mut h, u64::from(c.tenants));
            put_u64(&mut h, c.weight.to_bits());
            put_u64(&mut h, c.arrival_offset_s.to_bits());
            put_u64(&mut h, c.slot_wait_s.to_bits());
            put_u64(&mut h, c.cross_evictions_suffered);
            put_u64(&mut h, c.cross_evictions_inflicted);
            put_u64(&mut h, c.residency_half_life_s.to_bits());
        }
        obs::to_hex(&h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_machines_times_time() {
        let r = RunReport {
            app: "x".into(),
            schedule: Arc::new(Schedule::empty()),
            machines: 7,
            total_time_s: 120.0,
            job_times_s: vec![],
            cache: CacheStats::default(),
            per_job_cache: vec![],
            stage_times: vec![],
            traces: vec![],
            trace: None,
            spilled_tasks: 0,
            total_tasks: 0,
            task_attempts: 0,
            faults: crate::fault::FaultSummary::default(),
            contention: ContentionSummary::default(),
        };
        assert_eq!(r.cost_machine_seconds(), 840.0);
        assert_eq!(r.cost_machine_minutes(), 14.0);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let mut r = RunReport {
            app: "x".into(),
            schedule: Arc::new(Schedule::empty()),
            machines: 7,
            total_time_s: 120.0,
            job_times_s: vec![40.0, 80.0],
            cache: CacheStats::default(),
            per_job_cache: vec![],
            stage_times: vec![],
            traces: vec![],
            trace: None,
            spilled_tasks: 0,
            total_tasks: 10,
            task_attempts: 10,
            faults: crate::fault::FaultSummary::default(),
            contention: ContentionSummary::default(),
        };
        let d1 = r.digest();
        assert_eq!(d1.len(), 64);
        assert_eq!(r.clone().digest(), d1, "same content, same digest");
        // Observation-only fields don't move the digest.
        r.traces.push(TaskTrace {
            job: JobId(0),
            stage: StageId(0),
            task: 0,
            machine: 0,
            start: 0.0,
            finish: 1.0,
            steps: vec![],
        });
        assert_eq!(r.digest(), d1, "traces are excluded");
        // Outcome fields do.
        r.total_time_s += 1e-9;
        assert_ne!(r.digest(), d1, "timing drift must change the digest");
    }

    #[test]
    fn evicted_fraction_counts_never_cached_partitions() {
        let mut cs = CacheStats::default();
        let d = DatasetId(3);
        cs.per_dataset.insert(
            d,
            DatasetCacheStats {
                insert_attempts: 10,
                insert_failures: 6,
                resident_partitions: 4,
                ..Default::default()
            },
        );
        // 10 partitions, 4 resident → 60 % "evicted or never admitted".
        assert!((cs.evicted_fraction(d, 10) - 0.6).abs() < 1e-12);
        // Unknown dataset: everything missing.
        assert_eq!(cs.evicted_fraction(DatasetId(9), 10), 0.0);
    }

    #[test]
    fn resident_fraction_requires_attempts() {
        let mut cs = CacheStats::default();
        let d = DatasetId(1);
        assert_eq!(cs.resident_fraction(d, 4), None);
        cs.per_dataset.insert(
            d,
            DatasetCacheStats {
                insert_attempts: 4,
                resident_partitions: 3,
                ..Default::default()
            },
        );
        assert_eq!(cs.resident_fraction(d, 4), Some(0.75));
    }
}
