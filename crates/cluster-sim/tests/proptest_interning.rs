//! Property-based tests of the dense dataset/block interning.
//!
//! The block store keys its hot path by dense indices computed from a
//! [`BlockLayout`] prefix sum instead of hashing `(DatasetId, partition)`
//! map keys. These properties pin that the interning is a bijection (the
//! round-trip is lossless for every addressable block) and that it is
//! semantically invisible: a run through a freshly interned engine, a
//! rebuilt engine, and a shared-prep engine all produce the same
//! `RunReport::digest()` — the digest a map-keyed store would produce,
//! since the mapping block → (dataset, partition) is exact.

use proptest::prelude::*;
use std::sync::Arc;

use cluster_sim::{BlockLayout, ClusterConfig, Engine, MachineSpec, RunOptions, SimParams};
use dagflow::{
    AppBuilder, Application, ComputeCost, DatasetId, NarrowKind, Schedule, SourceFormat, WideKind,
};

#[derive(Debug, Clone)]
struct Scenario {
    iterations: usize,
    partitions: u32,
    megabytes: u64,
    machines: u32,
    cache_core: bool,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        1usize..5,
        2u32..10,
        1u64..300,
        1u32..5,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(iterations, partitions, megabytes, machines, cache_core, seed)| Scenario {
                iterations,
                partitions,
                megabytes,
                machines,
                cache_core,
                seed,
            },
        )
}

fn build_app(s: &Scenario) -> Application {
    let bytes = s.megabytes * 1_000_000;
    let mut b = AppBuilder::new("intern-prop");
    let src = b.source(
        "in",
        SourceFormat::DistributedFs,
        10_000,
        bytes,
        s.partitions,
    );
    let core = b.narrow(
        "core",
        NarrowKind::Map,
        &[src],
        10_000,
        bytes,
        ComputeCost::new(0.001, 0.0, 1e-9),
    );
    for i in 0..s.iterations {
        let m = b.narrow(
            format!("m{i}"),
            NarrowKind::Map,
            &[core],
            10_000,
            16 * 10_000,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        let g = b.wide_with_partitions(
            format!("g{i}"),
            WideKind::TreeAggregate,
            &[m],
            1,
            4096,
            1,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        b.job("agg", g);
    }
    b.build().unwrap()
}

fn sim(seed: u64) -> SimParams {
    SimParams {
        seed,
        ..SimParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interning is a bijection: every (dataset, partition) pair maps
    /// to a distinct dense block index that maps straight back, the dense
    /// range is exactly `0..block_count`, and out-of-range partitions are
    /// rejected rather than aliased onto a neighbouring dataset's blocks.
    #[test]
    fn block_interning_round_trips(partitions in prop::collection::vec(1u32..12, 1..8)) {
        let layout = BlockLayout::from_partitions(partitions.iter().copied());
        prop_assert_eq!(layout.dataset_count(), partitions.len());
        let expected_blocks: u32 = partitions.iter().sum();
        prop_assert_eq!(layout.block_count(), expected_blocks as usize);

        let mut seen = vec![false; layout.block_count()];
        for (d, &parts) in partitions.iter().enumerate() {
            let d = DatasetId(d as u32);
            prop_assert_eq!(layout.partitions(d), parts);
            for p in 0..parts {
                let block = layout.block_of(d, p).expect("in-range block interns");
                prop_assert!(block < layout.block_count());
                prop_assert!(!seen[block], "block index {} assigned twice", block);
                seen[block] = true;
                // Round trip: dense index back to the map key.
                prop_assert_eq!(layout.dataset_of(block), d);
                prop_assert_eq!(layout.partition_of(block), p);
            }
            // One past the end must not alias into the next dataset.
            prop_assert_eq!(layout.block_of(d, parts), None);
        }
        prop_assert!(seen.iter().all(|&s| s), "dense range has no holes");
    }

    /// Interning is invisible to results: a run on a freshly built engine,
    /// a second independently interned engine, and an engine sharing the
    /// first one's prep (the training fan-out shape) all report the same
    /// digest — covering report fields, per-dataset cache stats keyed by
    /// the round-tripped `DatasetId`s, and event ordering.
    #[test]
    fn interned_runs_digest_like_map_keyed_runs(s in scenario()) {
        let app = build_app(&s);
        let schedule = if s.cache_core {
            Schedule::persist_all([DatasetId(1)])
        } else {
            Schedule::empty()
        };
        let cluster = ClusterConfig::new(s.machines, MachineSpec::private_cluster());

        let fresh = Engine::new(&app, cluster, sim(s.seed));
        let a = fresh.run(&schedule, RunOptions::default()).unwrap();

        // Independent interning pass over the same app.
        let rebuilt = Engine::new(&app, cluster, sim(s.seed));
        let b = rebuilt.run(&schedule, RunOptions::default()).unwrap();

        // Shared prep + pooled scratch, as stage-4 grid cells run.
        let shared = Engine::with_prep(&app, cluster, sim(s.seed), Arc::clone(fresh.prep()));
        let c = shared.run(&schedule, RunOptions::default()).unwrap();

        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.digest(), c.digest());
        // The digest covers per-dataset stats; assert the keys directly
        // too so a digest change elsewhere cannot mask an interning bug.
        let mut ka: Vec<_> = a.cache.per_dataset.keys().copied().collect();
        let mut kc: Vec<_> = c.cache.per_dataset.keys().copied().collect();
        ka.sort_unstable();
        kc.sort_unstable();
        prop_assert_eq!(ka, kc);
    }
}
