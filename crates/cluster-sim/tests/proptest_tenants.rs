//! Property-based tests of the multi-tenant scheduler: under *arbitrary*
//! tenant sets (sizes, weights, arrivals, seeds, cluster shapes) every
//! run must terminate, account for every task attempt, conserve
//! cross-tenant eviction attribution, and collapse to the plain engine
//! whenever only one tenant can actually run.
//!
//! The per-tenant applications reuse the chaos property suite's
//! iterative shape (input → cached parse → k aggregate jobs) so cached
//! data is large enough for tight pools to force real evictions.

use std::sync::Arc;

use proptest::prelude::*;

use cluster_sim::{
    ClusterConfig, Engine, MachineSpec, NoiseParams, RunOptions, SimParams, Tenant, TenantSet,
};
use dagflow::{
    AppBuilder, Application, ComputeCost, DatasetId, NarrowKind, Schedule, SourceFormat, WideKind,
};

#[derive(Debug, Clone)]
struct TenantShape {
    iterations: usize,
    megabytes: u64,
    weight: f64,
    arrival_s: f64,
    seed: u64,
}

#[derive(Debug, Clone)]
struct SetShape {
    tenants: Vec<TenantShape>,
    machines: u32,
    ram_gb: u64,
}

fn tenant_shape() -> impl Strategy<Value = TenantShape> {
    (
        1usize..6,
        1u64..400,
        (0u32..5, 0.25f64..4.0),
        0.0f64..40.0,
        any::<u64>(),
    )
        .prop_map(
            |(iterations, megabytes, (alive, weight), arrival_s, seed)| TenantShape {
                iterations,
                megabytes,
                // One in five tenants is admitted weightless (inactive).
                weight: if alive == 0 { 0.0 } else { weight },
                arrival_s,
                seed,
            },
        )
}

fn set_shape() -> impl Strategy<Value = SetShape> {
    (
        proptest::collection::vec(tenant_shape(), 1..4),
        1u32..4,
        0usize..3,
    )
        .prop_map(|(tenants, machines, ram)| SetShape {
            tenants,
            machines,
            // Starved, tight and ample pools in one sweep.
            ram_gb: [1, 2, 16][ram],
        })
}

fn build_app(name: &str, shape: &TenantShape) -> Application {
    let bytes = shape.megabytes * 1_000_000;
    let mut b = AppBuilder::new(name);
    let src = b.source("in", SourceFormat::DistributedFs, 10_000, bytes, 6);
    let core = b.narrow(
        "core",
        NarrowKind::Map,
        &[src],
        10_000,
        bytes,
        ComputeCost::new(0.001, 0.0, 1e-9),
    );
    for i in 0..shape.iterations {
        let g = b.wide_with_partitions(
            format!("g{i}"),
            WideKind::TreeAggregate,
            &[core],
            1,
            4096,
            1,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        b.job("agg", g);
    }
    b.build().unwrap()
}

fn quiet(seed: u64) -> SimParams {
    SimParams {
        noise: NoiseParams::NONE,
        cluster_jitter_s: 0.0,
        seed,
        ..SimParams::default()
    }
}

fn cluster(shape: &SetShape) -> ClusterConfig {
    ClusterConfig::new(
        shape.machines,
        MachineSpec {
            ram_bytes: shape.ram_gb * 1_000_000_000,
            ..MachineSpec::paper_example()
        },
    )
}

fn cached_parse() -> Arc<Schedule> {
    Arc::new(Schedule::persist_all([DatasetId(1)]))
}

fn build_set<'a>(apps: &'a [Application], shape: &SetShape) -> TenantSet<'a> {
    TenantSet {
        cluster: cluster(shape),
        tenants: apps
            .iter()
            .zip(&shape.tenants)
            .map(|(app, t)| Tenant {
                arrival_offset_s: t.arrival_s,
                weight: t.weight,
                ..Tenant::new(app, cached_parse(), quiet(t.seed))
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any tenant set: the run terminates, every active tenant finishes
    /// every job with balanced attempt accounting, inactive tenants stay
    /// empty placeholders, eviction attribution conserves events, and
    /// the makespan is exactly the last active departure.
    #[test]
    fn tenant_sets_terminate_and_account(shape in set_shape()) {
        let apps: Vec<Application> = shape
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| build_app(&format!("t{i}"), t))
            .collect();
        let set = build_set(&apps, &shape);
        let tr = set.run(RunOptions::default()).unwrap();

        prop_assert_eq!(tr.reports.len(), shape.tenants.len());
        prop_assert!(tr.cross_evictions_balance());
        let mut last_departure: f64 = 0.0;
        for (r, t) in tr.reports.iter().zip(&shape.tenants) {
            if t.weight > 0.0 {
                prop_assert!(r.total_time_s.is_finite() && r.total_time_s > 0.0);
                prop_assert_eq!(r.job_times_s.len(), t.iterations);
                prop_assert_eq!(
                    r.task_attempts,
                    r.total_tasks + r.faults.retried_attempts + r.faults.speculative_launched
                );
                last_departure = last_departure.max(t.arrival_s + r.total_time_s);
                // A tenant can only *suffer* evictions of blocks it
                // actually cached: cross-tenant evictions are a subset
                // of its datasets' eviction counts — the pool never
                // charges a tenant for blocks it never held.
                let evictions: u64 =
                    r.cache.per_dataset.values().map(|s| s.evictions).sum();
                prop_assert!(r.contention.cross_evictions_suffered <= evictions);
            } else {
                prop_assert_eq!(r.total_tasks, 0);
                prop_assert_eq!(r.task_attempts, 0);
                prop_assert_eq!(r.total_time_s, 0.0);
                prop_assert_eq!(r.contention.weight, 0.0);
            }
        }
        if shape.tenants.iter().any(|t| t.weight > 0.0) {
            prop_assert!((tr.makespan_s - last_departure).abs() < 1e-9);
        }
    }

    /// Adding a weightless tenant to any set never changes the *active*
    /// tenants' results: digests are bit-identical with and without the
    /// placeholder. (Placeholders themselves self-describe the admitted
    /// set, so their reports are allowed to mention the newcomer.)
    #[test]
    fn weightless_tenants_are_invisible(
        shape in set_shape(),
        ghost in tenant_shape(),
    ) {
        let apps: Vec<Application> = shape
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| build_app(&format!("t{i}"), t))
            .collect();
        let set = build_set(&apps, &shape);
        let base = set.run(RunOptions::default()).unwrap();

        let ghost_app = build_app("ghost", &ghost);
        let mut with_ghost = build_set(&apps, &shape);
        with_ghost.tenants.push(Tenant {
            arrival_offset_s: ghost.arrival_s,
            weight: 0.0,
            ..Tenant::new(&ghost_app, cached_parse(), quiet(ghost.seed))
        });
        let ghosted = with_ghost.run(RunOptions::default()).unwrap();

        for ((a, b), t) in base.reports.iter().zip(&ghosted.reports).zip(&shape.tenants) {
            if t.weight > 0.0 {
                prop_assert_eq!(a.digest(), b.digest());
            } else {
                prop_assert_eq!(b.total_tasks, 0);
            }
        }
        prop_assert_eq!(
            ghosted.reports.last().unwrap().total_tasks, 0,
            "the ghost must run nothing"
        );
        prop_assert!((base.makespan_s - ghosted.makespan_s).abs() < 1e-12);
    }

    /// A single-tenant set is the plain engine, whatever the tenant's
    /// shape — weight and arrival scale the makespan but not the report.
    #[test]
    fn single_tenant_sets_are_the_plain_engine(
        t in tenant_shape(),
        machines in 1u32..4,
    ) {
        prop_assume!(t.weight > 0.0);
        let shape = SetShape { tenants: vec![t.clone()], machines, ram_gb: 16 };
        let app = build_app("solo", &t);
        let plain = Engine::new(&app, cluster(&shape), quiet(t.seed))
            .run_shared(&cached_parse(), RunOptions::default())
            .unwrap();
        let apps = vec![app];
        let set = build_set(&apps, &shape);
        let tr = set.run(RunOptions::default()).unwrap();
        prop_assert_eq!(tr.reports[0].digest(), plain.digest());
        prop_assert_eq!(&tr.reports[0], &plain);
        prop_assert!((tr.makespan_s - (t.arrival_s + plain.total_time_s)).abs() < 1e-12);
    }

    /// Reruns of the same set are bit-identical: the interleaved
    /// scheduler has no hidden state.
    #[test]
    fn tenancy_runs_are_deterministic(shape in set_shape()) {
        let apps: Vec<Application> = shape
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| build_app(&format!("t{i}"), t))
            .collect();
        let set = build_set(&apps, &shape);
        let first = set.run(RunOptions::default()).unwrap();
        let second = set.run(RunOptions::default()).unwrap();
        for (a, b) in first.reports.iter().zip(&second.reports) {
            prop_assert_eq!(a.digest(), b.digest());
        }
        prop_assert_eq!(first.makespan_s.to_bits(), second.makespan_s.to_bits());
    }
}
