//! Property-based tests of the chaos machinery: under *arbitrary* fault
//! plans the engine must terminate, account for every task attempt, and
//! restore cache residency through lineage — and an empty plan must be
//! byte-identical to a plain run.
//!
//! The fixture keeps cached data far below the block store's capacity so
//! memory-pressure claims squeeze execution memory without forcing the
//! run into a different caching regime; every other fault is fair game,
//! including ghost machines the cluster does not have.

use proptest::prelude::*;

use cluster_sim::{
    ClusterConfig, Engine, FaultKind, FaultPlan, MachineSpec, NoiseParams, RetryPolicy, RunOptions,
    SimParams,
};
use dagflow::{
    AppBuilder, Application, ComputeCost, DatasetId, NarrowKind, Schedule, SourceFormat, WideKind,
};

#[derive(Debug, Clone)]
struct Scenario {
    iterations: usize,
    partitions: u32,
    megabytes: u64,
    machines: u32,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..6, 2u32..12, 1u64..400, 1u32..6, any::<u64>()).prop_map(
        |(iterations, partitions, megabytes, machines, seed)| Scenario {
            iterations,
            partitions,
            megabytes,
            machines,
            seed,
        },
    )
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    (
        0u32..4,
        0u32..8,
        1u32..10,
        1.0f64..8.0,
        0.0f64..30.0,
        0u64..2_000_000_000,
    )
        .prop_map(
            |(which, machine, count, factor, duration_s, bytes)| match which {
                0 => FaultKind::ExecutorLoss { machine },
                1 => FaultKind::SlowNode {
                    machine,
                    factor,
                    duration_s,
                },
                2 => FaultKind::TaskFailures { count },
                _ => FaultKind::MemoryPressure {
                    machine,
                    bytes,
                    duration_s,
                },
            },
        )
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((0.0f64..60.0, fault_kind()), 0..4).prop_map(|events| {
        events
            .into_iter()
            .fold(FaultPlan::none(), |p, (at, k)| p.event(at, k))
    })
}

fn build_app(s: &Scenario) -> Application {
    let bytes = s.megabytes * 1_000_000;
    let mut b = AppBuilder::new("chaos-prop");
    let src = b.source(
        "in",
        SourceFormat::DistributedFs,
        10_000,
        bytes,
        s.partitions,
    );
    let core = b.narrow(
        "core",
        NarrowKind::Map,
        &[src],
        10_000,
        bytes,
        ComputeCost::new(0.001, 0.0, 1e-9),
    );
    for i in 0..s.iterations {
        let m = b.narrow(
            format!("m{i}"),
            NarrowKind::Map,
            &[core],
            10_000,
            16 * 10_000,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        let g = b.wide_with_partitions(
            format!("g{i}"),
            WideKind::TreeAggregate,
            &[m],
            1,
            4096,
            1,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        b.job("agg", g);
    }
    b.build().unwrap()
}

fn quiet(seed: u64, faults: FaultPlan, retry: RetryPolicy) -> SimParams {
    SimParams {
        noise: NoiseParams::NONE,
        cluster_jitter_s: 0.0,
        seed,
        faults,
        retry,
        ..SimParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any fault plan: the run terminates, every task attempt is
    /// accounted for, every event either fires or explains itself, and
    /// lineage restores the fault-free run's final cache residency.
    #[test]
    fn chaos_runs_terminate_and_recover(
        s in scenario(),
        plan in fault_plan(),
        speculative in any::<bool>(),
    ) {
        let app = build_app(&s);
        let schedule = Schedule::persist_all([DatasetId(1)]);
        let cluster = ClusterConfig::new(s.machines, MachineSpec::private_cluster());
        let policy = if speculative {
            RetryPolicy::speculative()
        } else {
            RetryPolicy::default()
        };
        let events = plan.events.len();

        let base = Engine::new(&app, cluster, quiet(s.seed, FaultPlan::none(), RetryPolicy::default()))
            .run(&schedule, RunOptions::default())
            .unwrap();
        let chaos = Engine::new(&app, cluster, quiet(s.seed, plan, policy))
            .run(&schedule, RunOptions::default())
            .unwrap();

        // Termination and attempt accounting.
        prop_assert!(chaos.total_time_s.is_finite() && chaos.total_time_s > 0.0);
        prop_assert!(chaos.total_time_s + 1e-9 >= base.total_time_s);
        prop_assert!(chaos.task_attempts >= chaos.total_tasks);
        let f = &chaos.faults;
        prop_assert_eq!(
            chaos.task_attempts,
            chaos.total_tasks + f.retried_attempts + f.speculative_launched
        );
        prop_assert!(f.retried_attempts <= f.failed_attempts);
        prop_assert!(f.speculative_wins <= f.speculative_launched);

        // Every event is reported; unfired events explain why.
        prop_assert_eq!(f.outcomes.len(), events);
        for o in &f.outcomes {
            prop_assert!(o.fired == o.fired_at_s.is_some());
            prop_assert!(o.fired || !o.detail.is_empty());
        }

        // Lineage restores the fault-free final residency, dataset by
        // dataset (faults fire at job boundaries, and every job here
        // re-reads the cached dataset).
        for (d, b_stats) in &base.cache.per_dataset {
            let c_stats = &chaos.cache.per_dataset[d];
            prop_assert_eq!(
                c_stats.resident_partitions,
                b_stats.resident_partitions,
                "{:?} residency not restored",
                d
            );
            prop_assert!(c_stats.misses >= b_stats.misses);
        }
    }

    /// An empty fault plan with the default retry policy is invisible:
    /// the report is bit-identical to one from untouched `SimParams`.
    #[test]
    fn zero_fault_plans_are_invisible(s in scenario()) {
        let app = build_app(&s);
        let schedule = Schedule::persist_all([DatasetId(1)]);
        let cluster = ClusterConfig::new(s.machines, MachineSpec::private_cluster());
        let plain = Engine::new(&app, cluster, SimParams { seed: s.seed, ..SimParams::default() })
            .run(&schedule, RunOptions::default())
            .unwrap();
        let armed = Engine::new(
            &app,
            cluster,
            SimParams {
                seed: s.seed,
                faults: FaultPlan::none(),
                retry: RetryPolicy::default(),
                ..SimParams::default()
            },
        )
        .run(&schedule, RunOptions::default())
        .unwrap();
        prop_assert_eq!(plain.digest(), armed.digest());
        prop_assert!(armed.faults.is_quiet());
        prop_assert_eq!(armed.task_attempts, armed.total_tasks);
    }
}
