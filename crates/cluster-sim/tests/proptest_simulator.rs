//! Property-based tests of the simulator: determinism, memory-accounting
//! invariants, and cost identities over randomized iterative applications
//! and schedules.

use proptest::prelude::*;

use cluster_sim::{ClusterConfig, Engine, MachineSpec, NoiseParams, RunOptions, SimParams};
use dagflow::{
    AppBuilder, Application, ComputeCost, DatasetId, NarrowKind, Schedule, SourceFormat, WideKind,
};

#[derive(Debug, Clone)]
struct Scenario {
    iterations: usize,
    partitions: u32,
    megabytes: u64,
    machines: u32,
    cache_core: bool,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        1usize..6,
        2u32..12,
        1u64..400,
        1u32..6,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(iterations, partitions, megabytes, machines, cache_core, seed)| Scenario {
                iterations,
                partitions,
                megabytes,
                machines,
                cache_core,
                seed,
            },
        )
}

fn build_app(s: &Scenario) -> Application {
    let bytes = s.megabytes * 1_000_000;
    let mut b = AppBuilder::new("sim-prop");
    let src = b.source(
        "in",
        SourceFormat::DistributedFs,
        10_000,
        bytes,
        s.partitions,
    );
    let core = b.narrow(
        "core",
        NarrowKind::Map,
        &[src],
        10_000,
        bytes,
        ComputeCost::new(0.001, 0.0, 1e-9),
    );
    for i in 0..s.iterations {
        let m = b.narrow(
            format!("m{i}"),
            NarrowKind::Map,
            &[core],
            10_000,
            16 * 10_000,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        let g = b.wide_with_partitions(
            format!("g{i}"),
            WideKind::TreeAggregate,
            &[m],
            1,
            4096,
            1,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        b.job("agg", g);
    }
    b.build().unwrap()
}

fn sim(seed: u64) -> SimParams {
    SimParams {
        seed,
        ..SimParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical (app, schedule, cluster, seed) gives bit-identical runs.
    #[test]
    fn runs_are_deterministic(s in scenario()) {
        let app = build_app(&s);
        let schedule = if s.cache_core {
            Schedule::persist_all([DatasetId(1)])
        } else {
            Schedule::empty()
        };
        let cluster = ClusterConfig::new(s.machines, MachineSpec::private_cluster());
        let engine = Engine::new(&app, cluster, sim(s.seed));
        let opts = RunOptions { collect_traces: true, partition_skew: 0.2, ..RunOptions::default() };
        let a = engine.run(&schedule, opts).unwrap();
        let b = engine.run(&schedule, opts).unwrap();
        prop_assert_eq!(a.total_time_s, b.total_time_s);
        prop_assert_eq!(a.job_times_s, b.job_times_s);
        prop_assert_eq!(a.traces.len(), b.traces.len());
    }

    /// Cost identity and basic sanity of every report.
    #[test]
    fn report_invariants(s in scenario()) {
        let app = build_app(&s);
        let schedule = if s.cache_core {
            Schedule::persist_all([DatasetId(1)])
        } else {
            Schedule::empty()
        };
        let cluster = ClusterConfig::new(s.machines, MachineSpec::private_cluster());
        let engine = Engine::new(&app, cluster, sim(s.seed));
        let r = engine.run(&schedule, RunOptions::default()).unwrap();
        prop_assert!(r.total_time_s.is_finite() && r.total_time_s > 0.0);
        prop_assert!((r.cost_machine_seconds()
            - f64::from(s.machines) * r.total_time_s).abs() < 1e-9);
        prop_assert_eq!(r.job_times_s.len(), app.jobs().len());
        for t in &r.job_times_s {
            prop_assert!(*t >= 0.0);
        }
        prop_assert!(r.spilled_tasks <= r.total_tasks);
        // Peak storage never exceeds cluster-wide unified memory.
        prop_assert!(r.cache.peak_storage_bytes <= cluster.total_unified_memory());
    }

    /// Caching the reused dataset never makes later iterations slower:
    /// total time with the cache is bounded by the uncached run (plus a
    /// small tolerance for noise reordering).
    #[test]
    fn caching_is_not_harmful(s in scenario()) {
        prop_assume!(s.iterations >= 2);
        let app = build_app(&s);
        let cluster = ClusterConfig::new(s.machines, MachineSpec::private_cluster());
        let quiet = SimParams {
            noise: NoiseParams::NONE,
            cluster_jitter_s: 0.0,
            seed: s.seed,
            ..SimParams::default()
        };
        let engine = Engine::new(&app, cluster, quiet);
        let cold = engine.run(&Schedule::empty(), RunOptions::default()).unwrap();
        let hot = engine
            .run(&Schedule::persist_all([DatasetId(1)]), RunOptions::default())
            .unwrap();
        prop_assert!(
            hot.total_time_s <= cold.total_time_s * 1.02 + 0.5,
            "cached {} vs uncached {}",
            hot.total_time_s,
            cold.total_time_s
        );
    }

    /// Resident partitions of the cached dataset never exceed its
    /// partition count, and hits + misses are consistent with job count.
    #[test]
    fn cache_accounting(s in scenario()) {
        let app = build_app(&s);
        let cluster = ClusterConfig::new(s.machines, MachineSpec::private_cluster());
        let engine = Engine::new(&app, cluster, sim(s.seed));
        let r = engine
            .run(&Schedule::persist_all([DatasetId(1)]), RunOptions::default())
            .unwrap();
        let stats = r.cache.per_dataset.get(&DatasetId(1)).expect("tracked");
        prop_assert!(stats.resident_partitions <= s.partitions);
        prop_assert!(u64::from(stats.resident_partitions) <= stats.insert_attempts);
        let demands = stats.hits + stats.misses;
        prop_assert_eq!(
            demands,
            u64::from(s.iterations as u32) * u64::from(s.partitions),
            "one demand per partition per iteration"
        );
    }
}
