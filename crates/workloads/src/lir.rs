//! Linear Regression (LIR) — the motivating example of the paper's
//! Figure 1.
//!
//! HiBench's developers cache **nothing** in LIR, yet every one of the 10
//! SGD iterations re-reads the full input. Juggler's first schedule caches
//! the parsed input dataset `D1` (the paper's "caching the input dataset
//! (35.9 GB)"), and its second adds `D3`, the evaluation-split dataset the
//! four post-training jobs reuse.
//!
//! Structure:
//!
//! * `D0` input text → `D1` parsed points (≈ input-sized; all iterations
//!   read it directly) → `D2` evaluation projection → `D3` evaluation
//!   split (used by 4 post-training jobs);
//! * 10 iterations × 9 datasets (dot-products → residuals → squares →
//!   gradient parts → gradient (treeAggregate) → step → regularize → new
//!   weights → convergence);
//! * two evaluation jobs over the split, plus two metadata side-input
//!   chains reused by two configuration jobs each (the 12 remaining
//!   low-value intermediates of Table 1's 16).
//!
//! Totals: **111 datasets, 16 intermediates** (Table 1); default schedule
//! empty; Juggler's schedules `p(1)` and `p(1) p(3)` (Table 2).

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The LIR workload generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearRegression;

impl Workload for LinearRegression {
    fn name(&self) -> &'static str {
        "LIR"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(40_000, 120_000, 10)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.12,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let e = p.e();
        let f = p.f();
        let parts = p.partitions;
        let iters = p.iterations.max(1) as usize;

        let parse = ComputeCost::new(0.002, 0.0, 1.5e-10);
        let project = ComputeCost::new(0.002, 0.0, 5.0e-10);
        let split = ComputeCost::new(0.002, 0.0, 5.0e-10);
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        let dot_scan = ComputeCost::new(0.004, 0.0, 5.0e-9);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("lir");
        let d0 = b.source(
            "input",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        // D1: the parsed input — 35.9 GB vs the 35.8 GB text at Table 1's
        // parameters, mirroring the paper's "caching the input dataset".
        let d1 = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[d0],
            p.examples,
            bytes(7.47 * ef),
            parse,
        );
        let d2 = b.narrow(
            "evalProjection",
            NarrowKind::Map,
            &[d1],
            p.examples,
            bytes(4.6 * ef),
            project,
        );
        let d3 = b.narrow(
            "evalSplit",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(4.4 * ef),
            split,
        );
        let v0 = b.narrow("numExamples", NarrowKind::Map, &[d1], 1, 8, tiny); // 4

        b.job("count", v0);
        // Early split-validation job acting directly on D3: it anchors
        // D3's first materialization *before* the iterations, so Juggler's
        // second schedule keeps D1 persisted (`p(1) p(3)`, no unpersist).
        b.job("count", d3);

        // Iterations read the (by default uncached!) parsed input directly.
        for i in 0..iters {
            let dot = b.narrow(
                format!("dot[{i}]"),
                NarrowKind::Map,
                &[d1],
                p.examples,
                bytes(16.0 * e),
                dot_scan,
            );
            let resid = b.narrow(
                format!("residuals[{i}]"),
                NarrowKind::Map,
                &[dot],
                p.examples,
                bytes(8.0 * e),
                tiny,
            );
            let sq = b.narrow(
                format!("squares[{i}]"),
                NarrowKind::Map,
                &[resid],
                p.examples,
                bytes(8.0 * e),
                tiny,
            );
            let gp = b.narrow(
                format!("gradParts[{i}]"),
                NarrowKind::Map,
                &[sq],
                p.examples,
                bytes(8.0 * e),
                tiny,
            );
            let grad = b.wide_with_partitions(
                format!("gradient[{i}]"),
                WideKind::TreeAggregate,
                &[gp],
                1,
                bytes(8.0 * f),
                1,
                agg,
            );
            let step = b.narrow(
                format!("step[{i}]"),
                NarrowKind::Map,
                &[grad],
                1,
                bytes(8.0 * f),
                tiny,
            );
            let reg = b.narrow(
                format!("regularized[{i}]"),
                NarrowKind::Map,
                &[step],
                1,
                bytes(8.0 * f),
                tiny,
            );
            let w = b.narrow(
                format!("weights[{i}]"),
                NarrowKind::Map,
                &[reg],
                1,
                bytes(8.0 * f),
                tiny,
            );
            let conv = b.narrow(format!("converged[{i}]"), NarrowKind::Map, &[w], 1, 8, tiny);
            b.job("treeAggregate", conv);
        }

        // Two evaluation jobs over the split, each with its own view.
        for k in 0..2 {
            let v = b.narrow(format!("eval{k}"), NarrowKind::Map, &[d3], 1, 8, tiny);
            b.job("collect", v);
        }

        // Two metadata side inputs (schema + hyper-parameter files), each
        // parsed through a 5-step chain reused by two configuration jobs —
        // the twelve cheap n = 2 intermediates of Table 1's sixteen. Their
        // recompute chains are a 1 kB read, so they never become hotspots.
        let meta_cost = ComputeCost::new(0.000_05, 0.0, 1.0e-11);
        for block in 0..2 {
            let src = b.source(
                format!("meta{block}"),
                SourceFormat::DistributedFs,
                32,
                1024,
                1,
            );
            let mut prev = src;
            for k in 0..5 {
                prev = b.narrow(
                    format!("meta{block}.step{k}"),
                    NarrowKind::Map,
                    &[prev],
                    32,
                    1024,
                    meta_cost,
                );
            }
            b.job("collect", prev);
            let view = b.narrow(
                format!("meta{block}.report"),
                NarrowKind::Map,
                &[prev],
                1,
                8,
                tiny,
            );
            b.job("collect", view);
        }

        // HiBench's LIR caches nothing.
        b.default_schedule(Schedule::empty());
        b.build().expect("LIR plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{DatasetId, LineageAnalysis};

    #[test]
    fn table1_dataset_counts() {
        let app = LinearRegression.build(&LinearRegression.paper_params());
        assert_eq!(app.dataset_count(), 111, "Table 1: LIR has 111 datasets");
        let la = LineageAnalysis::new(&app);
        assert_eq!(la.intermediates().len(), 16, "Table 1: 16 intermediates");
    }

    #[test]
    fn table1_input_size() {
        let app = LinearRegression.build(&LinearRegression.paper_params());
        let gb = app.input_bytes() as f64 / 1e9;
        assert!((gb - 35.8).abs() < 0.3, "input {gb} GB");
    }

    #[test]
    fn default_schedule_is_empty() {
        let app = LinearRegression.build(&LinearRegression.paper_params());
        assert!(
            app.default_schedule().is_empty(),
            "HiBench LIR caches nothing"
        );
    }

    #[test]
    fn figure1_cached_dataset_is_input_sized() {
        let app = LinearRegression.build(&LinearRegression.paper_params());
        let gb = app.dataset(DatasetId(1)).bytes as f64 / 1e9;
        assert!((gb - 35.9).abs() < 0.2, "parsed input {gb} GB");
    }

    #[test]
    fn iterations_read_parsed_input_directly() {
        let p = WorkloadParams::auto(2_000, 1_000, 4);
        let app = LinearRegression.build(&p);
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        assert_eq!(
            n[1] as u32,
            2 + 4 + 2,
            "n(D1) = count + split + iters + evals"
        );
        assert_eq!(n[3] as u32, 3, "n(D3) = split-check + 2 eval jobs");
    }

    #[test]
    fn metric_blocks_are_low_value_intermediates() {
        let p = WorkloadParams::auto(2_000, 1_000, 2);
        let app = LinearRegression.build(&p);
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        // The six chain datasets of each block are computed exactly twice.
        let twice = n.iter().filter(|&&c| c == 2).count();
        assert_eq!(twice, 12);
    }
}
