#![warn(missing_docs)]
//! # workloads — the five HiBench ML applications of the evaluation
//!
//! Generators for the iterative machine-learning applications Juggler is
//! evaluated on (paper Table 1): Linear Regression (LIR), Logistic
//! Regression (LOR), Principal Components Analysis (PCA), Random Forest
//! Classifier (RFC) and Support Vector Machine (SVM).
//!
//! Each generator produces a `dagflow::Application` parameterized by
//! *(examples, features, iterations, partitions)* whose structure matches
//! the paper's observations:
//!
//! * input size follows HiBench's text format — **7.45 bytes per (example
//!   × feature) cell**, which reproduces every "Input data" entry of
//!   Table 1 from its (examples, features) pair;
//! * dataset counts, intermediate-dataset counts, and the developer-cached
//!   default schedules match Table 1/Table 2;
//! * dataset ids are laid out so the paper's schedule notation (`p(1)`,
//!   `p(2) u(2) p(11)`, …) refers to the same ids here;
//! * per-dataset size laws fall inside the paper's §5.2 model families,
//!   and compute-cost constants are calibrated so hotspot detection
//!   reproduces Table 2's schedules exactly (asserted by integration
//!   tests).

pub mod common;
pub mod kmeans;
pub mod lir;
pub mod lor;
pub mod pca;
pub mod rfc;
pub mod sqljoin;
pub mod stream;
pub mod svm;
pub mod validate;

pub use common::{WorkloadParams, HIBENCH_BYTES_PER_CELL};
pub use kmeans::KMeans;
pub use lir::LinearRegression;
pub use lor::LogisticRegression;
pub use pca::Pca;
pub use rfc::RandomForest;
pub use sqljoin::SqlStarJoin;
pub use stream::MicroBatchStream;
pub use svm::SupportVectorMachine;
pub use validate::{validate_workload, WorkloadIssue};

use cluster_sim::SimParams;
use dagflow::Application;

/// A generatable benchmark application.
///
/// `Send + Sync` so trait objects can be shared with the scoped worker
/// threads of the offline-training runner; implementations are stateless
/// unit structs, so the bound costs nothing.
pub trait Workload: Send + Sync {
    /// Short uppercase name as the paper uses it (`LIR`, `LOR`, …).
    fn name(&self) -> &'static str;

    /// Builds the application plan for the given parameters.
    fn build(&self, params: &WorkloadParams) -> Application;

    /// The evaluation parameters of Table 1.
    fn paper_params(&self) -> WorkloadParams;

    /// Calibrated engine constants for this application (driver overheads,
    /// execution-memory factor, noise).
    fn sim_params(&self) -> SimParams;

    /// Tiny-sample parameters for the hotspot-detection run (§5.1 keeps
    /// "the training overhead to a minimum by running the application on a
    /// small data sample and with few iterations").
    fn sample_params(&self) -> WorkloadParams {
        let paper = self.paper_params();
        WorkloadParams {
            examples: (paper.examples / 20).max(200),
            features: (paper.features / 20).max(200),
            iterations: paper.iterations.min(3),
            partitions: 8,
        }
    }

    /// Training arrays `E` and `F` (three levels each, §5.2) for parameter
    /// calibration and execution-time model training. They span up to the
    /// paper-scale values so the recommended machine counts of the
    /// training runs cover the range the models will predict for — this
    /// is why the paper's Figure 16/Table 5 training costs are dominated
    /// by the execution-time stage.
    fn training_axes(&self) -> (Vec<f64>, Vec<f64>) {
        let p = self.paper_params();
        let e = p.examples as f64;
        let f = p.features as f64;
        (vec![e / 5.0, e / 2.0, e], vec![f / 5.0, f / 2.0, f])
    }
}

/// All five evaluated workloads, in the paper's table order.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(LinearRegression),
        Box::new(LogisticRegression),
        Box::new(Pca),
        Box::new(RandomForest),
        Box::new(SupportVectorMachine),
    ]
}
