//! SQL star join — a multi-stage analytical-query DAG family.
//!
//! Not part of the paper's evaluation set; it exists (with
//! [`crate::stream::MicroBatchStream`]) to exercise Juggler on DAG shapes
//! beyond iterative ML: a fact table joined against two dimension tables
//! (the wide `Join` stages give the DAG genuine fan-in), then a family of
//! rollup queries over the joined star table. Every query re-pulls the
//! join chain, so the star table is the natural caching hotspot — the
//! SQL analogue of the paper's reused `points` dataset.
//!
//! Structure: fact + two dimension sources → parsed fact (`8·e·f` bytes)
//! and parsed dimensions → `factXcustomers` (2-parent join) → `star`
//! (second join) → per query, a `reduceByKey` rollup and a tiny collect.
//! `iterations` is the number of queries.

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The SQL star-join workload generator. `examples` is the fact-table row
/// count, `features` the dimension cardinality, `iterations` the number
/// of rollup queries run over the joined table.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlStarJoin;

impl Workload for SqlStarJoin {
    fn name(&self) -> &'static str {
        "SQLJOIN"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(60_000, 30_000, 8)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.12,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let f = p.f();
        let parts = p.partitions;
        let queries = p.iterations.max(1) as usize;

        let parse = ComputeCost::new(0.002, 0.0, 1.5e-10);
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        let join = ComputeCost::new(0.004, 0.0, 6.0e-10);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("sqljoin");
        let fact = b.source(
            "fact",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        let dim_customers = b.source(
            "dimCustomers",
            SourceFormat::DistributedFs,
            p.features,
            bytes(64.0 * f),
            8,
        );
        let dim_products = b.source(
            "dimProducts",
            SourceFormat::DistributedFs,
            p.features,
            bytes(32.0 * f),
            8,
        );
        let parsed = b.narrow(
            "parsedFact",
            NarrowKind::Map,
            &[fact],
            p.examples,
            bytes(8.0 * ef),
            parse,
        );
        let customers = b.narrow(
            "customers",
            NarrowKind::Map,
            &[dim_customers],
            p.features,
            bytes(48.0 * f),
            tiny,
        );
        let products = b.narrow(
            "products",
            NarrowKind::Map,
            &[dim_products],
            p.features,
            bytes(24.0 * f),
            tiny,
        );
        // The fan-in: each join stage shuffles two parents together.
        let join1 = b.wide(
            "factXcustomers",
            WideKind::Join,
            &[parsed, customers],
            p.examples,
            bytes(10.0 * ef),
            join,
        );
        let star = b.wide(
            "star",
            WideKind::Join,
            &[join1, products],
            p.examples,
            bytes(12.0 * ef),
            join,
        );
        for q in 0..queries {
            let rollup = b.wide(
                format!("rollup[{q}]"),
                WideKind::ReduceByKey,
                &[star],
                p.features,
                bytes(16.0 * f),
                agg,
            );
            let top = b.narrow(format!("top[{q}]"), NarrowKind::Map, &[rollup], 1, 8, tiny);
            b.job("collect", top);
        }

        // The developer default caches the fully joined star table — the
        // SQL counterpart of HiBench persisting the parsed points.
        b.default_schedule(Schedule::persist_all([star]));
        b.build().expect("SQL star-join plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{DatasetId, LineageAnalysis};

    const STAR: DatasetId = DatasetId(7);

    #[test]
    fn structure_is_a_star_join_with_fan_in() {
        let app = SqlStarJoin.build(&WorkloadParams::auto(2_000, 1_000, 6));
        // Two 2-parent join stages give the DAG its fan-in.
        let join1 = app.dataset(DatasetId(6));
        assert_eq!(join1.name, "factXcustomers");
        assert_eq!(join1.parents.len(), 2);
        let star = app.dataset(STAR);
        assert_eq!(star.name, "star");
        assert_eq!(star.parents.len(), 2);
        // One job per query, each re-pulling the star table.
        assert_eq!(app.jobs().len(), 6);
        let la = LineageAnalysis::new(&app);
        assert_eq!(la.computation_counts()[STAR.index()], 6);
    }

    /// The whole upstream chain is reused by every query: sources, parsed
    /// tables and both joins are all stable intermediates.
    #[test]
    fn join_chain_is_reused() {
        let app = SqlStarJoin.build(&WorkloadParams::auto(2_000, 1_000, 4));
        let la = LineageAnalysis::new(&app);
        assert_eq!(
            la.intermediates(),
            (0..8).map(DatasetId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn validates_under_the_workload_harness() {
        let issues = crate::validate::validate_workload(&SqlStarJoin);
        assert!(issues.is_empty(), "{issues:?}");
    }
}
