//! Shared parameterization and size/cost helpers for the workload
//! generators.

use serde::{Deserialize, Serialize};

/// HiBench text inputs cost ~7.45 bytes per (example, feature) cell: this
/// single constant reproduces every "Input data" entry of the paper's
/// Table 1 from its (examples, features) pair — 35.8 GB for LIR's
/// 40k × 120k, 26.1 GB for LOR's 70k × 50k, 229.2 MB for PCA's 6k × 5k,
/// 29.8 GB for RFC's 100k × 40k and 23.8 GB for SVM's 40k × 80k.
pub const HIBENCH_BYTES_PER_CELL: f64 = 7.45;

/// User-facing application parameters (the paper's P1 = examples and
/// P2 = features, plus iterations per §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of training examples (P1).
    pub examples: u64,
    /// Number of features per example (P2).
    pub features: u64,
    /// Iteration count.
    pub iterations: u32,
    /// Input partitioning (HDFS-block-derived in HiBench).
    pub partitions: u32,
}

impl WorkloadParams {
    /// Builds parameters with partitions derived from the input size
    /// (≈ one 128 MB block per partition, clamped to `[8, 1024]`).
    #[must_use]
    pub fn auto(examples: u64, features: u64, iterations: u32) -> Self {
        let bytes = HIBENCH_BYTES_PER_CELL * examples as f64 * features as f64;
        let partitions = ((bytes / 128.0e6).ceil() as u32).clamp(8, 1024);
        WorkloadParams {
            examples,
            features,
            iterations,
            partitions,
        }
    }

    /// Examples as f64 (for size laws).
    #[must_use]
    pub fn e(&self) -> f64 {
        self.examples as f64
    }

    /// Features as f64.
    #[must_use]
    pub fn f(&self) -> f64 {
        self.features as f64
    }

    /// `e × f` — the dominant size term of the §5.2 model families.
    #[must_use]
    pub fn ef(&self) -> f64 {
        self.e() * self.f()
    }

    /// Input bytes under the HiBench text law.
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        (HIBENCH_BYTES_PER_CELL * self.ef()) as u64
    }
}

/// Rounds a byte law to u64, guarding against zero-sized datasets.
#[must_use]
pub fn bytes(b: f64) -> u64 {
    b.max(8.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The HiBench size law reproduces Table 1's input sizes within 1 %.
    #[test]
    fn table1_input_sizes() {
        let cases = [
            (40_000u64, 120_000u64, 35.8e9), // LIR
            (70_000, 50_000, 26.1e9),        // LOR
            (6_000, 5_000, 229.2e6),         // PCA
            (100_000, 40_000, 29.8e9),       // RFC
            (40_000, 80_000, 23.8e9),        // SVM
        ];
        for (e, f, expect) in cases {
            let p = WorkloadParams::auto(e, f, 1);
            let err = (p.input_bytes() as f64 - expect).abs() / expect;
            assert!(err < 0.03, "{e}x{f}: {} vs {expect}", p.input_bytes());
        }
    }

    #[test]
    fn auto_partitions_scale_with_size() {
        let small = WorkloadParams::auto(6_000, 5_000, 1);
        assert_eq!(small.partitions, 8, "tiny inputs clamp to 8");
        let big = WorkloadParams::auto(40_000, 120_000, 1);
        assert_eq!(big.partitions, (35.76e9_f64 / 128.0e6).ceil() as u32);
    }

    #[test]
    fn bytes_guard() {
        assert_eq!(bytes(0.0), 8);
        assert_eq!(bytes(100.4), 100);
    }
}
