//! Principal Components Analysis (PCA) — the paper's CPU-intensive,
//! tiny-data application: all cached datasets fit into a single machine's
//! memory, so Juggler recommends one machine (minimal cost, longest time).
//!
//! Structure:
//!
//! * `D0` input text → `D1` parsed rows → `D2` dense vectors (HiBench
//!   caches `D2`) → … → `D13` the row matrix every power-iteration reads,
//!   with an expensive normalization step producing it → `D14` the
//!   Gramian staging dataset (D13's single child);
//! * ids 3–12: pre-processing chains (mean vector, column norms,
//!   feature scaling) plus the example-count view, each used once;
//! * 100 power iterations × 18 datasets (block multiplies, normalization
//!   cascades, convergence checks — MLlib's ARPACK-style driver launches
//!   many tiny jobs, which is how PCA reaches 1 833 datasets);
//! * a final 18-dataset eigenvector extraction across 2 jobs.
//!
//! `|D1| = |D2| = |D13|` (dense doubles ≈ 8.2 bytes/cell): every schedule
//! prefix ties on memory budget, so the equal-cost rule discards all but
//! the final `p(1) u(1) p(2) u(2) p(13)` — exactly Table 2, where PCA has
//! a single schedule (id 3).

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The PCA workload generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pca;

impl Workload for Pca {
    fn name(&self) -> &'static str {
        "PCA"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(6_000, 5_000, 100)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.06,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn sample_params(&self) -> WorkloadParams {
        // PCA's full inputs are already tiny; halving (instead of the
        // default 1/20th) keeps sample-run benefits above the hotspot
        // noise floor.
        WorkloadParams {
            examples: 3_000,
            features: 2_500,
            iterations: 3,
            partitions: 8,
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let f = p.f();
        let parts = p.partitions;
        let iters = p.iterations.max(1) as usize;

        // Parsing text into dense vectors is CPU-heavy (~15 % of the read
        // time), which is what makes D1 — not the raw source — the first
        // dataset worth caching.
        let parse = ComputeCost::new(0.002, 0.0, 1.07e-9);
        let to_dense = ComputeCost::new(0.002, 0.0, 1.4e-10);
        let normalize = ComputeCost::new(0.004, 0.0, 3.0e-9); // D13: the costly step
        let staging = ComputeCost::new(0.0005, 0.0, 1.0e-12); // D14: pass-through
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        let gram_scan = ComputeCost::new(0.004, 0.0, 4.0e-9); // per-iteration multiply
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("pca");
        let d0 = b.source(
            "input",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        let d1 = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[d0],
            p.examples,
            bytes(8.2 * ef),
            parse,
        );
        let d2 = b.narrow(
            "vectors",
            NarrowKind::Map,
            &[d1],
            p.examples,
            bytes(8.2 * ef),
            to_dense,
        );
        let v0 = b.narrow("numRows", NarrowKind::Map, &[d1], 1, 8, tiny); // 3

        // ids 4..=12: three pre-processing chains over D2 (used once each).
        let m1 = b.narrow(
            "colMeans",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 4
        let m2 = b.wide_with_partitions(
            "colMeansAgg",
            WideKind::TreeAggregate,
            &[m1],
            1,
            bytes(8.0 * f),
            1,
            agg,
        ); // 5
        let n1 = b.narrow(
            "colNorms",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 6
        let n2 = b.narrow(
            "colNormsSq",
            NarrowKind::Map,
            &[n1],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 7
        let n3 = b.wide_with_partitions(
            "colNormsAgg",
            WideKind::TreeAggregate,
            &[n2],
            1,
            bytes(8.0 * f),
            1,
            agg,
        ); // 8
        let s1 = b.narrow(
            "scaleSeed",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 9
        let s2 = b.narrow(
            "scaleSq",
            NarrowKind::Map,
            &[s1],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 10
        let s3 = b.narrow(
            "scaleNorm",
            NarrowKind::Map,
            &[s2],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 11
        let s4 = b.wide_with_partitions(
            "scaleAgg",
            WideKind::TreeAggregate,
            &[s3],
            1,
            bytes(8.0 * f),
            1,
            agg,
        ); // 12

        let d13 = b.narrow(
            "rowMatrix",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(8.2 * ef),
            normalize,
        ); // 13
        let d14 = b.narrow(
            "gramStage",
            NarrowKind::Map,
            &[d13],
            p.examples,
            bytes(8.5 * ef),
            staging,
        ); // 14

        b.job("count", v0);
        b.job("treeAggregate", m2);
        b.job("treeAggregate", n3);
        b.job("treeAggregate", s4);

        // 100 power iterations × 18 datasets each (one job per iteration).
        for i in 0..iters {
            let mut prev = b.narrow(
                format!("gram[{i}].mul0"),
                NarrowKind::Map,
                &[d14],
                p.examples,
                bytes(8.0 * f),
                gram_scan,
            );
            for k in 1..16 {
                prev = b.narrow(
                    format!("gram[{i}].mul{k}"),
                    NarrowKind::Map,
                    &[prev],
                    p.examples,
                    bytes(8.0 * f),
                    tiny,
                );
            }
            let reduced = b.wide_with_partitions(
                format!("gram[{i}].agg"),
                WideKind::TreeAggregate,
                &[prev],
                1,
                bytes(8.0 * f),
                1,
                agg,
            );
            let conv = b.narrow(
                format!("gram[{i}].converged"),
                NarrowKind::Map,
                &[reduced],
                1,
                8,
                tiny,
            );
            b.job("treeAggregate", conv);
        }

        // Eigenvector extraction: two jobs over 18 fresh datasets.
        for block in 0..2 {
            let mut prev = b.narrow(
                format!("eigen{block}.project"),
                NarrowKind::Map,
                &[d14],
                p.examples,
                bytes(8.0 * f),
                gram_scan,
            );
            for k in 1..8 {
                prev = b.narrow(
                    format!("eigen{block}.step{k}"),
                    NarrowKind::Map,
                    &[prev],
                    p.examples,
                    bytes(8.0 * f),
                    tiny,
                );
            }
            let out = b.wide_with_partitions(
                format!("eigen{block}.agg"),
                WideKind::TreeAggregate,
                &[prev],
                1,
                bytes(8.0 * f),
                1,
                agg,
            );
            b.job("collect", out);
        }

        b.default_schedule(Schedule::persist_all([d2]));
        b.build().expect("PCA plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{DatasetId, LineageAnalysis};

    #[test]
    fn table1_dataset_counts() {
        let app = Pca.build(&Pca.paper_params());
        assert_eq!(app.dataset_count(), 1833, "Table 1: PCA has 1833 datasets");
        let la = LineageAnalysis::new(&app);
        let inter = la.intermediates();
        assert_eq!(
            inter,
            vec![
                DatasetId(0),
                DatasetId(1),
                DatasetId(2),
                DatasetId(13),
                DatasetId(14)
            ],
            "Table 1: 5 intermediates"
        );
    }

    #[test]
    fn table1_input_size() {
        let app = Pca.build(&Pca.paper_params());
        let mb = app.input_bytes() as f64 / 1e6;
        assert!((mb - 229.2).abs() < 7.0, "input {mb} MB");
    }

    #[test]
    fn default_schedule_is_hibench() {
        let app = Pca.build(&Pca.paper_params());
        assert_eq!(app.default_schedule().notation(), "p(2)");
    }

    /// The equal-budget discard rule needs |D1| = |D2| = |D13| exactly.
    #[test]
    fn cacheable_datasets_tie_on_size() {
        let app = Pca.build(&Pca.paper_params());
        let b1 = app.dataset(DatasetId(1)).bytes;
        assert_eq!(app.dataset(DatasetId(2)).bytes, b1);
        assert_eq!(app.dataset(DatasetId(13)).bytes, b1);
        assert!(app.dataset(DatasetId(14)).bytes > b1, "staging is larger");
    }

    #[test]
    fn gram_stage_is_single_child_of_rowmatrix() {
        let app = Pca.build(&Pca.paper_params());
        let la = LineageAnalysis::new(&app);
        assert_eq!(la.children_of(DatasetId(13)), &[DatasetId(14)]);
        let n = la.computation_counts();
        assert_eq!(n[13], n[14]);
        assert_eq!(n[13] as u32, 100 + 2, "iterations + 2 eigen jobs");
    }
}
