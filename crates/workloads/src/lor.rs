//! Logistic Regression (LOR) — the paper's running example (Figure 4).
//!
//! Structure (dataset ids match the paper's notation):
//!
//! * `D0` — text input read from DFS;
//! * `D1` — parsed lines (≈ input-sized);
//! * `D2` — labeled points (≈ 0.60 × input, the dataset HiBench's
//!   developers cache);
//! * ids 3–10 — pre-training jobs: example count, feature check, data
//!   statistics, initial-weights computation, and the final-summary chain;
//! * `D11` — the per-iteration feature dataset (child of `D2`; HiBench
//!   also caches it);
//! * per iteration: margins → losses → gradient (treeAggregate) →
//!   convergence check; the last iteration collects the model directly.
//!
//! With 50 iterations the plan has exactly **210 datasets**, of which
//! exactly `{D0, D1, D2, D11}` are intermediate (computed more than once)
//! — Table 1's row. The HiBench default schedule is `p(2) p(11)`
//! (Table 2).

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The LOR workload generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogisticRegression;

impl Workload for LogisticRegression {
    fn name(&self) -> &'static str {
        "LOR"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(70_000, 50_000, 50)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.12,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn sample_params(&self) -> WorkloadParams {
        // A tenth of the paper scale: large enough that the per-byte costs
        // of D2 and D11 dominate the per-task fixed overheads, keeping the
        // measured ET ratios (≈ 2700 : 10 : 14 : 40 in §5.1) intact.
        WorkloadParams::auto(7_000, 5_000, 3)
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let e = p.e();
        let f = p.f();
        let parts = p.partitions;
        let iters = p.iterations.max(1) as usize;

        // Per-task compute-cost constants, calibrated so the measured
        // transformation times keep the §5.1 example's proportions
        // (ET0:ET1:ET2:ET11 ≈ 2700:10:14:40 at any scale).
        let parse = ComputeCost::new(0.000_5, 0.0, 2.9e-11);
        let to_points = ComputeCost::new(0.000_5, 0.0, 3.8e-11);
        let to_features = ComputeCost::new(0.000_5, 0.0, 2.4e-10);
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        let margin_scan = ComputeCost::new(0.004, 0.0, 2.5e-9);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("lor");
        let d0 = b.source(
            "input",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        let d1 = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[d0],
            p.examples,
            bytes(7.4485 * ef),
            parse,
        );
        let d2 = b.narrow(
            "points",
            NarrowKind::Map,
            &[d1],
            p.examples,
            bytes(4.4915 * ef),
            to_points,
        );

        // ids 3..=10: pre-training and final-summary chains (each used once).
        let v1 = b.narrow("numExamples", NarrowKind::Map, &[d1], 1, 8, tiny); // 3
        let v2 = b.narrow("numFeatures", NarrowKind::Map, &[d2], 1, 8, tiny); // 4
        let s1 = b.narrow(
            "colStats",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(16.0 * f),
            tiny,
        ); // 5
        let s2 = b.wide_with_partitions(
            "colStatsAgg",
            WideKind::TreeAggregate,
            &[s1],
            1,
            bytes(16.0 * f),
            1,
            agg,
        ); // 6
        let w1 = b.narrow(
            "weightSeed",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 7
        let w2 = b.wide_with_partitions(
            "weightInit",
            WideKind::TreeAggregate,
            &[w1],
            1,
            bytes(8.0 * f),
            1,
            agg,
        ); // 8
        let f1 = b.narrow(
            "summary",
            NarrowKind::Map,
            &[d1],
            p.examples,
            bytes(8.0 * e),
            tiny,
        ); // 9
        let f2 = b.wide_with_partitions(
            "summaryAgg",
            WideKind::TreeAggregate,
            &[f1],
            1,
            1024,
            1,
            agg,
        ); // 10

        let d11 = b.narrow(
            "features",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(4.4929 * ef),
            to_features,
        ); // 11

        // Pre-training jobs, in execution order.
        b.job("count", v1);
        b.job("first", v2);
        b.job("treeAggregate", s2);
        b.job("treeAggregate", w2);

        // Iterations: full 4-dataset chains except the last (2 datasets),
        // which collects the model — 4·(iters−1) + 2 datasets.
        for i in 0..iters.saturating_sub(1) {
            let margin = b.narrow(
                format!("margins[{i}]"),
                NarrowKind::Map,
                &[d11],
                p.examples,
                bytes(16.0 * e),
                margin_scan,
            );
            let loss = b.narrow(
                format!("loss[{i}]"),
                NarrowKind::Map,
                &[margin],
                p.examples,
                bytes(8.0 * e),
                tiny,
            );
            let grad = b.wide_with_partitions(
                format!("gradient[{i}]"),
                WideKind::TreeAggregate,
                &[loss],
                1,
                bytes(8.0 * f),
                1,
                agg,
            );
            let conv = b.narrow(
                format!("converged[{i}]"),
                NarrowKind::Map,
                &[grad],
                1,
                8,
                tiny,
            );
            b.job("treeAggregate", conv);
        }
        let margin = b.narrow(
            "margins[last]",
            NarrowKind::Map,
            &[d11],
            p.examples,
            bytes(16.0 * e),
            margin_scan,
        );
        let model = b.wide_with_partitions(
            "model",
            WideKind::TreeAggregate,
            &[margin],
            1,
            bytes(8.0 * f),
            1,
            agg,
        );
        b.job("collect", model);

        // Final summary job (runs last, keeps D1 alive beyond D11's uses —
        // the reason Juggler cannot unpersist D1 in the paper's example).
        b.job("collect", f2);

        b.default_schedule(Schedule::persist_all([d2, d11]));
        b.build().expect("LOR plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{DatasetId, LineageAnalysis};

    #[test]
    fn table1_dataset_counts() {
        let app = LogisticRegression.build(&LogisticRegression.paper_params());
        assert_eq!(app.dataset_count(), 210, "Table 1: LOR has 210 datasets");
        let la = LineageAnalysis::new(&app);
        let inter = la.intermediates();
        assert_eq!(
            inter,
            vec![DatasetId(0), DatasetId(1), DatasetId(2), DatasetId(11)],
            "Table 1: 4 intermediate datasets"
        );
    }

    #[test]
    fn table1_input_size() {
        let app = LogisticRegression.build(&LogisticRegression.paper_params());
        let gb = app.input_bytes() as f64 / 1e9;
        assert!((gb - 26.1).abs() < 0.3, "input {gb} GB");
    }

    #[test]
    fn default_schedule_is_hibench() {
        let app = LogisticRegression.build(&LogisticRegression.paper_params());
        assert_eq!(app.default_schedule().notation(), "p(2) p(11)");
    }

    #[test]
    fn computation_counts_scale_with_iterations() {
        let p = WorkloadParams::auto(2_000, 1_000, 5);
        let app = LogisticRegression.build(&p);
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        assert_eq!(n[1], 5 + 5, "n(D1) = iterations + 5 other jobs");
        assert_eq!(n[2], 5 + 3, "n(D2) = iterations + 3 pre-jobs");
        assert_eq!(n[11], 5, "n(D11) = iterations");
    }

    #[test]
    fn size_laws_follow_paper_families() {
        // |D2| must follow θ·e·f (the first §5.2 family) and be ~60 % of
        // the input, like 45.961/76.351 in the example.
        let p1 = WorkloadParams::auto(10_000, 5_000, 3);
        let p2 = WorkloadParams::auto(20_000, 10_000, 3);
        let a1 = LogisticRegression.build(&p1);
        let a2 = LogisticRegression.build(&p2);
        let ratio = a2.dataset(DatasetId(2)).bytes as f64 / a1.dataset(DatasetId(2)).bytes as f64;
        assert!((ratio - 4.0).abs() < 0.01, "θ·e·f scaling, got {ratio}");
        let frac = a1.dataset(DatasetId(2)).bytes as f64 / a1.dataset(DatasetId(1)).bytes as f64;
        assert!((frac - 0.602).abs() < 0.01, "points/parsed ratio {frac}");
    }

    #[test]
    fn d11_reads_d2_directly() {
        let app = LogisticRegression.build(&LogisticRegression.paper_params());
        assert_eq!(app.dataset(DatasetId(11)).parents, vec![DatasetId(2)]);
        assert_eq!(app.dataset(DatasetId(11)).name, "features");
    }
}
