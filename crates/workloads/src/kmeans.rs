//! K-Means — the §6.1 extension workload.
//!
//! Not part of the paper's evaluation set; it exists to exercise the §6.1
//! discussion: "some hyper-parameters, like the number of clusters in
//! K-MEANS, influence the number of iterations and the execution time of
//! each iteration. Similar to the number of iterations, these
//! hyper-parameters are to be considered when Juggler builds the
//! execution time model."
//!
//! Structure: input text → parsed points (`D1`, the cacheable hotspot) →
//! per iteration, a distance computation whose per-record cost is
//! proportional to `k` (every point is compared against `k` centers),
//! then a `k`-partition reduceByKey recomputing the centers.

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The K-Means workload generator. `clusters` is the §6.1 hyper-parameter.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Number of clusters `k` — scales the per-iteration distance work.
    pub clusters: u32,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans { clusters: 10 }
    }
}

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "KMEANS"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(50_000, 20_000, 20)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.12,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let e = p.e();
        let f = p.f();
        let k = f64::from(self.clusters.max(1));
        let parts = p.partitions;
        let iters = p.iterations.max(1) as usize;

        let parse = ComputeCost::new(0.002, 0.0, 1.5e-10);
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        // The distance scan costs k comparisons per feature cell: the
        // hyper-parameter shows up directly in the per-byte coefficient.
        let assign_scan = ComputeCost::new(0.004, 0.0, 4.0e-10 * k);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("kmeans");
        let d0 = b.source(
            "input",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        let d1 = b.narrow(
            "points",
            NarrowKind::Map,
            &[d0],
            p.examples,
            bytes(8.0 * ef),
            parse,
        );
        let seed = b.narrow(
            "initCenters",
            NarrowKind::Sample,
            &[d1],
            u64::from(self.clusters),
            bytes(8.0 * f * k),
            tiny,
        );
        b.job("takeSample", seed);

        for i in 0..iters {
            let assigned = b.narrow(
                format!("assigned[{i}]"),
                NarrowKind::Map,
                &[d1],
                p.examples,
                bytes(16.0 * e),
                assign_scan,
            );
            let centers = b.wide_with_partitions(
                format!("centers[{i}]"),
                WideKind::ReduceByKey,
                &[assigned],
                u64::from(self.clusters),
                bytes(8.0 * f * k),
                self.clusters.max(1),
                agg,
            );
            let moved = b.narrow(
                format!("movement[{i}]"),
                NarrowKind::Map,
                &[centers],
                1,
                8,
                tiny,
            );
            b.job("collect", moved);
        }
        let cost_view = b.narrow("wssse", NarrowKind::Map, &[d1], 1, 8, tiny);
        b.job("collect", cost_view);

        b.default_schedule(Schedule::persist_all([d1]));
        b.build().expect("K-Means plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions};
    use dagflow::{DatasetId, LineageAnalysis};

    #[test]
    fn structure_is_iterative_over_points() {
        let w = KMeans::default();
        let app = w.build(&WorkloadParams::auto(2_000, 1_000, 5));
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        assert_eq!(n[1] as u32, 1 + 5 + 1, "seed job + iterations + wssse");
        assert_eq!(la.intermediates(), vec![DatasetId(0), DatasetId(1)]);
    }

    /// The §6.1 point: the hyper-parameter changes per-iteration time, so
    /// runs with more clusters take measurably longer at identical (e, f).
    #[test]
    fn more_clusters_cost_more_time() {
        let params = WorkloadParams::auto(10_000, 4_000, 4);
        let run = |k: u32| {
            let w = KMeans { clusters: k };
            let app = w.build(&params);
            let mut sim = w.sim_params();
            sim.noise = NoiseParams::NONE;
            sim.cluster_jitter_s = 0.0;
            Engine::new(
                &app,
                ClusterConfig::new(2, MachineSpec::private_cluster()),
                sim,
            )
            .run(app.default_schedule(), RunOptions::default())
            .unwrap()
            .total_time_s
        };
        let t5 = run(5);
        let t40 = run(40);
        // Compare net of the constant application startup.
        let startup = KMeans::default().sim_params().app_startup_s;
        assert!(
            t40 - startup > 1.8 * (t5 - startup),
            "k=40 took {t40}, k=5 took {t5}"
        );
    }

    #[test]
    fn validates_under_the_workload_harness() {
        let issues = crate::validate::validate_workload(&KMeans::default());
        assert!(issues.is_empty(), "{issues:?}");
    }
}
