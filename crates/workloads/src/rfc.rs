//! Random Forest Classifier (RFC) — the shallow-iteration application
//! (3 trees) with the richest schedule family of Table 2.
//!
//! Structure (ids match Table 2's notation):
//!
//! * `D0` input text → `D1` parsed → on one branch `D2` (the test split,
//!   reused by the two post-training evaluation jobs), on the other
//!   `D3` → `D4` → `D5` (tree-point conversion; `D5` is the dataset the
//!   bagging stage feeds from) → `D11` bagging preparation → `D12` the
//!   bagged input HiBench's developers cache;
//! * ids 6–10: a five-step statistics chain over `D5` (one job);
//! * a `count` action directly on `D12`, then 3 trees × 2 jobs
//!   (best-split search, model update);
//! * two evaluation jobs over the test split `D2`.
//!
//! Totals: **26 datasets, 8 intermediates**; default `p(12)`; Juggler's
//! schedules `p(11)`, `p(1) p(12)` and `p(1) p(5) u(5) p(12)` — the
//! third emerges through two re-evaluation rounds (D11 → D1 swap, then
//! D12 → D5 swap), exercising every branch of Algorithm 1.

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The RFC workload generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomForest;

impl Workload for RandomForest {
    fn name(&self) -> &'static str {
        "RFC"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(100_000, 40_000, 3)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.20,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let e = p.e();
        let f = p.f();
        let parts = p.partitions;
        let trees = p.iterations.clamp(1, 64) as usize;

        // Cost constants; see DESIGN.md for the BCR ordering analysis that
        // pins these ratios (relative to the input read time c1).
        let parse = ComputeCost::new(0.002, 0.0, 1.4e-10); // ET1 ≈ 0.02 c1
        let test_split = ComputeCost::new(0.0005, 0.0, 1.0e-11); // ET2 ≈ 0.002 c1
        let train_raw = ComputeCost::new(0.002, 0.0, 1.07e-10); // ET3 ≈ 0.015 c1
        let train_meta = ComputeCost::new(0.002, 0.0, 1.34e-10); // ET4 ≈ 0.015 c1
        let tree_points = ComputeCost::new(0.002, 0.0, 5.4e-10); // ET5 ≈ 0.06 c1
        let bag_prep = ComputeCost::new(0.002, 0.0, 1.8e-10); // ET11 ≈ 0.02 c1
        let bagging = ComputeCost::new(0.004, 0.0, 2.47e-9); // ET12 ≈ 0.2 c1
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        let node_scan = ComputeCost::new(0.004, 0.0, 2.0e-9);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("rfc");
        let d0 = b.source(
            "input",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        let d1 = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[d0],
            p.examples,
            bytes(7.30 * ef),
            parse,
        );
        let d2 = b.narrow(
            "testSplit",
            NarrowKind::Map,
            &[d1],
            p.examples / 3,
            bytes(2.60 * ef),
            test_split,
        );
        let d3 = b.narrow(
            "trainRaw",
            NarrowKind::Map,
            &[d1],
            p.examples,
            bytes(5.96 * ef),
            train_raw,
        );
        let d4 = b.narrow(
            "trainMeta",
            NarrowKind::Map,
            &[d3],
            p.examples,
            bytes(5.90 * ef),
            train_meta,
        );
        let d5 = b.narrow(
            "treePoints",
            NarrowKind::Map,
            &[d4],
            p.examples,
            bytes(5.90 * ef),
            tree_points,
        );

        // ids 6..=10: the five-step treePoints statistics chain (one job).
        let mut stat = b.narrow(
            "tpStats0",
            NarrowKind::Map,
            &[d5],
            p.examples,
            bytes(8.0 * f),
            tiny,
        ); // 6
        for k in 1..4 {
            stat = b.narrow(
                format!("tpStats{k}"),
                NarrowKind::Map,
                &[stat],
                p.examples,
                bytes(8.0 * f),
                tiny,
            ); // 7..9
        }
        let stat_agg = b.wide_with_partitions(
            "tpStatsAgg",
            WideKind::TreeAggregate,
            &[stat],
            1,
            bytes(8.0 * f),
            1,
            agg,
        ); // 10

        let d11 = b.narrow(
            "baggedPrep",
            NarrowKind::Map,
            &[d5],
            p.examples,
            bytes(4.30 * ef),
            bag_prep,
        ); // 11
        let d12 = b.narrow(
            "baggedInput",
            NarrowKind::Map,
            &[d11],
            p.examples,
            bytes(5.50 * ef),
            bagging,
        ); // 12

        b.job("treeAggregate", stat_agg);
        b.job("count", d12); // direct action on the bagged input

        // Trees: the first runs a 4-dataset pipeline, the rest 3 each.
        for t in 0..trees {
            let stats = b.narrow(
                format!("tree{t}.nodeStats"),
                NarrowKind::Map,
                &[d12],
                p.examples,
                bytes(8.0 * f),
                node_scan,
            );
            let splits = b.wide_with_partitions(
                format!("tree{t}.bestSplits"),
                WideKind::TreeAggregate,
                &[stats],
                1,
                bytes(8.0 * f),
                1,
                agg,
            );
            b.job("treeAggregate", splits);
            if t == 0 {
                let upd = b.narrow(
                    format!("tree{t}.update"),
                    NarrowKind::Map,
                    &[d12],
                    p.examples,
                    bytes(8.0 * e),
                    node_scan,
                );
                let model = b.wide_with_partitions(
                    format!("tree{t}.model"),
                    WideKind::TreeAggregate,
                    &[upd],
                    1,
                    bytes(8.0 * f),
                    1,
                    agg,
                );
                b.job("treeAggregate", model);
            } else {
                let model = b.wide_with_partitions(
                    format!("tree{t}.model"),
                    WideKind::TreeAggregate,
                    &[d12],
                    1,
                    bytes(8.0 * f),
                    1,
                    agg,
                );
                b.job("treeAggregate", model);
            }
        }

        // Evaluation over the test split: two jobs, so D2 is intermediate.
        let preds = b.narrow(
            "predictions",
            NarrowKind::Map,
            &[d2],
            p.examples / 3,
            bytes(8.0 * e),
            tiny,
        );
        let pred_view = b.narrow("predReport", NarrowKind::Map, &[preds], 1, 8, tiny);
        b.job("collect", pred_view);
        let accuracy = b.narrow("accuracy", NarrowKind::Map, &[d2], 1, 8, tiny);
        b.job("collect", accuracy);

        b.default_schedule(Schedule::persist_all([d12]));
        b.build().expect("RFC plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{DatasetId, LineageAnalysis};

    #[test]
    fn table1_dataset_counts() {
        let app = RandomForest.build(&RandomForest.paper_params());
        assert_eq!(app.dataset_count(), 26, "Table 1: RFC has 26 datasets");
        let la = LineageAnalysis::new(&app);
        let inter = la.intermediates();
        let expect: Vec<DatasetId> = [0u32, 1, 2, 3, 4, 5, 11, 12].map(DatasetId).to_vec();
        assert_eq!(inter, expect, "Table 1: 8 intermediates");
    }

    #[test]
    fn table1_input_size() {
        let app = RandomForest.build(&RandomForest.paper_params());
        let gb = app.input_bytes() as f64 / 1e9;
        assert!((gb - 29.8).abs() < 0.3, "input {gb} GB");
    }

    #[test]
    fn default_schedule_is_hibench() {
        let app = RandomForest.build(&RandomForest.paper_params());
        assert_eq!(app.default_schedule().notation(), "p(12)");
    }

    #[test]
    fn bagged_input_reused_by_tree_jobs_and_count() {
        let app = RandomForest.build(&RandomForest.paper_params());
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        assert_eq!(n[12], 7, "count action + 3 trees × 2 jobs");
        assert_eq!(n[11], 7, "baggedPrep rides along");
        assert_eq!(n[2], 2, "test split reused by both evaluation jobs");
        assert_eq!(n[5], 8, "stats job + everything through bagging");
    }

    #[test]
    fn bagged_prep_is_single_child_parent_of_bagged() {
        let app = RandomForest.build(&RandomForest.paper_params());
        let la = LineageAnalysis::new(&app);
        assert_eq!(la.children_of(DatasetId(11)), &[DatasetId(12)]);
    }
}
