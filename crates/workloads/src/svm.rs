//! Support Vector Machine (SVM) — the application behind the paper's
//! Figure 2 (areas A/B/C).
//!
//! Structure (ids match Table 2's notation):
//!
//! * `D0` input text → `D1` parsed → `D2` labeled points (the
//!   developer-cached dataset; 4.462 bytes/cell reproduces the paper's
//!   35.7 GB cached dataset at Figure 2's 59.5 GB input scale) →
//!   `D3`–`D5` (validation / normalization maps) → `D6` training set that
//!   every iteration reads;
//! * `D7`/`D8` — a tiny metadata side input and its parsed form, reused
//!   by two configuration jobs (the remaining two intermediates of
//!   Table 1's nine; their 1 kB recompute chains never become hotspots);
//! * 100 iterations × 5 datasets (margins → hinge → gradient → step →
//!   convergence);
//! * post-training: an AUC pipeline, a metrics pipeline, and a
//!   training-data summary job that reads `D1` directly — the use that
//!   keeps `p(1) p(6)` free of an unpersist (Table 2).
//!
//! Totals: **524 datasets, 9 intermediates** (Table 1); HiBench default
//! `p(2)`; Juggler's schedules `p(2)` and `p(1) p(6)`.

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The SVM workload generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupportVectorMachine;

impl Workload for SupportVectorMachine {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(40_000, 80_000, 100)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            // §2.2: SVM uses ~20 % of M for execution, leaving 79.8 % (the
            // 5.6 GB/machine of the Figure 2 analysis) for caching.
            exec_mem_per_task_factor: 0.202,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let e = p.e();
        let f = p.f();
        let parts = p.partitions;
        let iters = p.iterations.max(1) as usize;

        // Cost constants; the chain D3–D6 must stay ≪ the input read so
        // Juggler's second schedule starts from D1 rather than extending
        // D2 (see the BCR analysis in DESIGN.md).
        let parse = ComputeCost::new(0.002, 0.0, 4.0e-8); // text-to-vector parse at ~25 MB/s: recomputing an evicted partition is ~30x a cached read
        let to_points = ComputeCost::new(0.000_5, 0.0, 3.8e-11);
        let mid_chain = ComputeCost::new(0.001, 0.0, 1.5e-11);
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        let margin_scan = ComputeCost::new(0.004, 0.0, 2.5e-9);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("svm");
        let d0 = b.source(
            "input",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        let d1 = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[d0],
            p.examples,
            bytes(7.4485 * ef),
            parse,
        );
        let d2 = b.narrow(
            "points",
            NarrowKind::Map,
            &[d1],
            p.examples,
            bytes(4.462 * ef),
            to_points,
        );
        let d3 = b.narrow(
            "validated",
            NarrowKind::Map,
            &[d2],
            p.examples,
            bytes(4.465 * ef),
            mid_chain,
        );
        let d4 = b.narrow(
            "normalized",
            NarrowKind::Map,
            &[d3],
            p.examples,
            bytes(4.468 * ef),
            mid_chain,
        );
        let d5 = b.narrow(
            "shifted",
            NarrowKind::Map,
            &[d4],
            p.examples,
            bytes(4.471 * ef),
            mid_chain,
        );
        let d6 = b.narrow(
            "training",
            NarrowKind::Map,
            &[d5],
            p.examples,
            bytes(4.476 * ef),
            mid_chain,
        );
        // A tiny metadata side input whose parsed form two configuration
        // jobs reuse — the remaining two intermediates of Table 1's nine.
        // Their recompute chains are a 1 kB read, so they never become
        // hotspots.
        let meta = b.source("paramsFile", SourceFormat::DistributedFs, 32, 1024, 1); // 7
        let meta_parsed = b.narrow("paramsParsed", NarrowKind::Map, &[meta], 32, 1024, tiny); // 8
        let v1 = b.narrow("numExamples", NarrowKind::Map, &[d1], 1, 8, tiny); // 9
        let v2 = b.narrow("numFeatures", NarrowKind::Map, &[d2], 1, 8, tiny); // 10
        let mv1 = b.narrow("regParam", NarrowKind::Map, &[meta_parsed], 1, 8, tiny); // 11
        let mv2 = b.narrow("stepConfig", NarrowKind::Map, &[meta_parsed], 1, 8, tiny); // 12

        b.job("collect", mv1);
        b.job("collect", mv2);
        b.job("count", v1);
        b.job("first", v2);

        // 100 iterations × 5 datasets.
        for i in 0..iters {
            let margin = b.narrow(
                format!("margins[{i}]"),
                NarrowKind::Map,
                &[d6],
                p.examples,
                bytes(16.0 * e),
                margin_scan,
            );
            let hinge = b.narrow(
                format!("hinge[{i}]"),
                NarrowKind::Map,
                &[margin],
                p.examples,
                bytes(8.0 * e),
                tiny,
            );
            let grad = b.wide_with_partitions(
                format!("gradient[{i}]"),
                WideKind::TreeAggregate,
                &[hinge],
                1,
                bytes(8.0 * f),
                1,
                agg,
            );
            let step = b.narrow(
                format!("step[{i}]"),
                NarrowKind::Map,
                &[grad],
                1,
                bytes(8.0 * f),
                tiny,
            );
            let conv = b.narrow(
                format!("converged[{i}]"),
                NarrowKind::Map,
                &[step],
                1,
                8,
                tiny,
            );
            b.job("treeAggregate", conv);
        }

        // Post-training job A: AUC pipeline straight off the training set
        // (5 datasets, used once).
        let scores = b.narrow(
            "scoreAndLabels",
            NarrowKind::Map,
            &[d6],
            p.examples,
            bytes(16.0 * e),
            tiny,
        );
        let sorted = b.wide(
            "scoresSorted",
            WideKind::SortByKey,
            &[scores],
            p.examples,
            bytes(16.0 * e),
            tiny,
        );
        let pos = b.narrow(
            "positives",
            NarrowKind::Filter,
            &[sorted],
            p.examples / 2,
            bytes(8.0 * e),
            tiny,
        );
        let sums =
            b.wide_with_partitions("rankSums", WideKind::TreeAggregate, &[pos], 1, 1024, 1, agg);
        let auc_view = b.narrow("aucReport", NarrowKind::Map, &[sums], 1, 8, tiny);
        b.job("collect", auc_view);

        // Post-training job B: confusion/metrics pipeline (4 datasets, own
        // lineage — nothing shared with job A).
        let pairs = b.narrow(
            "outcomePairs",
            NarrowKind::Map,
            &[d6],
            p.examples,
            bytes(8.0 * e),
            tiny,
        );
        let counts = b.wide_with_partitions(
            "outcomeCounts",
            WideKind::ReduceByKey,
            &[pairs],
            4,
            64,
            1,
            agg,
        );
        let metrics = b.narrow("metrics", NarrowKind::Map, &[counts], 4, 64, tiny);
        let metrics_view = b.narrow("metricsReport", NarrowKind::Map, &[metrics], 1, 8, tiny);
        b.job("collect", metrics_view);

        // Post-training job C: training-data summary straight off D1.
        let sum1 = b.narrow(
            "dataSummary",
            NarrowKind::Map,
            &[d1],
            p.examples,
            bytes(8.0 * e),
            tiny,
        );
        let sum2 = b.wide_with_partitions(
            "dataSummaryAgg",
            WideKind::TreeAggregate,
            &[sum1],
            1,
            1024,
            1,
            agg,
        );
        b.job("collect", sum2);

        b.default_schedule(Schedule::persist_all([d2]));
        b.build().expect("SVM plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{DatasetId, LineageAnalysis};

    #[test]
    fn table1_dataset_counts() {
        let app = SupportVectorMachine.build(&SupportVectorMachine.paper_params());
        assert_eq!(app.dataset_count(), 524, "Table 1: SVM has 524 datasets");
        let la = LineageAnalysis::new(&app);
        let inter = la.intermediates();
        let expect: Vec<DatasetId> = (0..9).map(DatasetId).collect();
        assert_eq!(inter, expect, "Table 1: 9 intermediate datasets");
    }

    #[test]
    fn table1_input_size() {
        let app = SupportVectorMachine.build(&SupportVectorMachine.paper_params());
        let gb = app.input_bytes() as f64 / 1e9;
        assert!((gb - 23.8).abs() < 0.3, "input {gb} GB");
    }

    #[test]
    fn default_schedule_is_hibench() {
        let app = SupportVectorMachine.build(&SupportVectorMachine.paper_params());
        assert_eq!(app.default_schedule().notation(), "p(2)");
    }

    /// Figure 2's setting: at a 59.5 GB input (e·f = 8×10⁹ cells), the
    /// developer-cached dataset D2 is 35.7 GB.
    #[test]
    fn figure2_cached_dataset_size() {
        let p = WorkloadParams::auto(100_000, 80_000, 100);
        let app = SupportVectorMachine.build(&p);
        let input_gb = app.input_bytes() as f64 / 1e9;
        assert!((input_gb - 59.6).abs() < 0.5, "input {input_gb}");
        let cached_gb = app.dataset(DatasetId(2)).bytes as f64 / 1e9;
        assert!((cached_gb - 35.7).abs() < 0.2, "cached {cached_gb}");
    }

    #[test]
    fn computation_counts_match_structure() {
        let p = WorkloadParams::auto(2_000, 1_000, 3);
        let app = SupportVectorMachine.build(&p);
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        assert_eq!(n[7], 2, "metadata side input read by both config jobs");
        assert_eq!(n[8], 2);
        assert_eq!(
            n[1] as u32,
            3 + 5,
            "n(D1) = iters + count + eval×2 + summary"
        );
        assert_eq!(n[6] as u32, 3 + 2, "n(D6) = iters + eval×2");
    }
}
