//! Micro-batch stream — a long sequence of small per-batch jobs against a
//! shared lookup state.
//!
//! Not part of the paper's evaluation set; it exists (with
//! [`crate::sqljoin::SqlStarJoin`]) to exercise Juggler on DAG shapes
//! beyond iterative ML: Structured-Streaming-style micro-batching, where
//! every batch parses a fresh slice of events and joins it against the
//! same state/lookup table. The state table is tiny but re-pulled once
//! per batch, which makes it the highest-BCR hotspot by a wide margin —
//! the streaming analogue of caching a broadcast dimension table.
//!
//! Structure: a state source → parsed `state` (the cacheable hotspot);
//! per batch, an event source → parsed events → 2-parent `Join` with the
//! state → `reduceByKey` window aggregate → tiny collect job.
//! `iterations` is the number of micro-batches; each batch carries
//! `1/iterations` of the total event volume.

use cluster_sim::{NoiseParams, SimParams};
use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind};

use crate::common::{bytes, WorkloadParams};
use crate::Workload;

/// The micro-batch streaming workload generator. `examples` is the total
/// event count across the run, `features` the state-table cardinality,
/// `iterations` the number of micro-batches.
#[derive(Debug, Clone, Copy, Default)]
pub struct MicroBatchStream;

impl Workload for MicroBatchStream {
    fn name(&self) -> &'static str {
        "STREAM"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(40_000, 10_000, 12)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.12,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let f = p.f();
        let parts = p.partitions;
        let batches = p.iterations.max(1) as usize;
        let per_batch = 1.0 / batches as f64;

        let parse = ComputeCost::new(0.002, 0.0, 1.5e-10);
        let tiny = ComputeCost::new(0.001, 0.0, 1.0e-11);
        let join = ComputeCost::new(0.004, 0.0, 6.0e-10);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("stream");
        let state_src = b.source(
            "stateSource",
            SourceFormat::DistributedFs,
            p.features,
            bytes(64.0 * f),
            8,
        );
        let state = b.narrow(
            "state",
            NarrowKind::Map,
            &[state_src],
            p.features,
            bytes(48.0 * f),
            parse,
        );
        for i in 0..batches {
            let events = b.source(
                format!("events[{i}]"),
                SourceFormat::DistributedFs,
                ((p.examples as f64 * per_batch) as u64).max(1),
                bytes(p.input_bytes() as f64 * per_batch),
                parts,
            );
            let parsed = b.narrow(
                format!("parsed[{i}]"),
                NarrowKind::Map,
                &[events],
                ((p.examples as f64 * per_batch) as u64).max(1),
                bytes(8.0 * ef * per_batch),
                parse,
            );
            let enriched = b.wide(
                format!("enriched[{i}]"),
                WideKind::Join,
                &[parsed, state],
                ((p.examples as f64 * per_batch) as u64).max(1),
                bytes(10.0 * ef * per_batch),
                join,
            );
            let window = b.wide(
                format!("window[{i}]"),
                WideKind::ReduceByKey,
                &[enriched],
                p.features,
                bytes(16.0 * f),
                agg,
            );
            let out = b.narrow(format!("out[{i}]"), NarrowKind::Map, &[window], 1, 8, tiny);
            b.job("collect", out);
        }

        // The developer default caches the lookup state — the streaming
        // counterpart of persisting a broadcast dimension table.
        b.default_schedule(Schedule::persist_all([state]));
        b.build()
            .expect("micro-batch stream plan is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{DatasetId, LineageAnalysis};

    const STATE: DatasetId = DatasetId(1);

    #[test]
    fn structure_is_one_job_per_batch_over_shared_state() {
        let app = MicroBatchStream.build(&WorkloadParams::auto(4_000, 1_000, 5));
        assert_eq!(app.jobs().len(), 5, "one collect job per micro-batch");
        // Every batch's join re-pulls the same state table.
        let la = LineageAnalysis::new(&app);
        assert_eq!(la.computation_counts()[STATE.index()], 5);
        // Only the state chain is reused across jobs; the per-batch
        // datasets are batch-local.
        assert_eq!(la.intermediates(), vec![DatasetId(0), STATE]);
    }

    #[test]
    fn batches_join_events_with_state() {
        let app = MicroBatchStream.build(&WorkloadParams::auto(4_000, 1_000, 3));
        let enriched = app.dataset(DatasetId(4));
        assert_eq!(enriched.name, "enriched[0]");
        assert_eq!(enriched.parents, vec![DatasetId(3), STATE]);
    }

    #[test]
    fn validates_under_the_workload_harness() {
        let issues = crate::validate::validate_workload(&MicroBatchStream);
        assert!(issues.is_empty(), "{issues:?}");
    }
}
