//! Validation harness for `Workload` implementations — the checks a
//! custom workload (like `examples/custom_workload.rs`) must satisfy for
//! Juggler's calibration stages to be applicable.

use dagflow::LineageAnalysis;

use crate::{Workload, WorkloadParams};

/// A violated workload invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadIssue {
    /// The plan failed structural validation at some parameter point.
    InvalidPlan {
        /// Human-readable description.
        detail: String,
    },
    /// A dataset's size law is not monotone in the application parameters
    /// (the §5.2 model families are all monotone; a non-monotone size
    /// cannot be fit by them).
    NonMonotoneSize {
        /// The dataset's name.
        dataset: String,
    },
    /// There is nothing to cache anywhere (no intermediate datasets at
    /// paper scale) — Juggler would produce an empty schedule family.
    NoIntermediates,
    /// The sample parameters are not actually smaller than the paper
    /// parameters, defeating the cheap-sample-run design of §5.1.
    SampleNotSmall,
    /// The intermediate-dataset *set* changes between sample and paper
    /// scale: hotspot decisions made on the sample would not transfer.
    UnstableIntermediates,
}

impl std::fmt::Display for WorkloadIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadIssue::InvalidPlan { detail } => write!(f, "invalid plan: {detail}"),
            WorkloadIssue::NonMonotoneSize { dataset } => {
                write!(f, "dataset `{dataset}` has a non-monotone size law")
            }
            WorkloadIssue::NoIntermediates => write!(f, "no intermediate datasets to cache"),
            WorkloadIssue::SampleNotSmall => {
                write!(f, "sample parameters are not smaller than paper parameters")
            }
            WorkloadIssue::UnstableIntermediates => {
                write!(
                    f,
                    "intermediate-dataset set differs between sample and paper scale"
                )
            }
        }
    }
}

/// Checks a workload against the invariants Juggler's stages rely on.
/// Returns all violations (empty = good to train).
#[must_use]
pub fn validate_workload(w: &dyn Workload) -> Vec<WorkloadIssue> {
    let mut issues = Vec::new();
    let paper = w.paper_params();
    let sample = w.sample_params();

    if sample.input_bytes() >= paper.input_bytes() {
        issues.push(WorkloadIssue::SampleNotSmall);
    }

    // Build at several scales; collect intermediate id-sets and sizes.
    let scales = [
        sample,
        WorkloadParams::auto(paper.examples / 2, paper.features / 2, sample.iterations),
        paper,
    ];
    let mut intermediate_names: Vec<Vec<String>> = Vec::new();
    let mut sizes: Vec<Vec<(String, u64)>> = Vec::new();
    for p in &scales {
        let app = w.build(p);
        if let Err(e) = app.validate() {
            issues.push(WorkloadIssue::InvalidPlan {
                detail: e.to_string(),
            });
            return issues;
        }
        let la = LineageAnalysis::new(&app);
        let inter = la.intermediates();
        intermediate_names.push(inter.iter().map(|&d| app.dataset(d).name.clone()).collect());
        sizes.push(
            inter
                .iter()
                .map(|&d| (app.dataset(d).name.clone(), app.dataset(d).bytes))
                .collect(),
        );
    }

    if intermediate_names.last().is_some_and(Vec::is_empty) {
        issues.push(WorkloadIssue::NoIntermediates);
    }
    if intermediate_names.windows(2).any(|w| w[0] != w[1]) {
        issues.push(WorkloadIssue::UnstableIntermediates);
    }

    // Monotonicity: every intermediate's size is non-decreasing in scale.
    for (name, _) in sizes.last().cloned().unwrap_or_default() {
        let series: Vec<u64> = sizes
            .iter()
            .filter_map(|s| s.iter().find(|(n, _)| *n == name).map(|(_, b)| *b))
            .collect();
        if series.windows(2).any(|w| w[1] < w[0]) {
            issues.push(WorkloadIssue::NonMonotoneSize { dataset: name });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_workloads;

    /// Every shipped workload passes its own validation.
    #[test]
    fn shipped_workloads_are_valid() {
        for w in all_workloads() {
            let issues = validate_workload(w.as_ref());
            assert!(issues.is_empty(), "{}: {issues:?}", w.name());
        }
    }

    /// A deliberately broken workload (sample = paper scale, no reuse) is
    /// flagged.
    #[test]
    fn degenerate_workload_is_flagged() {
        use cluster_sim::SimParams;
        use dagflow::{AppBuilder, Application, ComputeCost, NarrowKind, SourceFormat};

        struct OneShot;
        impl Workload for OneShot {
            fn name(&self) -> &'static str {
                "ONESHOT"
            }
            fn paper_params(&self) -> WorkloadParams {
                WorkloadParams::auto(1_000, 1_000, 1)
            }
            fn sample_params(&self) -> WorkloadParams {
                self.paper_params() // not smaller!
            }
            fn sim_params(&self) -> SimParams {
                SimParams::default()
            }
            fn build(&self, p: &WorkloadParams) -> Application {
                let mut b = AppBuilder::new("oneshot");
                let s = b.source(
                    "in",
                    SourceFormat::DistributedFs,
                    p.examples,
                    p.input_bytes(),
                    p.partitions,
                );
                let m = b.narrow(
                    "m",
                    NarrowKind::Map,
                    &[s],
                    p.examples,
                    p.input_bytes(),
                    ComputeCost::FREE,
                );
                b.job("count", m);
                b.build().unwrap()
            }
        }
        let issues = validate_workload(&OneShot);
        assert!(
            issues.contains(&WorkloadIssue::SampleNotSmall),
            "{issues:?}"
        );
        assert!(
            issues.contains(&WorkloadIssue::NoIntermediates),
            "{issues:?}"
        );
    }
}
