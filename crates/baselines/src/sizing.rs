//! Cluster-sizing baselines (paper §7.5): MemTune, RelM and SystemML,
//! adapted — as the evaluation adapts them — "to tune the number of
//! machines instead of the memory fraction".

use serde::{Deserialize, Serialize};

use cluster_sim::MachineSpec;

/// What a sizing policy may look at: the analyzed memory footprint and
/// data sizes of an actual run with the schedule under consideration
/// ("we analyze the memory footprint and data sizes of actual runs … and
/// select a cluster configuration that satisfies each related component").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingInputs {
    /// Bytes of the datasets the schedule caches.
    pub cached_bytes: u64,
    /// Total input bytes the application reads.
    pub input_bytes: u64,
    /// Bytes of the job outputs (models, reports).
    pub output_bytes: u64,
    /// Observed peak execution memory per machine.
    pub peak_exec_per_machine: u64,
}

/// A cluster-sizing policy.
pub trait SizingBaseline {
    /// Display name as used in Figure 15 / Table 4.
    fn name(&self) -> &'static str;
    /// Recommended machine count, clamped to `1..=max_machines` by the
    /// caller.
    fn machines(&self, inputs: &SizingInputs, spec: &MachineSpec) -> u32;
}

fn ceil_div(bytes: f64, per_machine: f64) -> u32 {
    if per_machine <= 0.0 {
        return u32::MAX;
    }
    (bytes / per_machine).ceil().max(1.0) as u32
}

/// MemTune [Xu et al., IPDPS'16]: prioritizes execution memory over
/// caching to minimize GC overhead — it plans for caching only what is
/// left after reserving a *doubled* execution budget. Depending on the
/// workload this over-allocates (small execution footprints) or leads to
/// cache eviction (it tracks the *current* execution footprint and misses
/// transient growth).
#[derive(Debug, Clone, Copy, Default)]
pub struct MemTune;

impl SizingBaseline for MemTune {
    fn name(&self) -> &'static str {
        "MemTune"
    }
    fn machines(&self, inputs: &SizingInputs, spec: &MachineSpec) -> u32 {
        let m = spec.unified_memory() as f64;
        let reserved = 2.0 * inputs.peak_exec_per_machine as f64;
        // Execution-priority: caching gets what remains of M, but never
        // less than a quarter (MemTune keeps tuning rather than starving
        // storage completely).
        let for_cache = (m - reserved).max(0.25 * m);
        ceil_div(inputs.cached_bytes as f64, for_cache)
    }
}

/// RelM [Kunjir & Babu, SIGMOD'20]: guarantees error-free runs through
/// safety factors — cached data plus the full concurrent execution
/// footprint, all multiplied by a safety factor and a GC headroom. Always
/// the most conservative, hence the highest machine counts of Figure 15.
#[derive(Debug, Clone, Copy)]
pub struct RelM {
    /// Multiplicative safety factor on every memory estimate.
    pub safety_factor: f64,
    /// Extra fraction of M kept free to bound GC overhead.
    pub gc_headroom: f64,
}

impl Default for RelM {
    fn default() -> Self {
        RelM {
            safety_factor: 2.0,
            gc_headroom: 0.25,
        }
    }
}

impl SizingBaseline for RelM {
    fn name(&self) -> &'static str {
        "RelM"
    }
    fn machines(&self, inputs: &SizingInputs, spec: &MachineSpec) -> u32 {
        let m = spec.unified_memory() as f64;
        let usable = m * (1.0 - self.gc_headroom);
        let demand = self.safety_factor
            * (inputs.cached_bytes as f64
                + f64::from(spec.cores) * inputs.peak_exec_per_machine as f64);
        ceil_div(demand, usable)
    }
}

/// SystemML [Boehm et al., VLDB'16]: worst-case memory estimates — all
/// input, intermediate (cached) and output data must fit in memory
/// simultaneously.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemML;

impl SizingBaseline for SystemML {
    fn name(&self) -> &'static str {
        "SystemML"
    }
    fn machines(&self, inputs: &SizingInputs, spec: &MachineSpec) -> u32 {
        let m = spec.unified_memory() as f64;
        let demand =
            inputs.cached_bytes as f64 + inputs.input_bytes as f64 + inputs.output_bytes as f64;
        ceil_div(demand, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec::private_cluster() // M ≈ 9.42 GB
    }

    fn inputs() -> SizingInputs {
        SizingInputs {
            cached_bytes: 15_700_000_000, // LOR schedule #1 at paper scale
            input_bytes: 26_100_000_000,
            output_bytes: 500_000_000,
            peak_exec_per_machine: 500_000_000,
        }
    }

    /// The §7.5 example: Juggler recommends 3 machines for LOR schedule
    /// #1; SystemML needs 4+ to fit input and output besides the cache.
    #[test]
    fn systemml_overallocates_to_fit_everything() {
        let m = SystemML.machines(&inputs(), &spec());
        assert!(m >= 4, "SystemML recommended {m}");
        // Juggler's own estimate for comparison: ceil(15.7 / (0.94·9.42)).
        let juggler = (15.7e9_f64 / (0.94 * 9.42e9)).ceil() as u32;
        assert!(m > juggler);
    }

    #[test]
    fn relm_is_most_conservative() {
        let i = inputs();
        let s = spec();
        let relm = RelM::default().machines(&i, &s);
        let memtune = MemTune.machines(&i, &s);
        let sysml = SystemML.machines(&i, &s);
        assert!(relm >= memtune, "RelM {relm} vs MemTune {memtune}");
        assert!(relm >= sysml, "RelM {relm} vs SystemML {sysml}");
    }

    #[test]
    fn memtune_reserves_execution_memory() {
        let s = spec();
        let tight = SizingInputs {
            peak_exec_per_machine: 3_000_000_000, // heavy execution
            ..inputs()
        };
        let light = SizingInputs {
            peak_exec_per_machine: 100_000_000,
            ..inputs()
        };
        let mt_tight = MemTune.machines(&tight, &s);
        let mt_light = MemTune.machines(&light, &s);
        assert!(mt_tight > mt_light);
    }

    #[test]
    fn tiny_footprints_need_one_machine() {
        let s = spec();
        let i = SizingInputs {
            cached_bytes: 1_000_000,
            input_bytes: 10_000_000,
            output_bytes: 1_000,
            peak_exec_per_machine: 1_000_000,
        };
        assert_eq!(MemTune.machines(&i, &s), 1);
        assert_eq!(SystemML.machines(&i, &s), 1);
        assert_eq!(RelM::default().machines(&i, &s), 1);
    }
}
