//! Ernest [Venkataraman et al., NSDI'16] — the performance-prediction
//! baseline of §7.3 and Figure 2.
//!
//! Ernest models the execution time of a run on a fraction `s` of the data
//! with `m` machines as
//!
//! ```text
//! T(s, m) = θ₀ + θ₁·(s/m) + θ₂·log(m) + θ₃·m
//! ```
//!
//! fit with non-negative least squares over a handful of short,
//! small-sample training runs chosen by optimal experiment design. The
//! terms capture the serial part, the parallel part, tree-aggregation
//! depth and per-machine overheads — but **not cache limitation**, which
//! is why its predictions collapse in area A of Figure 2 and why it
//! recommends a single machine for SVM.

use serde::{Deserialize, Serialize};

use modeling::{d_optimal_greedy, nnls, Matrix};

/// A fitted Ernest model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErnestModel {
    /// `[θ₀, θ₁, θ₂, θ₃]`.
    pub coeffs: [f64; 4],
}

impl ErnestModel {
    /// Feature row for `(scale, machines)`.
    #[must_use]
    pub fn features(scale: f64, machines: u32) -> [f64; 4] {
        let m = f64::from(machines.max(1));
        [1.0, scale / m, m.ln(), m]
    }

    /// Fits the model on `(scale, machines, seconds)` observations with
    /// NNLS (Ernest's own choice, to keep the terms physically
    /// meaningful).
    #[must_use]
    pub fn fit(points: &[(f64, u32, f64)]) -> Self {
        let rows: Vec<Vec<f64>> = points
            .iter()
            .map(|&(s, m, _)| Self::features(s, m).to_vec())
            .collect();
        let y: Vec<f64> = points.iter().map(|&(_, _, t)| t).collect();
        let theta = nnls(&Matrix::from_rows(&rows), &y);
        ErnestModel {
            coeffs: [theta[0], theta[1], theta[2], theta[3]],
        }
    }

    /// Predicted time at `(scale, machines)`.
    #[must_use]
    pub fn predict(&self, scale: f64, machines: u32) -> f64 {
        Self::features(scale, machines)
            .iter()
            .zip(&self.coeffs)
            .map(|(x, t)| x * t)
            .sum()
    }

    /// The machine count in `1..=max_machines` minimizing predicted cost
    /// `machines × time` at full scale.
    #[must_use]
    pub fn cheapest_machines(&self, scale: f64, max_machines: u32) -> u32 {
        (1..=max_machines.max(1))
            .min_by(|&a, &b| {
                let ca = f64::from(a) * self.predict(scale, a);
                let cb = f64::from(b) * self.predict(scale, b);
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .expect("range non-empty")
    }
}

/// The training-side of Ernest: optimal experiment design over a candidate
/// grid of (scale, machines) points, then short runs driven by a caller
///-supplied runner.
#[derive(Debug, Clone)]
pub struct ErnestTrainer {
    /// Data-scale candidates (fractions of the full input, e.g. 0.01–0.1).
    pub scales: Vec<f64>,
    /// Machine-count candidates.
    pub machines: Vec<u32>,
    /// Number of training runs to select (the paper uses 7).
    pub budget: usize,
}

impl Default for ErnestTrainer {
    fn default() -> Self {
        ErnestTrainer {
            scales: vec![0.01, 0.02, 0.04, 0.06, 0.08, 0.10],
            machines: (1..=12).collect(),
            budget: 7,
        }
    }
}

impl ErnestTrainer {
    /// Selects the training points by greedy D-optimal design.
    #[must_use]
    pub fn design(&self) -> Vec<(f64, u32)> {
        let mut candidates = Vec::new();
        let mut rows = Vec::new();
        for &s in &self.scales {
            for &m in &self.machines {
                candidates.push((s, m));
                rows.push(ErnestModel::features(s, m).to_vec());
            }
        }
        d_optimal_greedy(&rows, self.budget.min(candidates.len()))
            .into_iter()
            .map(|i| candidates[i])
            .collect()
    }

    /// Runs the designed experiments through `runner(scale, machines) ->
    /// seconds` and fits the model.
    pub fn train(&self, mut runner: impl FnMut(f64, u32) -> f64) -> ErnestModel {
        let points: Vec<(f64, u32, f64)> = self
            .design()
            .into_iter()
            .map(|(s, m)| (s, m, runner(s, m)))
            .collect();
        ErnestModel::fit(&points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic cache-friendly application: T = serial + parallel·s/m +
    /// overhead·m. Ernest must recover it accurately (its area-B story).
    #[test]
    fn recovers_amdahl_style_model() {
        let truth = |s: f64, m: u32| 30.0 + 800.0 * s / f64::from(m) + 1.5 * f64::from(m);
        let model = ErnestTrainer::default().train(&truth);
        for &(s, m) in &[(1.0, 4u32), (1.0, 8), (0.5, 2), (1.0, 12)] {
            let p = model.predict(s, m);
            let t = truth(s, m);
            assert!((p - t).abs() / t < 0.05, "predict({s},{m}) = {p} vs {t}");
        }
    }

    /// The Figure 2 failure mode: the true system pays a huge recompute
    /// penalty below 7 machines (cache eviction), which Ernest cannot see
    /// from small samples — it underestimates small clusters and
    /// recommends 1 machine.
    #[test]
    fn blind_to_cache_limitation() {
        let eviction_penalty = |s: f64, m: u32| {
            // At full scale the cache only fits on ≥ 7 machines; training
            // samples (s ≤ 0.1) always fit.
            let deficit = (s - 0.15 * f64::from(m)).max(0.0);
            3000.0 * deficit
        };
        let truth = |s: f64, m: u32| {
            20.0 + 600.0 * s / f64::from(m) + 2.0 * f64::from(m) + eviction_penalty(s, m)
        };
        let model = ErnestTrainer::default().train(&truth);
        // Accurate in area B (≥ 7 machines at full scale)…
        let p12 = model.predict(1.0, 12);
        let t12 = truth(1.0, 12);
        assert!((p12 - t12).abs() / t12 < 0.2, "{p12} vs {t12}");
        // …but badly wrong in area A.
        let p1 = model.predict(1.0, 1);
        let t1 = truth(1.0, 1);
        assert!(
            p1 < t1 / 3.0,
            "Ernest should grossly underestimate: {p1} vs {t1}"
        );
        // And the cost-minimal recommendation collapses to one machine.
        assert_eq!(model.cheapest_machines(1.0, 12), 1);
    }

    #[test]
    fn design_spans_scales_and_machines() {
        let design = ErnestTrainer::default().design();
        assert_eq!(design.len(), 7);
        let min_m = design.iter().map(|&(_, m)| m).min().unwrap();
        let max_m = design.iter().map(|&(_, m)| m).max().unwrap();
        assert!(min_m <= 2 && max_m >= 10, "{design:?}");
        let mut uniq = design.clone();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        assert_eq!(uniq.len(), 7);
    }

    #[test]
    fn coefficients_are_nonnegative() {
        // Even for decreasing data NNLS keeps θ ≥ 0.
        let model = ErnestModel::fit(&[
            (0.1, 1, 10.0),
            (0.1, 2, 12.0),
            (0.1, 4, 9.0),
            (0.05, 1, 8.0),
            (0.02, 8, 11.0),
        ]);
        assert!(model.coeffs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn predict_guards_zero_machines() {
        let model = ErnestModel {
            coeffs: [1.0, 1.0, 1.0, 1.0],
        };
        // machines=0 is clamped to 1 in the features.
        assert!((model.predict(1.0, 0) - model.predict(1.0, 1)).abs() < 1e-12);
    }
}
