#![warn(missing_docs)]
//! # baselines — the systems Juggler is compared against (paper §7)
//!
//! Three families of comparators, each reimplemented from its paper's cost
//! model and adapted to schedule/configuration selection exactly the way
//! Juggler's evaluation adapts them:
//!
//! * **Dataset selection** (§7.2): LRC and MRD (DAG-aware cache-eviction
//!   policies used as selection policies), Hagedorn & Sattler '18
//!   (recycling intermediates by computation time × count), Nagel et
//!   al. '13 (benefit-per-byte without re-evaluation or unpersist), and
//!   Jindal et al. '18 (sub-expression utility). Each produces an
//!   incremental schedule family like Algorithm 1 does.
//! * **Performance prediction** (§7.3): Ernest's
//!   `T(s, m) = θ₀ + θ₁·s/m + θ₂·log m + θ₃·m` model with NNLS fitting
//!   and greedy D-optimal experiment design, trained on short
//!   small-sample runs — faithfully reproducing its blindness to cache
//!   limitation (area A of Figure 2).
//! * **Cluster sizing** (§7.5): MemTune (execution-priority memory
//!   tuning), RelM (safety factors for error-free runs) and SystemML
//!   (worst-case fit-everything estimates), each adapted to recommending
//!   a machine count as the evaluation does.
//!
//! The point of these implementations — as in the paper — is not to beat
//! the originals but to give empirical grounds for Juggler's design
//! choices under identical conditions.

pub mod ernest;
pub mod selection;
pub mod sizing;

pub use ernest::{ErnestModel, ErnestTrainer};
pub use selection::{DatasetSelector, Hagedorn, Jindal, Lrc, Mrd, Nagel, SelectionMetrics};
pub use sizing::{MemTune, RelM, SizingBaseline, SizingInputs, SystemML};
