//! Dataset-selection baselines (paper §7.2).
//!
//! Each policy produces an *incremental schedule family* the way the
//! evaluation adapts it: "we select the first schedule, whose dataset has
//! the highest rank. For the second schedule, we update the reference
//! count with respect to the selected dataset in the first one, and
//! successively select the highest-ranked dataset."
//!
//! None of these baselines unpersists, re-evaluates, or applies Juggler's
//! single-child rule — those are exactly the deltas the §7.2 comparison
//! quantifies.

use std::collections::BTreeSet;

use dagflow::{Application, DatasetId, JobId, LineageAnalysis, Schedule};

/// Measured per-dataset metrics a selector may consume (the same
/// instrumentation output Juggler's hotspot detection uses).
#[derive(Debug, Clone)]
pub struct SelectionMetrics {
    /// `et[d]` — computation time of dataset `d`, seconds.
    pub et: Vec<f64>,
    /// `size[d]` — size of dataset `d`, bytes.
    pub size: Vec<u64>,
}

/// No system materializes a dataset whose total recompute savings are
/// below this floor (seconds): the same pruning Juggler's hotspot
/// detection applies, granted to every baseline for a fair comparison.
pub const MIN_BENEFIT_S: f64 = 0.005;

/// A dataset-selection policy.
pub trait DatasetSelector {
    /// Display name as used in the figures.
    fn name(&self) -> &'static str;

    /// Rank of candidate `d` given what is already cached; `None` means
    /// the candidate is no longer worth caching under this policy.
    fn rank(
        &self,
        la: &LineageAnalysis<'_>,
        metrics: &SelectionMetrics,
        cached: &BTreeSet<DatasetId>,
        pulls: &[u64],
        d: DatasetId,
    ) -> Option<f64>;

    /// Produces the incremental schedule family.
    fn schedules(&self, app: &Application, metrics: &SelectionMetrics) -> Vec<Schedule> {
        let la = LineageAnalysis::new(app);
        let mut pool: BTreeSet<DatasetId> = la.intermediates().into_iter().collect();
        let mut cached: Vec<DatasetId> = Vec::new();
        let mut out = Vec::new();
        while !pool.is_empty() {
            let cached_set: BTreeSet<DatasetId> = cached.iter().copied().collect();
            let pulls = la.pulls(&cached_set);
            let best = pool
                .iter()
                .filter(|&&d| {
                    // Universal materialization floor: skip datasets whose
                    // total recompute savings are negligible.
                    let n = pulls[d.index()];
                    n > 1
                        && (n - 1) as f64 * la.chain_cost(d, &cached_set, &metrics.et)
                            > MIN_BENEFIT_S
                })
                .filter_map(|&d| {
                    self.rank(&la, metrics, &cached_set, &pulls, d)
                        .filter(|r| *r > 0.0)
                        .map(|r| (r, d))
                })
                .max_by(|a, b| {
                    // Ties break toward the downstream (higher-id) dataset
                    // — the one closer to its consumers.
                    a.0.partial_cmp(&b.0)
                        .expect("finite ranks")
                        .then_with(|| a.1.cmp(&b.1))
                });
            let Some((_, d)) = best else { break };
            pool.remove(&d);
            cached.push(d);
            // Persist order: first materialization, like Juggler's
            // assembly (no unpersists — these baselines never drop data).
            let mut ordered = cached.clone();
            ordered.sort_by_key(|&x| (la.first_job_of(x), x));
            out.push(Schedule::persist_all(ordered));
        }
        out
    }
}

/// LRC [Yu et al., INFOCOM'17]: rank by *reference count* — how many times
/// the dataset will still be computed/read — ignoring size and computation
/// time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lrc;

impl DatasetSelector for Lrc {
    fn name(&self) -> &'static str {
        "LRC"
    }
    fn rank(
        &self,
        _la: &LineageAnalysis<'_>,
        _metrics: &SelectionMetrics,
        _cached: &BTreeSet<DatasetId>,
        pulls: &[u64],
        d: DatasetId,
    ) -> Option<f64> {
        let n = pulls[d.index()];
        (n > 1).then_some(n as f64)
    }
}

/// MRD [Perez et al., ICPP'18]: rank by *reference distance* — prefer
/// datasets whose next uses are closest together in job order (small mean
/// gap ⇒ high rank). Ignores size and computation time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mrd;

impl Mrd {
    /// Mean distance (in jobs) between consecutive uses of `d`.
    fn mean_reference_distance(la: &LineageAnalysis<'_>, d: DatasetId) -> Option<f64> {
        let jobs: Vec<usize> = (0..la.app().jobs().len())
            .filter(|&j| la.in_job(d, JobId(j as u32)))
            .collect();
        if jobs.len() < 2 {
            return None;
        }
        let gaps: f64 = jobs.windows(2).map(|w| (w[1] - w[0]) as f64).sum();
        Some(gaps / (jobs.len() - 1) as f64)
    }
}

impl DatasetSelector for Mrd {
    fn name(&self) -> &'static str {
        "MRD"
    }
    fn rank(
        &self,
        la: &LineageAnalysis<'_>,
        _metrics: &SelectionMetrics,
        _cached: &BTreeSet<DatasetId>,
        pulls: &[u64],
        d: DatasetId,
    ) -> Option<f64> {
        if pulls[d.index()] <= 1 {
            return None;
        }
        Mrd::mean_reference_distance(la, d).map(|dist| 1.0 / dist.max(1e-9))
    }
}

/// Hagedorn & Sattler '18: materialization benefit = (n − 1) × chain
/// computation time; sizes are ignored ("assumes the capacity of HDFS is
/// sufficient").
#[derive(Debug, Clone, Copy, Default)]
pub struct Hagedorn;

impl DatasetSelector for Hagedorn {
    fn name(&self) -> &'static str {
        "Hagedorn'18"
    }
    fn rank(
        &self,
        la: &LineageAnalysis<'_>,
        metrics: &SelectionMetrics,
        cached: &BTreeSet<DatasetId>,
        pulls: &[u64],
        d: DatasetId,
    ) -> Option<f64> {
        let n = pulls[d.index()];
        if n <= 1 {
            return None;
        }
        Some((n - 1) as f64 * la.chain_cost(d, cached, &metrics.et))
    }
}

/// Nagel et al. '13: benefit per byte (time, count and size like Juggler)
/// but — per the §7.2 discussion — "it neither re-evaluates nor unpersists
/// stored datasets in previous schedules".
#[derive(Debug, Clone, Copy, Default)]
pub struct Nagel;

impl DatasetSelector for Nagel {
    fn name(&self) -> &'static str {
        "Nagel'13"
    }
    fn rank(
        &self,
        la: &LineageAnalysis<'_>,
        metrics: &SelectionMetrics,
        cached: &BTreeSet<DatasetId>,
        pulls: &[u64],
        d: DatasetId,
    ) -> Option<f64> {
        let n = pulls[d.index()];
        if n <= 1 {
            return None;
        }
        let benefit = (n - 1) as f64 * la.chain_cost(d, cached, &metrics.et);
        Some(benefit / metrics.size[d.index()].max(1) as f64)
    }
}

/// Jindal et al. '18: sub-expression *utility* — time saved across all
/// workloads if materialized, using the dataset's own operator time (not
/// the recursive chain) and ignoring size.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jindal;

impl DatasetSelector for Jindal {
    fn name(&self) -> &'static str {
        "Jindal'18"
    }
    fn rank(
        &self,
        _la: &LineageAnalysis<'_>,
        metrics: &SelectionMetrics,
        _cached: &BTreeSet<DatasetId>,
        pulls: &[u64],
        d: DatasetId,
    ) -> Option<f64> {
        let n = pulls[d.index()];
        if n <= 1 {
            return None;
        }
        Some((n - 1) as f64 * metrics.et[d.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{AppBuilder, ComputeCost, NarrowKind, SourceFormat};

    /// src → big (heavy, reused 3×) → small (cheap, reused 5×), plus a
    /// rarely-reused sibling.
    fn fixture() -> (Application, SelectionMetrics) {
        let mut b = AppBuilder::new("sel");
        let src = b.source("src", SourceFormat::DistributedFs, 100, 10_000_000, 4);
        let big = b.narrow(
            "big",
            NarrowKind::Map,
            &[src],
            100,
            8_000_000,
            ComputeCost::FREE,
        );
        let small = b.narrow(
            "small",
            NarrowKind::Map,
            &[big],
            100,
            1_000_000,
            ComputeCost::FREE,
        );
        // Jobs: 5 over `small`, then 3 over `big` directly.
        for i in 0..5 {
            let v = b.narrow(
                format!("vs{i}"),
                NarrowKind::Map,
                &[small],
                1,
                8,
                ComputeCost::FREE,
            );
            b.job("count", v);
        }
        for i in 0..3 {
            let v = b.narrow(
                format!("vb{i}"),
                NarrowKind::Map,
                &[big],
                1,
                8,
                ComputeCost::FREE,
            );
            b.job("count", v);
        }
        let app = b.build().unwrap();
        let mut et = vec![0.0; app.dataset_count()];
        et[src.index()] = 2.0;
        et[big.index()] = 1.0;
        et[small.index()] = 0.01;
        let size = app.datasets().iter().map(|d| d.bytes).collect();
        (app, SelectionMetrics { et, size })
    }

    use dagflow::Application;

    const BIG: DatasetId = DatasetId(1);
    const SMALL: DatasetId = DatasetId(2);

    #[test]
    fn lrc_prefers_reference_count() {
        let (app, m) = fixture();
        let schedules = Lrc.schedules(&app, &m);
        // `big` is referenced 8 times (5 via small + 3 direct), `small` 5.
        assert_eq!(schedules[0].persisted(), vec![BIG]);
        assert!(!schedules.is_empty());
    }

    #[test]
    fn nagel_prefers_benefit_per_byte() {
        let (app, m) = fixture();
        let schedules = Nagel.schedules(&app, &m);
        // small: 4 × (0.01+1+2) / 1 MB ≈ 12; big: 7 × 3 / 8 MB ≈ 2.6.
        assert_eq!(schedules[0].persisted(), vec![SMALL]);
    }

    #[test]
    fn hagedorn_ignores_size() {
        let (app, m) = fixture();
        let schedules = Hagedorn.schedules(&app, &m);
        // big: 7 × 3 = 21; small: 4 × 3.01 = 12.04 → big first despite bulk.
        assert_eq!(schedules[0].persisted(), vec![BIG]);
    }

    #[test]
    fn jindal_uses_own_time_only() {
        let (app, m) = fixture();
        let schedules = Jindal.schedules(&app, &m);
        // big: 7 × 1.0 = 7; small: 4 × 0.01; src: 7 × 2 = 14 → src first!
        assert_eq!(schedules[0].persisted(), vec![DatasetId(0)]);
    }

    #[test]
    fn families_are_incremental() {
        let (app, m) = fixture();
        for sel in [
            &Lrc as &dyn DatasetSelector,
            &Mrd,
            &Hagedorn,
            &Nagel,
            &Jindal,
        ] {
            let schedules = sel.schedules(&app, &m);
            for w in schedules.windows(2) {
                let a: BTreeSet<DatasetId> = w[0].persisted().into_iter().collect();
                let b: BTreeSet<DatasetId> = w[1].persisted().into_iter().collect();
                assert!(a.is_subset(&b), "{} not incremental", sel.name());
            }
            // No unpersists ever.
            for s in &schedules {
                assert!(s.unpersisted().is_empty(), "{}", sel.name());
            }
        }
    }

    #[test]
    fn mrd_ranks_by_locality_of_reuse() {
        // Dataset A used by jobs 0 and 1 (distance 1); dataset B used by
        // jobs 0 and 5 (distance 5). MRD must pick A first.
        let mut b = AppBuilder::new("mrd");
        let src = b.source("src", SourceFormat::DistributedFs, 10, 1000, 1);
        let a = b.narrow("a", NarrowKind::Map, &[src], 10, 1000, ComputeCost::FREE);
        let bb = b.narrow("b", NarrowKind::Map, &[src], 10, 1000, ComputeCost::FREE);
        let v0 = b.narrow("v0", NarrowKind::Zip, &[a, bb], 1, 8, ComputeCost::FREE);
        b.job("count", v0); // job 0 uses both
        let v1 = b.narrow("v1", NarrowKind::Map, &[a], 1, 8, ComputeCost::FREE);
        b.job("count", v1); // job 1 uses A
        for i in 0..3 {
            let v = b.narrow(
                format!("f{i}"),
                NarrowKind::Map,
                &[src],
                1,
                8,
                ComputeCost::FREE,
            );
            b.job("count", v); // jobs 2-4: neither
        }
        let v5 = b.narrow("v5", NarrowKind::Map, &[bb], 1, 8, ComputeCost::FREE);
        b.job("count", v5); // job 5 uses B
        let app = b.build().unwrap();
        let m = SelectionMetrics {
            et: vec![0.1; app.dataset_count()],
            size: vec![1000; app.dataset_count()],
        };
        let schedules = Mrd.schedules(&app, &m);
        assert_eq!(schedules[0].persisted(), vec![a]);
    }
}
