//! Property-based tests of Algorithm 1 over random DAGs and metrics: the
//! structural guarantees the paper states must hold universally.

use proptest::prelude::*;
use std::collections::BTreeSet;

use dagflow::{
    AppBuilder, Application, ComputeCost, DatasetId, LineageAnalysis, NarrowKind, SourceFormat,
    WideKind,
};
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};

#[derive(Debug, Clone)]
struct Recipe {
    nodes: Vec<(bool, Vec<usize>)>,
    jobs: Vec<usize>,
    et_seed: u64,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    let node = (any::<bool>(), prop::collection::vec(0usize..1000, 1..3));
    (
        prop::collection::vec(node, 1..30),
        prop::collection::vec(0usize..1000, 1..12),
        any::<u64>(),
    )
        .prop_map(|(nodes, jobs, et_seed)| Recipe {
            nodes,
            jobs,
            et_seed,
        })
}

fn build(r: &Recipe) -> (Application, DatasetMetricsView) {
    let mut b = AppBuilder::new("hprop");
    let mut ids = vec![b.source("src", SourceFormat::DistributedFs, 1000, 1 << 22, 4)];
    for (i, (wide, parents)) in r.nodes.iter().enumerate() {
        let mut ps: Vec<DatasetId> = parents.iter().map(|&p| ids[p % ids.len()]).collect();
        ps.sort_unstable();
        ps.dedup();
        let bytes = 10_000 + (i as u64 * 7919) % 4_000_000;
        let id = if *wide {
            b.wide(
                format!("w{i}"),
                WideKind::ReduceByKey,
                &ps,
                100,
                bytes,
                ComputeCost::FREE,
            )
        } else {
            b.narrow(
                format!("n{i}"),
                NarrowKind::Map,
                &ps,
                100,
                bytes,
                ComputeCost::FREE,
            )
        };
        ids.push(id);
    }
    for &j in &r.jobs {
        b.job("count", ids[j % ids.len()]);
    }
    let app = b.build().unwrap();
    // Deterministic pseudo-random metrics.
    let mut state = r.et_seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let et: Vec<f64> = (0..app.dataset_count()).map(|_| next() * 2.0).collect();
    let size: Vec<u64> = app.datasets().iter().map(|d| d.bytes).collect();
    (app, DatasetMetricsView { et, size })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every produced schedule is well-formed against the application.
    #[test]
    fn schedules_are_valid(r in recipe()) {
        let (app, metrics) = build(&r);
        for rs in detect_hotspots(&app, &metrics, &HotspotConfig::default()) {
            prop_assert!(app.check_schedule(&rs.schedule).is_ok(), "{}", rs.schedule);
        }
    }

    /// Schedules are generated incrementally: between consecutive emitted
    /// schedules the cached set grows by exactly one dataset. (Note: the
    /// later set need not be a superset — a re-evaluation can park a
    /// dataset in the pool and emit before it is re-selected — but the
    /// family always grows one dataset at a time, before equal-budget
    /// dedup removes some members.)
    #[test]
    fn persist_sets_grow_one_at_a_time(r in recipe()) {
        let (app, metrics) = build(&r);
        // Disable the dedup-by-budget effect on sizes by comparing sizes
        // only (dedup removes whole schedules, so sizes stay increasing).
        let schedules = detect_hotspots(&app, &metrics, &HotspotConfig::default());
        for w in schedules.windows(2) {
            let a = w[0].schedule.persisted().len();
            let b = w[1].schedule.persisted().len();
            prop_assert!(b > a, "{} then {}", w[0].schedule, w[1].schedule);
        }
    }

    /// Only intermediates (n > 1) are ever persisted, and the reported
    /// budget matches the schedule's memory budget under the metrics.
    #[test]
    fn schedules_cache_intermediates_with_exact_budget(r in recipe()) {
        let (app, metrics) = build(&r);
        let la = LineageAnalysis::new(&app);
        let inter: BTreeSet<DatasetId> = la.intermediates().into_iter().collect();
        for rs in detect_hotspots(&app, &metrics, &HotspotConfig::default()) {
            for d in rs.schedule.persisted() {
                prop_assert!(inter.contains(&d), "{d} is not intermediate");
            }
            let budget = rs.schedule.memory_budget(|d| metrics.size[d.index()]);
            prop_assert_eq!(budget, rs.budget_bytes);
        }
    }

    /// No two surviving schedules have (near-)equal budgets — the
    /// equal-cost discard rule has been applied.
    #[test]
    fn no_equal_cost_survivors(r in recipe()) {
        let (app, metrics) = build(&r);
        let cfg = HotspotConfig::default();
        let schedules = detect_hotspots(&app, &metrics, &cfg);
        for i in 0..schedules.len() {
            for j in i + 1..schedules.len() {
                let a = schedules[i].budget_bytes as f64;
                let b = schedules[j].budget_bytes as f64;
                prop_assert!(
                    (a - b).abs() > cfg.cost_tolerance * a.max(b).max(1.0),
                    "schedules {i} and {j} tie on budget {a}"
                );
            }
        }
    }

    /// Raising the benefit floor can only shrink the schedule family.
    #[test]
    fn higher_floor_means_fewer_schedules(r in recipe()) {
        let (app, metrics) = build(&r);
        let low = detect_hotspots(&app, &metrics, &HotspotConfig { min_benefit_s: 0.0001, ..HotspotConfig::default() });
        let high = detect_hotspots(&app, &metrics, &HotspotConfig { min_benefit_s: 1.0, ..HotspotConfig::default() });
        prop_assert!(high.len() <= low.len());
    }
}
