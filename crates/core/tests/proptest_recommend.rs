//! Property-based tests of the recommendation menu: construction must
//! never panic — not even on NaN/±inf predictions from a degenerate model
//! fit — and the surviving menu must stay Pareto-consistent.

use std::sync::Arc;

use proptest::prelude::*;

use dagflow::Schedule;
use juggler::recommend::{Recommendation, RecommendationMenu};

fn rec(idx: usize, time: f64, cost: f64) -> Recommendation {
    Recommendation {
        schedule_index: idx,
        schedule: Arc::new(Schedule::empty()),
        predicted_size_bytes: 0,
        machines: 1,
        predicted_time_s: time,
        predicted_cost_machine_min: cost,
    }
}

/// A predicted value: usually finite, sometimes NaN or ±inf.
fn prediction() -> impl Strategy<Value = f64> {
    (0u8..10, 0.0f64..1.0e6).prop_map(|(sel, v)| match sel {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => v,
    })
}

fn candidates() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((prediction(), prediction()), 0..14)
}

fn dominates(a: &Recommendation, b: &Recommendation) -> bool {
    a.predicted_time_s < b.predicted_time_s - 1e-12
        && a.predicted_cost_machine_min < b.predicted_cost_machine_min - 1e-12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Construction never panics and every candidate lands in exactly one
    /// of the three buckets, with non-finite ones quarantined.
    #[test]
    fn menu_partitions_all_candidates(preds in candidates()) {
        let input: Vec<Recommendation> = preds
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| rec(i, t, c))
            .collect();
        let n = input.len();
        let menu = RecommendationMenu::from_candidates(input);
        prop_assert_eq!(menu.options.len() + menu.dominated.len() + menu.invalid.len(), n);
        for o in menu.options.iter().chain(&menu.dominated) {
            prop_assert!(o.is_finite(), "finite buckets hold only finite predictions");
        }
        for bad in &menu.invalid {
            prop_assert!(!bad.is_finite(), "quarantine holds only non-finite predictions");
        }
        // cheapest()/fastest() never panic either.
        let _ = menu.cheapest();
        let _ = menu.fastest();
    }

    /// Pareto consistency: no offered option is dominated by another
    /// candidate; every suppressed option is dominated by some finite
    /// candidate; options are sorted by cost.
    #[test]
    fn menu_is_pareto_consistent(preds in candidates()) {
        let input: Vec<Recommendation> = preds
            .iter()
            .enumerate()
            .map(|(i, &(t, c))| rec(i, t, c))
            .collect();
        let menu = RecommendationMenu::from_candidates(input);
        let finite: Vec<&Recommendation> =
            menu.options.iter().chain(&menu.dominated).collect();
        for o in &menu.options {
            prop_assert!(
                !finite.iter().any(|c| dominates(c, o)),
                "offered option {} is dominated",
                o.schedule_index
            );
        }
        for d in &menu.dominated {
            prop_assert!(
                finite.iter().any(|c| dominates(c, d)),
                "suppressed option {} has no dominator",
                d.schedule_index
            );
        }
        for w in menu.options.windows(2) {
            prop_assert!(
                w[0].predicted_cost_machine_min <= w[1].predicted_cost_machine_min,
                "options must be sorted by cost"
            );
        }
        if let Some(fastest) = menu.fastest() {
            for o in &menu.options {
                prop_assert!(fastest.predicted_time_s <= o.predicted_time_s);
            }
        }
    }
}
