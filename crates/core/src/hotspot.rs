//! Hotspot detection — Algorithm 1 of the paper.
//!
//! From one instrumented sample run, Juggler knows each dataset's
//! computation time `ET`, size, and number of computations `n`. It then
//! greedily builds an incremental family of *schedules*: in every round it
//! caches the dataset with the highest benefit-cost ratio
//! `BCR = benefit / size`, where the benefit of caching `D` is
//! `(n − 1) × (ET_D + Σ uncached-ancestor ETs)` (Eq. 4), with three
//! refinements:
//!
//! * **single-child exclusion** (lines 12–13): a dataset that is the only
//!   child of an already-cached dataset is never added;
//! * **re-evaluation** (lines 16–20): when the newly selected dataset is an
//!   ancestor of the one added in the previous round, the previous one is
//!   pulled back into the pool and re-ranked — this is what orders parents
//!   before children in the final instruction lists;
//! * **unpersist optimization** (lines 24–25): a cached dataset whose
//!   remaining uses all flow through the next cached dataset is unpersisted
//!   right before its successor caches, shrinking the schedule's memory
//!   budget to `max` instead of sum.
//!
//! Schedules with equal memory budget keep only the highest-benefit one
//! (lines 30–32) — this is why PCA ends up with a single (the third)
//! schedule in Table 2.
//!
//! Deviations from the paper's pseudocode, both documented in DESIGN.md:
//! the incremental count bookkeeping (`n_p −= …`) is replaced by an exact
//! cache-aware recount (`LineageAnalysis::pulls`) that reproduces every
//! number of the §5.1 worked example while staying correct on non-chain
//! DAGs; and datasets whose remaining benefit drops below
//! [`HotspotConfig::min_benefit_s`] leave the pool (the paper's SVM/PCA
//! schedule counts imply the same pruning).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dagflow::{Application, DatasetId, LineageAnalysis, Schedule, ScheduleOp};
use instrument::DatasetMetrics;

/// Tunables for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotConfig {
    /// Benefit floor, in seconds (at sample-run scale): datasets whose
    /// benefit falls to or below this leave the candidate pool.
    pub min_benefit_s: f64,
    /// Relative tolerance when comparing schedule memory budgets for the
    /// equal-cost discard rule.
    pub cost_tolerance: f64,
    /// Cache-contention pressure factor (≥ 0). Under multi-tenant
    /// contention a cached block's expected residency shrinks with its
    /// size — bigger blocks attract eviction pressure sooner — so each
    /// candidate's benefit is discounted by `1 / (1 + pressure ×
    /// size_d / Σ candidate-pool sizes)` before pruning and BCR
    /// ranking. Zero (the default) reproduces the single-tenant
    /// algorithm bit-for-bit; the reported cumulative schedule benefits
    /// are never discounted, so schedules stay monotone either way.
    #[serde(default)]
    pub pressure: f64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            min_benefit_s: 0.005,
            cost_tolerance: 1e-6,
            pressure: 0.0,
        }
    }
}

/// Dense per-dataset metric view the algorithm consumes.
#[derive(Debug, Clone)]
pub struct DatasetMetricsView {
    /// `et[d]` — measured computation time of dataset `d`, seconds.
    pub et: Vec<f64>,
    /// `size[d]` — measured size of dataset `d`, bytes.
    pub size: Vec<u64>,
}

impl DatasetMetricsView {
    /// Builds the dense view from instrumentation output; unobserved
    /// datasets get zero time and size.
    #[must_use]
    pub fn from_metrics(metrics: &[DatasetMetrics], dataset_count: usize) -> Self {
        let mut et = vec![0.0; dataset_count];
        let mut size = vec![0u64; dataset_count];
        for m in metrics {
            et[m.dataset.index()] = m.et_seconds;
            size[m.dataset.index()] = m.size_bytes;
        }
        DatasetMetricsView { et, size }
    }
}

/// One produced schedule, with its provenance numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSchedule {
    /// The ordered persist/unpersist instructions (shared — downstream
    /// recommendations and reports reference the schedule without deep
    /// copies).
    pub schedule: Arc<Schedule>,
    /// Total caching benefit, seconds (at sample-run scale).
    pub benefit_s: f64,
    /// Memory budget, bytes (at sample-run scale).
    pub budget_bytes: u64,
}

/// Why a dataset did or did not end up in the cached set — the per-dataset
/// verdict of Algorithm 1, surfaced by `juggler doctor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditOutcome {
    /// Selected in the given 1-based round and kept in the final set.
    Accepted {
        /// Round in which the dataset won the BCR ranking.
        round: u32,
    },
    /// Left the pool because its remaining benefit fell to or below
    /// [`HotspotConfig::min_benefit_s`].
    PrunedLowBenefit,
    /// Still excluded at termination as the single child of a cached
    /// parent (Algorithm 1 lines 12–13).
    SingleChildExcluded,
    /// Stayed eligible but was outranked on BCR every round.
    Outranked,
}

impl AuditOutcome {
    /// Short human label (`accepted (round 2)`, `pruned: low benefit`, …).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            AuditOutcome::Accepted { round } => format!("accepted (round {round})"),
            AuditOutcome::PrunedLowBenefit => "pruned: low benefit".to_owned(),
            AuditOutcome::SingleChildExcluded => {
                "excluded: single child of cached parent".to_owned()
            }
            AuditOutcome::Outranked => "outranked on BCR".to_owned(),
        }
    }
}

/// One dataset's final audit row: the numbers from its *last* BCR
/// evaluation plus the final verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetAudit {
    /// The dataset.
    pub dataset: DatasetId,
    /// Benefit at the last evaluation, seconds (Eq. 4, sample scale).
    pub benefit_s: f64,
    /// Measured size, bytes (sample scale).
    pub size_bytes: u64,
    /// Benefit-cost ratio at the last evaluation; zero when the dataset
    /// never reached the ranking step.
    pub bcr: f64,
    /// Number of BCR evaluations this dataset went through.
    pub evaluations: u32,
    /// The final verdict.
    pub outcome: AuditOutcome,
}

/// One generated schedule's audit row, including those the equal-cost rule
/// (Algorithm 1 lines 30–32) later discarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleAudit {
    /// Schedule notation (`p(1) p(2) u(2) p(11)`).
    pub notation: String,
    /// Cumulative benefit, seconds (sample scale).
    pub benefit_s: f64,
    /// Memory budget, bytes (sample scale).
    pub budget_bytes: u64,
    /// Whether the schedule survived the equal-cost discard rule.
    pub kept: bool,
}

/// The full decision trace of one [`detect_hotspots_audited`] invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotAudit {
    /// Per-dataset verdicts, ordered by dataset id.
    pub datasets: Vec<DatasetAudit>,
    /// Every generated schedule in generation order, kept or not.
    pub schedules: Vec<ScheduleAudit>,
    /// Ranking rounds executed.
    pub rounds: u32,
    /// Total BCR candidate evaluations across all rounds.
    pub bcr_evaluations: u64,
    /// Re-evaluation pull-backs (Algorithm 1 lines 16–20).
    pub reevaluations: u32,
    /// The contention-pressure factor the detection ran under (see
    /// [`HotspotConfig::pressure`]); zero for single-tenant runs.
    #[serde(default)]
    pub pressure: f64,
}

/// Per-dataset bookkeeping while the ranking loop runs.
#[derive(Debug, Clone, Copy)]
struct AuditCell {
    benefit_s: f64,
    bcr: f64,
    evaluations: u32,
    outcome: AuditOutcome,
}

/// Runs hotspot detection. `metrics` comes from the instrumented sample
/// run; the lineage (computation counts) comes from the application plan.
/// Returns schedules ordered as generated (increasing benefit and budget).
#[must_use]
pub fn detect_hotspots(
    app: &Application,
    metrics: &DatasetMetricsView,
    config: &HotspotConfig,
) -> Vec<RankedSchedule> {
    detect_hotspots_audited(app, metrics, config).0
}

/// [`detect_hotspots`] plus the [`HotspotAudit`] decision trace. The
/// schedules are identical to the unaudited call; the audit is pure
/// bookkeeping layered on the same loop.
#[must_use]
pub fn detect_hotspots_audited(
    app: &Application,
    metrics: &DatasetMetricsView,
    config: &HotspotConfig,
) -> (Vec<RankedSchedule>, HotspotAudit) {
    let la = LineageAnalysis::new(app);
    let mut pool: BTreeSet<DatasetId> = la.intermediates().into_iter().collect();
    let mut audit: BTreeMap<DatasetId, AuditCell> = pool
        .iter()
        .map(|&d| {
            (
                d,
                AuditCell {
                    benefit_s: 0.0,
                    bcr: 0.0,
                    evaluations: 0,
                    outcome: AuditOutcome::Outranked,
                },
            )
        })
        .collect();
    let mut cached: Vec<DatasetId> = Vec::new(); // in addition order
    let mut schedules: Vec<RankedSchedule> = Vec::new();
    let mut rounds = 0u32;
    let mut bcr_evaluations = 0u64;
    let mut reevaluations = 0u32;
    // Generous bound: each round either shrinks the pool or (on
    // re-evaluation) moves a strictly higher ancestor into the schedule.
    let mut rounds_left = 4 * app.dataset_count() + 16;

    while !pool.is_empty() && rounds_left > 0 {
        rounds_left -= 1;
        rounds += 1;
        let cached_set: BTreeSet<DatasetId> = cached.iter().copied().collect();
        let pulls = la.pulls(&cached_set);
        // Expected-residency discount base: a candidate's share of the
        // current pool's bytes approximates how much eviction pressure
        // its blocks would attract from co-tenants.
        let pool_bytes: f64 = if config.pressure > 0.0 {
            pool.iter()
                .map(|&d| metrics.size[d.index()] as f64)
                .sum::<f64>()
                .max(1.0)
        } else {
            0.0
        };

        // Rank the pool by BCR; drop dead candidates.
        let mut best: Option<(f64, f64, DatasetId)> = None; // (bcr, benefit, id)
        let mut dead: Vec<DatasetId> = Vec::new();
        for &d in &pool {
            let n = pulls[d.index()];
            let mut benefit: f64 = if n <= 1 {
                0.0
            } else {
                (n - 1) as f64 * la.chain_cost(d, &cached_set, &metrics.et)
            };
            if config.pressure > 0.0 && benefit > 0.0 {
                let share = metrics.size[d.index()] as f64 / pool_bytes;
                benefit /= 1.0 + config.pressure * share;
            }
            bcr_evaluations += 1;
            let cell = audit.get_mut(&d).expect("pool members are audited");
            cell.evaluations += 1;
            cell.benefit_s = benefit;
            if benefit <= config.min_benefit_s {
                cell.outcome = AuditOutcome::PrunedLowBenefit;
                dead.push(d);
                continue;
            }
            if la.is_single_child_of_any(d, &cached_set) {
                cell.outcome = AuditOutcome::SingleChildExcluded;
                continue; // excluded while its parent is cached
            }
            let size = metrics.size[d.index()].max(1) as f64;
            let bcr = benefit / size;
            cell.bcr = bcr;
            cell.outcome = AuditOutcome::Outranked;
            let better = match best {
                None => true,
                Some((b, _, prev)) => {
                    bcr > b + f64::EPSILON || (bcr >= b - f64::EPSILON && d < prev)
                }
            };
            if better {
                best = Some((bcr, benefit, d));
            }
        }
        for d in dead {
            pool.remove(&d);
        }
        let Some((_, benefit, d_max)) = best else {
            break; // everything left is excluded or dead
        };

        pool.remove(&d_max);
        cached.push(d_max);
        audit.get_mut(&d_max).expect("audited").outcome = AuditOutcome::Accepted { round: rounds };
        let _ = benefit; // cumulative benefit is replayed exactly below

        // Re-evaluation: if the previously added dataset is a descendant of
        // the new one, pull it back and re-rank before emitting.
        if cached.len() >= 2 {
            let d_prev = cached[cached.len() - 2];
            if la.is_descendant(d_prev, d_max) {
                cached.remove(cached.len() - 2);
                pool.insert(d_prev);
                reevaluations += 1;
                audit.get_mut(&d_prev).expect("audited").outcome = AuditOutcome::Outranked;
                continue;
            }
        }
        let total_benefit = replay_benefit(&la, &cached, &metrics.et);

        let schedule = assemble_schedule(&la, &cached);
        let budget = schedule.memory_budget(|d| metrics.size[d.index()]);
        schedules.push(RankedSchedule {
            schedule: Arc::new(schedule),
            benefit_s: total_benefit,
            budget_bytes: budget,
        });
    }

    let keep = dedup_keep_flags(&schedules, config);
    let schedule_audits: Vec<ScheduleAudit> = schedules
        .iter()
        .zip(&keep)
        .map(|(s, &kept)| ScheduleAudit {
            notation: s.schedule.notation(),
            benefit_s: s.benefit_s,
            budget_bytes: s.budget_bytes,
            kept,
        })
        .collect();
    let kept: Vec<RankedSchedule> = schedules
        .into_iter()
        .zip(&keep)
        .filter_map(|(s, &k)| k.then_some(s))
        .collect();

    record_hotspot_metrics(rounds, bcr_evaluations, reevaluations, &schedule_audits);
    let dataset_audits = audit
        .into_iter()
        .map(|(dataset, cell)| DatasetAudit {
            dataset,
            benefit_s: cell.benefit_s,
            size_bytes: metrics.size[dataset.index()],
            bcr: cell.bcr,
            evaluations: cell.evaluations,
            outcome: cell.outcome,
        })
        .collect();
    (
        kept,
        HotspotAudit {
            datasets: dataset_audits,
            schedules: schedule_audits,
            rounds,
            bcr_evaluations,
            reevaluations,
            pressure: config.pressure,
        },
    )
}

/// Feeds one detection's decision counters into the global metrics
/// registry (one branch when disabled).
fn record_hotspot_metrics(
    rounds: u32,
    bcr_evaluations: u64,
    reevaluations: u32,
    schedules: &[ScheduleAudit],
) {
    let reg = obs::global();
    if !reg.enabled() {
        return;
    }
    reg.counter("hotspot_detections_total", "hotspot-detection invocations")
        .inc();
    reg.counter("hotspot_rounds_total", "BCR ranking rounds executed")
        .add(u64::from(rounds));
    reg.counter(
        "hotspot_bcr_evaluations_total",
        "candidate BCR evaluations across all ranking rounds",
    )
    .add(bcr_evaluations);
    reg.counter(
        "hotspot_reevaluations_total",
        "re-evaluation pull-backs (Algorithm 1 lines 16-20)",
    )
    .add(u64::from(reevaluations));
    let kept = schedules.iter().filter(|s| s.kept).count() as u64;
    reg.counter(
        "hotspot_schedules_kept_total",
        "schedules surviving the equal-cost rule",
    )
    .add(kept);
    reg.counter(
        "hotspot_schedules_discarded_total",
        "schedules discarded by the equal-cost rule",
    )
    .add(schedules.len() as u64 - kept);
}

/// Recomputes the cumulative benefit of caching `cached` in order (each
/// dataset's benefit is evaluated against the set cached before it).
fn replay_benefit(la: &LineageAnalysis<'_>, cached: &[DatasetId], et: &[f64]) -> f64 {
    let mut set: BTreeSet<DatasetId> = BTreeSet::new();
    let mut total = 0.0;
    for &d in cached {
        let pulls = la.pulls(&set);
        let n = pulls[d.index()];
        if n > 1 {
            total += (n - 1) as f64 * la.chain_cost(d, &set, et);
        }
        set.insert(d);
    }
    total
}

/// Orders the cached set into persist instructions (by first
/// materialization, then lineage order) and inserts the unpersist
/// instructions of lines 24–25.
fn assemble_schedule(la: &LineageAnalysis<'_>, cached: &[DatasetId]) -> Schedule {
    let mut ordered: Vec<DatasetId> = cached.to_vec();
    ordered.sort_by_key(|&d| (la.first_job_of(d), d));
    let mut ops: Vec<ScheduleOp> = Vec::with_capacity(ordered.len() * 2);
    for (i, &d) in ordered.iter().enumerate() {
        if i > 0 {
            let prev = ordered[i - 1];
            // Unpersist `prev` right before caching `d` if `d` descends
            // from it and every remaining use of `prev` flows through `d`.
            if la.is_descendant(d, prev) && la.all_remaining_uses_pass_through(prev, d) {
                ops.push(ScheduleOp::Unpersist(prev));
            }
        }
        ops.push(ScheduleOp::Persist(d));
    }
    Schedule::from_ops(ops)
}

/// Marks, among schedules with (approximately) equal memory budget, only
/// the one with the highest benefit as kept.
fn dedup_keep_flags(schedules: &[RankedSchedule], config: &HotspotConfig) -> Vec<bool> {
    let mut discard = vec![false; schedules.len()];
    for i in 0..schedules.len() {
        for j in 0..schedules.len() {
            if i == j || discard[i] || discard[j] {
                continue;
            }
            let a = schedules[i].budget_bytes as f64;
            let b = schedules[j].budget_bytes as f64;
            let close = (a - b).abs() <= config.cost_tolerance * a.max(b).max(1.0);
            if close {
                // Discard the lower benefit; ties discard the earlier one.
                let (lo, hi) = if schedules[i].benefit_s < schedules[j].benefit_s
                    || (schedules[i].benefit_s == schedules[j].benefit_s && i < j)
                {
                    (i, j)
                } else {
                    (j, i)
                };
                let _ = hi;
                discard[lo] = true;
            }
        }
    }
    discard.iter().map(|&d| !d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{AppBuilder, ComputeCost, NarrowKind, SourceFormat, WideKind};

    /// The paper's Figure-4 / §5.1 merged LOR DAG with the published
    /// metrics: the golden end-to-end test of Algorithm 1.
    fn paper_lor() -> (Application, DatasetMetricsView) {
        let mb = |x: f64| (x * 1_000_000.0) as u64;
        let mut b = AppBuilder::new("lor-fig4");
        let d0 = b.source("input", SourceFormat::DistributedFs, 70_000, mb(76.351), 8);
        let d1 = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[d0],
            70_000,
            mb(76.347),
            ComputeCost::FREE,
        );
        let d2 = b.narrow(
            "points",
            NarrowKind::Map,
            &[d1],
            70_000,
            mb(45.961),
            ComputeCost::FREE,
        );
        let v0 = b.narrow("check", NarrowKind::Map, &[d1], 1, 8, ComputeCost::FREE);
        b.job("count", v0);
        let v1 = b.narrow("stats", NarrowKind::Map, &[d2], 1, 8, ComputeCost::FREE);
        b.job("count", v1);
        let v2 = b.narrow(
            "sample",
            NarrowKind::Sample,
            &[d2],
            10,
            80,
            ComputeCost::FREE,
        );
        b.job("collect", v2);
        let d11 = b.narrow(
            "features",
            NarrowKind::Map,
            &[d2],
            70_000,
            mb(45.975),
            ComputeCost::FREE,
        );
        for i in 0..4 {
            let g = b.wide_with_partitions(
                format!("gradient[{i}]"),
                WideKind::TreeAggregate,
                &[d11],
                1,
                1024,
                1,
                ComputeCost::FREE,
            );
            b.job("treeAggregate", g);
        }
        let v7 = b.narrow("summary", NarrowKind::Map, &[d1], 1, 8, ComputeCost::FREE);
        b.job("collect", v7);
        let app = b.build().unwrap();
        let mut et = vec![0.0; app.dataset_count()];
        // Times from the §5.1 tables, converted ms → s.
        et[d0.index()] = 2.700;
        et[d1.index()] = 0.010;
        et[d2.index()] = 0.014;
        et[d11.index()] = 0.040;
        let size: Vec<u64> = app.datasets().iter().map(|d| d.bytes).collect();
        (app, DatasetMetricsView { et, size })
    }

    const D1: DatasetId = DatasetId(1);
    const D2: DatasetId = DatasetId(2);
    const D11: DatasetId = DatasetId(6); // id 6 in this fixture; "D11" in the paper

    /// End-to-end golden test: the §5.1 example must produce exactly two
    /// surviving schedules — `p(2)` and `p(1) p(2) u(2) p(11)` — with
    /// budgets 45.961 MB and 122.322 MB.
    #[test]
    fn golden_lor_example_schedules() {
        let (app, metrics) = paper_lor();
        let schedules = detect_hotspots(&app, &metrics, &HotspotConfig::default());
        assert_eq!(schedules.len(), 2, "{schedules:?}");

        let s1 = &schedules[0];
        assert_eq!(s1.schedule.ops(), &[ScheduleOp::Persist(D2)]);
        assert_eq!(s1.budget_bytes, 45_961_000);
        // Benefit of caching D2: (6−1) × (14 + 10 + 2700) ms.
        assert!(
            (s1.benefit_s - 5.0 * 2.724).abs() < 1e-9,
            "{}",
            s1.benefit_s
        );

        let s3 = &schedules[1];
        assert_eq!(
            s3.schedule.ops(),
            &[
                ScheduleOp::Persist(D1),
                ScheduleOp::Persist(D2),
                ScheduleOp::Unpersist(D2),
                ScheduleOp::Persist(D11),
            ],
            "got {}",
            s3.schedule
        );
        assert_eq!(s3.budget_bytes, 76_347_000 + 45_975_000);
        assert!(s3.benefit_s > s1.benefit_s);
    }

    /// The intermediate (discarded) schedule {D1, D11} ties the final one
    /// on budget; the survivor must be the higher-benefit one. After the
    /// re-evaluation reorders the set to [D1, D2, D11], the cumulative
    /// benefit is 7×2.710 (D1) + 5×0.014 (D2 | D1) + 3×0.040 (D11 | D1,D2)
    /// — strictly above the discarded {D1, D11} schedule's 7×2.710 +
    /// 3×0.054.
    #[test]
    fn golden_lor_winner_benefit() {
        let (app, metrics) = paper_lor();
        let schedules = detect_hotspots(&app, &metrics, &HotspotConfig::default());
        let expect = 7.0 * 2.710 + 5.0 * 0.014 + 3.0 * 0.040;
        assert!(
            (schedules[1].benefit_s - expect).abs() < 1e-9,
            "{} vs {expect}",
            schedules[1].benefit_s
        );
    }

    /// With no intermediates (a one-shot pipeline) there is nothing to
    /// cache.
    #[test]
    fn no_intermediates_no_schedules() {
        let mut b = AppBuilder::new("oneshot");
        let s = b.source("in", SourceFormat::DistributedFs, 10, 1000, 2);
        let m = b.narrow("m", NarrowKind::Map, &[s], 10, 1000, ComputeCost::FREE);
        b.job("count", m);
        let app = b.build().unwrap();
        let metrics = DatasetMetricsView {
            et: vec![1.0, 1.0],
            size: vec![1000, 1000],
        };
        assert!(detect_hotspots(&app, &metrics, &HotspotConfig::default()).is_empty());
    }

    /// Negligible-benefit intermediates are pruned: a dataset recomputed
    /// twice but costing microseconds must not spawn a schedule.
    #[test]
    fn benefit_threshold_prunes_noise() {
        let mut b = AppBuilder::new("noise");
        let s = b.source("in", SourceFormat::DistributedFs, 10, 1_000_000, 2);
        let shared = b.narrow(
            "shared",
            NarrowKind::Map,
            &[s],
            10,
            1_000_000,
            ComputeCost::FREE,
        );
        let a = b.narrow("a", NarrowKind::Map, &[shared], 1, 8, ComputeCost::FREE);
        b.job("count", a);
        let c = b.narrow("c", NarrowKind::Map, &[shared], 1, 8, ComputeCost::FREE);
        b.job("count", c);
        let app = b.build().unwrap();
        let mut metrics = DatasetMetricsView {
            et: vec![0.000_1; app.dataset_count()],
            size: app.datasets().iter().map(|d| d.bytes).collect(),
        };
        // Benefit of `shared` = 1 × (0.0001 + 0.0001) < 5 ms threshold.
        assert!(detect_hotspots(&app, &metrics, &HotspotConfig::default()).is_empty());
        // Raise its cost above the threshold: one schedule appears.
        metrics.et[1] = 1.0;
        let schedules = detect_hotspots(&app, &metrics, &HotspotConfig::default());
        assert_eq!(schedules.len(), 1);
        assert_eq!(schedules[0].schedule.persisted(), vec![DatasetId(1)]);
    }

    /// The single-child rule: when a parent is cached, its only child never
    /// enters a schedule.
    #[test]
    fn single_child_exclusion() {
        let mut b = AppBuilder::new("singlechild");
        let s = b.source("in", SourceFormat::DistributedFs, 10, 1_000_000, 2);
        // `only` is s's single child; both are reused by two jobs.
        let only = b.narrow(
            "only",
            NarrowKind::Map,
            &[s],
            10,
            1_000_000,
            ComputeCost::FREE,
        );
        let a = b.narrow("a", NarrowKind::Map, &[only], 1, 8, ComputeCost::FREE);
        b.job("count", a);
        let c = b.narrow("c", NarrowKind::Map, &[only], 1, 8, ComputeCost::FREE);
        b.job("count", c);
        let app = b.build().unwrap();
        // `only` is bulkier than its parent, so the source wins round one
        // on BCR; afterwards `only` (the cached source's single child) is
        // excluded even though its residual benefit is well above the
        // pruning floor.
        let metrics = DatasetMetricsView {
            et: vec![5.0, 0.5, 0.0, 0.0],
            size: vec![1_000_000, 2_000_000, 8, 8],
        };
        let schedules = detect_hotspots(&app, &metrics, &HotspotConfig::default());
        assert_eq!(schedules.len(), 1, "{schedules:?}");
        assert_eq!(schedules[0].schedule.persisted(), vec![DatasetId(0)]);
    }

    /// Schedules are monotone: each later schedule has at least the benefit
    /// and budget of earlier ones (the paper: "By caching more datasets in
    /// subsequent SCHEDULES, both the benefit and memory budget increase").
    #[test]
    fn schedules_are_monotone() {
        let (app, metrics) = paper_lor();
        let schedules = detect_hotspots(&app, &metrics, &HotspotConfig::default());
        for w in schedules.windows(2) {
            assert!(w[1].benefit_s >= w[0].benefit_s);
            assert!(w[1].budget_bytes >= w[0].budget_bytes);
        }
    }

    /// Two shared intermediates off one source: `big` (10 MB, 10 s) and
    /// `small` (1 MB, 0.9 s), each recomputed by two jobs.
    fn contended_pair() -> (Application, DatasetMetricsView) {
        let mut b = AppBuilder::new("contended");
        let s = b.source("in", SourceFormat::DistributedFs, 10, 1_000, 2);
        let big = b.narrow(
            "big",
            NarrowKind::Map,
            &[s],
            10,
            10_000_000,
            ComputeCost::FREE,
        );
        let small = b.narrow(
            "small",
            NarrowKind::Map,
            &[s],
            10,
            1_000_000,
            ComputeCost::FREE,
        );
        for (i, &d) in [big, small].iter().enumerate() {
            for j in 0..2 {
                let leaf = b.narrow(
                    format!("leaf{i}{j}"),
                    NarrowKind::Map,
                    &[d],
                    1,
                    8,
                    ComputeCost::FREE,
                );
                b.job("count", leaf);
            }
        }
        let app = b.build().unwrap();
        let mut et = vec![0.0; app.dataset_count()];
        et[big.index()] = 10.0;
        et[small.index()] = 0.9;
        let size: Vec<u64> = app.datasets().iter().map(|d| d.bytes).collect();
        (app, DatasetMetricsView { et, size })
    }

    /// An explicit `pressure: 0.0` is the single-tenant algorithm — the
    /// full audited output is identical to the default configuration.
    #[test]
    fn zero_pressure_is_identity() {
        let (app, metrics) = paper_lor();
        let base = detect_hotspots_audited(&app, &metrics, &HotspotConfig::default());
        let zero = detect_hotspots_audited(
            &app,
            &metrics,
            &HotspotConfig {
                pressure: 0.0,
                ..HotspotConfig::default()
            },
        );
        assert_eq!(base.0, zero.0);
        assert_eq!(base.1, zero.1);
        assert_eq!(base.1.pressure, 0.0);
    }

    /// Pressure discounts large candidates harder: `big` wins the first
    /// round on raw BCR, but under contention its expected residency
    /// shrinks and `small` overtakes it.
    #[test]
    fn pressure_discounts_large_candidates() {
        let (app, metrics) = contended_pair();
        let calm = detect_hotspots(&app, &metrics, &HotspotConfig::default());
        assert_eq!(
            calm[0].schedule.persisted(),
            vec![DatasetId(1)],
            "big first"
        );

        let config = HotspotConfig {
            pressure: 10.0,
            ..HotspotConfig::default()
        };
        let (pressed, audit) = detect_hotspots_audited(&app, &metrics, &config);
        assert_eq!(
            pressed[0].schedule.persisted(),
            vec![DatasetId(2)],
            "small overtakes under pressure"
        );
        assert_eq!(audit.pressure, 10.0);
    }

    /// Extreme pressure drives every candidate's discounted benefit under
    /// the pruning floor: nothing is worth caching when residency is nil.
    #[test]
    fn extreme_pressure_prunes_everything() {
        let (app, metrics) = contended_pair();
        let config = HotspotConfig {
            pressure: 1e9,
            ..HotspotConfig::default()
        };
        assert!(detect_hotspots(&app, &metrics, &config).is_empty());
    }

    /// The reported cumulative benefits are never discounted, so the
    /// schedule family stays monotone under pressure too.
    #[test]
    fn pressured_schedules_stay_monotone() {
        let (app, metrics) = paper_lor();
        let config = HotspotConfig {
            pressure: 0.6,
            ..HotspotConfig::default()
        };
        let schedules = detect_hotspots(&app, &metrics, &config);
        assert!(!schedules.is_empty());
        for w in schedules.windows(2) {
            assert!(w[1].benefit_s >= w[0].benefit_s);
            assert!(w[1].budget_bytes >= w[0].budget_bytes);
        }
    }
}
