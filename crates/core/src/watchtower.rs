//! The health watchtower: folds stored run history into per-model
//! health series, runs the `obs::health` drift detectors over them, and
//! evaluates the result against a declarative error budget.
//!
//! The fold consumes [`RunManifest`]s **oldest-first** and builds, per
//! fitted model, two fixed-point series:
//!
//! * **Prediction-error series** — per-validation-entry relative errors
//!   for time models (matched by schedule index), the manifest-level
//!   mean size error for size models. Page–Hinkley watches this for
//!   sustained mean shifts; an EWMA band (seedable from training
//!   holdout residuals) flags outliers.
//! * **Coefficient-deviation series** — the worst relative deviation of
//!   any coefficient from the *first* manifest in the window (a spec
//!   change counts as 100 %). A one-sided CUSUM watches this: recorded
//!   prediction errors are frozen at training time, so a model whose
//!   coefficients silently walked away from the baseline is only
//!   visible here. This is the detector the drift drill must trip.
//!
//! Everything downstream of `to_micro` is integer arithmetic, so a
//! [`HealthReport`] — verdicts, onsets, magnitudes, digest — is
//! bit-identical at any `JUGGLER_THREADS`, across repeat folds, and
//! across machines. Like run manifests, reports are content-addressed
//! (the digest covers no wall-clock) and stored via [`obs::LedgerStore`].

use serde::{Deserialize, Serialize};

use obs::health::{to_micro, Cusum, EwmaBand, PageHinkley, SloSpec, Verdict, MICRO};

use crate::provenance::RunManifest;

/// Detector thresholds, in micro-units. The defaults are tuned to the
/// repo's determinism contract: coefficient deviation in a healthy
/// ledger is exactly zero (training is bit-deterministic), so the CUSUM
/// slack only needs to absorb fixed-point rounding, while the
/// error-stream detectors absorb the few-percent scatter real
/// validation errors show.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorTuning {
    /// CUSUM slack on the coefficient-deviation stream.
    pub coeff_slack_micro: i64,
    /// CUSUM alarm threshold on the coefficient-deviation stream.
    pub coeff_threshold_micro: i64,
    /// Page–Hinkley per-sample slack on the prediction-error stream.
    pub err_delta_micro: i64,
    /// Page–Hinkley alarm threshold on the prediction-error stream.
    pub err_lambda_micro: i64,
    /// EWMA smoothing numerator (alpha = num/den).
    pub ewma_num: i64,
    /// EWMA smoothing denominator.
    pub ewma_den: i64,
    /// EWMA band half-width in deviations.
    pub ewma_k: i64,
    /// EWMA minimum band half-width.
    pub ewma_min_band_micro: i64,
}

impl Default for DetectorTuning {
    fn default() -> Self {
        DetectorTuning {
            // Healthy coefficient deviation is 0 exactly; 1 % slack and
            // a 10 % cumulative threshold mean a 50 % perturbation fires
            // on the very sample it appears.
            coeff_slack_micro: 10_000,
            coeff_threshold_micro: 100_000,
            // Prediction errors sit in the 5–10 % range for the bundled
            // workloads; 0.5 % slack + 15 % cumulative threshold needs a
            // sustained shift, not one bad run.
            err_delta_micro: 5_000,
            err_lambda_micro: 150_000,
            ewma_num: 1,
            ewma_den: 4,
            ewma_k: 4,
            ewma_min_band_micro: 20_000,
        }
    }
}

/// Health of one fitted model over the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelHealth {
    /// Model name as recorded in manifests (`time [0]`, `size D2`).
    pub name: String,
    /// Manifests in the window that carry this model.
    pub runs: u64,
    /// Mean prediction-error sample, micro-units (-1 when no samples).
    pub mean_err_micro: i64,
    /// p50 upper bound of the error samples, micro-units (-1 when none).
    pub p50_err_micro: i64,
    /// p95 upper bound, micro-units (-1 when none).
    pub p95_err_micro: i64,
    /// p99 upper bound, micro-units (-1 when none).
    pub p99_err_micro: i64,
    /// Worst coefficient deviation from the window baseline.
    pub max_coeff_dev_micro: i64,
    /// The model's verdict.
    pub verdict: Verdict,
}

/// Error-budget accounting over the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetHealth {
    /// Runs evaluated.
    pub runs: u64,
    /// Runs whose recorded mean errors breached the SLO.
    pub breaches: u64,
    /// Longest streak of consecutive breaching runs.
    pub max_consecutive: u64,
    /// Budget burn rate, micro-units (1 000 000 = budget exhausted):
    /// breaching fraction ÷ allowed fraction.
    pub burn_rate_micro: i64,
    /// The budget verdict.
    pub verdict: Verdict,
}

/// Actionable refit guidance for one drifted model — the contract the
/// future online-calibration loop consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefitAdvice {
    /// Drifted model name.
    pub model: String,
    /// Model family (the recorded winning spec) to refit within.
    pub family: String,
    /// Why a refit is advised (the verdict detail).
    pub reason: String,
    /// `(examples, features)` probe points to re-run, smallest first —
    /// the diagonal of the training grid scaled to the latest params.
    pub probe_examples: Vec<u64>,
    /// Features per probe (parallel to `probe_examples`).
    pub probe_features: Vec<u64>,
    /// Expected refit cost in machine-minutes, from the recorded
    /// per-run training cost × probe count.
    pub expected_cost_machine_minutes: f64,
}

/// The content-addressed output of one watchtower fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Workload the window covers.
    pub workload: String,
    /// Run ids in fold order (oldest first).
    pub window: Vec<String>,
    /// The SLO the window was evaluated against.
    pub slo: SloSpec,
    /// Per-model health, time models first.
    pub models: Vec<ModelHealth>,
    /// Error-budget accounting.
    pub budget: BudgetHealth,
    /// Worst verdict across models and budget.
    pub verdict: Verdict,
    /// One advice entry per drifted model.
    pub advice: Vec<RefitAdvice>,
}

/// The watchtower: an SLO plus detector tuning, ready to fold windows.
#[derive(Debug, Clone, Default)]
pub struct Watchtower {
    /// The error budget to evaluate against.
    pub slo: SloSpec,
    /// Detector thresholds.
    pub tuning: DetectorTuning,
}

/// Schema version of the cached [`RunSample`] projection. Bump when the
/// extraction changes shape or meaning; stale caches are discarded and
/// rebuilt from the manifests, never migrated.
pub const SAMPLE_SCHEMA_VERSION: u32 = 1;

/// One model's slice of a [`RunSample`]: identity (name + family spec),
/// the fitted coefficients (the CUSUM's subject), and the prediction
/// -error samples this manifest contributes to the model's series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSample {
    /// Model name as recorded in manifests (`time [0]`, `size D2`).
    pub name: String,
    /// Winning model-family spec (a spec change reads as 100 % drift).
    pub spec: String,
    /// Fitted coefficients.
    pub coeffs: Vec<f64>,
    /// Prediction-error samples, micro-units: one per validation entry
    /// of the model's schedule for time models, the manifest-level mean
    /// for size models (empty when unrecorded).
    pub err_micro: Vec<i64>,
}

/// The compact, content-addressed projection of one [`RunManifest`] —
/// everything a fold reads, at ~3 % of the manifest's bytes. Keyed by
/// the manifest's run id (a content-hash prefix), so a cached sample
/// can never go stale: a different manifest is a different id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSample {
    /// Run id of the manifest this projects.
    pub id: String,
    /// Workload name.
    pub workload: String,
    /// Training-grid `examples` at recording time (refit probe anchor).
    pub examples: u64,
    /// Training-grid `features` at recording time.
    pub features: u64,
    /// Per-model slices, time models first (schedule order).
    pub models: Vec<ModelSample>,
    /// Recorded window-mean time prediction error (negative if absent).
    pub mean_time_rel_error: f64,
    /// Recorded mean size prediction error (negative if absent).
    pub mean_size_rel_error: f64,
    /// Simulated runs in the time-model training stage.
    pub time_stage_runs: u32,
    /// Machine-minutes of the time-model training stage.
    pub time_stage_machine_minutes: f64,
    /// Simulated runs in the parameter-calibration stage.
    pub size_stage_runs: u32,
    /// Machine-minutes of the parameter-calibration stage.
    pub size_stage_machine_minutes: f64,
}

impl RunSample {
    /// Projects a manifest down to its fold-relevant sample.
    #[must_use]
    pub fn extract(manifest: &RunManifest) -> Self {
        let c = &manifest.content;
        let mut models = Vec::with_capacity(c.time_models.len() + c.size_models.len());
        for r in &c.time_models {
            let mut err_micro = Vec::new();
            if let Some(index) = schedule_index_of(&r.name) {
                for entry in &c.predictions.entries {
                    if entry.schedule_index == index {
                        err_micro.push(to_micro(rel_error(
                            entry.predicted_time_s,
                            entry.actual_time_s,
                        )));
                    }
                }
            }
            models.push(ModelSample {
                name: r.name.clone(),
                spec: r.model.spec.clone(),
                coeffs: r.model.coeffs.clone(),
                err_micro,
            });
        }
        for r in &c.size_models {
            let err_micro = if c.predictions.mean_size_rel_error >= 0.0 {
                vec![to_micro(c.predictions.mean_size_rel_error)]
            } else {
                Vec::new()
            };
            models.push(ModelSample {
                name: r.name.clone(),
                spec: r.model.spec.clone(),
                coeffs: r.model.coeffs.clone(),
                err_micro,
            });
        }
        RunSample {
            id: manifest.id(),
            workload: c.workload.clone(),
            examples: c.params.examples,
            features: c.params.features,
            models,
            mean_time_rel_error: c.predictions.mean_time_rel_error,
            mean_size_rel_error: c.predictions.mean_size_rel_error,
            time_stage_runs: c.training_costs.time_models.runs,
            time_stage_machine_minutes: c.training_costs.time_models.machine_minutes,
            size_stage_runs: c.training_costs.param_calibration.runs,
            size_stage_machine_minutes: c.training_costs.param_calibration.machine_minutes,
        }
    }
}

/// A named residual series used to warm-start a model's EWMA band
/// (see [`modeling::FitReport::residual_micro_series`]).
#[derive(Debug, Clone)]
pub struct ResidualSeed {
    /// Model name the seed belongs to (`time [0]`, `size D2`).
    pub model: String,
    /// Training holdout residuals, micro-units.
    pub residuals_micro: Vec<i64>,
}

impl Watchtower {
    /// A watchtower with the given SLO and default detector tuning.
    #[must_use]
    pub fn new(slo: SloSpec) -> Self {
        Watchtower {
            slo,
            tuning: DetectorTuning::default(),
        }
    }

    /// Folds a window of manifests (oldest first) into a health report.
    #[must_use]
    pub fn fold(&self, manifests: &[RunManifest]) -> HealthReport {
        self.fold_seeded(manifests, &[])
    }

    /// [`Self::fold`] with EWMA bands warm-started from training
    /// holdout residuals.
    #[must_use]
    pub fn fold_seeded(&self, manifests: &[RunManifest], seeds: &[ResidualSeed]) -> HealthReport {
        let samples: Vec<RunSample> = manifests.iter().map(RunSample::extract).collect();
        self.fold_samples(&samples, seeds)
    }

    /// The fold itself, over pre-extracted samples (oldest first). This
    /// is the streaming entry point: [`Self::fold`] is exactly
    /// `fold_samples(extract each)`, so folding cached samples is
    /// bit-identical to folding the manifests they project.
    #[must_use]
    pub fn fold_samples(&self, samples: &[RunSample], seeds: &[ResidualSeed]) -> HealthReport {
        let workload = samples
            .first()
            .map(|s| s.workload.clone())
            .unwrap_or_default();
        let window: Vec<String> = samples.iter().map(|s| s.id.clone()).collect();

        let mut models = Vec::new();
        for name in model_names(samples) {
            models.push(self.model_health(&name, samples, &window, seeds));
        }
        let budget = self.budget_health(samples, &window);

        let mut verdict = budget.verdict.clone();
        for m in &models {
            verdict = verdict.worst(m.verdict.clone());
        }

        let advice = models
            .iter()
            .filter(|m| matches!(m.verdict, Verdict::Drifted { .. }))
            .map(|m| refit_advice(m, samples))
            .collect();

        HealthReport {
            workload,
            window,
            slo: self.slo.clone(),
            models,
            budget,
            verdict,
            advice,
        }
    }

    /// Builds one model's series, runs the detectors, and scores it.
    fn model_health(
        &self,
        name: &str,
        samples: &[RunSample],
        window: &[String],
        seeds: &[ResidualSeed],
    ) -> ModelHealth {
        let t = &self.tuning;
        // (sample, window index it came from) so a firing maps back to
        // the onset run id.
        let mut err_series: Vec<(i64, usize)> = Vec::new();
        let mut coeff_series: Vec<(i64, usize)> = Vec::new();
        let mut runs = 0u64;
        let mut baseline: Option<&ModelSample> = None;
        for (idx, sample) in samples.iter().enumerate() {
            let Some(record) = sample.models.iter().find(|m| m.name == name) else {
                continue;
            };
            runs += 1;
            let base = baseline.get_or_insert(record);
            coeff_series.push((coeff_deviation_micro(base, record), idx));
            for &err in &record.err_micro {
                err_series.push((err, idx));
            }
        }

        let mut cusum = Cusum::new(0, t.coeff_slack_micro, t.coeff_threshold_micro);
        let mut coeff_onset = None;
        let mut max_coeff_dev = 0i64;
        for &(x, idx) in &coeff_series {
            max_coeff_dev = max_coeff_dev.max(x);
            if cusum.observe(x) {
                coeff_onset = Some(idx);
            }
        }

        let mut ph = PageHinkley::new(t.err_delta_micro, t.err_lambda_micro);
        let mut band = EwmaBand::new(t.ewma_num, t.ewma_den, t.ewma_k, t.ewma_min_band_micro);
        if let Some(seed) = seeds.iter().find(|s| s.model == name) {
            band.seed(&seed.residuals_micro);
        }
        let mut ph_onset = None;
        let mut band_onset = None;
        for &(x, idx) in &err_series {
            if ph.observe(x) {
                ph_onset = Some(idx);
            }
            if band.observe(x) && band_onset.is_none() {
                band_onset = Some(idx);
            }
        }

        // CUSUM-on-coefficients outranks Page–Hinkley: a coefficient
        // shift is drift by construction, while an error shift could
        // still be the environment.
        let verdict = if let (Some(onset), Some(firing)) = (coeff_onset, cusum.fired()) {
            Verdict::Drifted {
                detector: "cusum(coeff)".to_owned(),
                onset_run: window[onset].clone(),
                magnitude_micro: firing.magnitude_micro,
            }
        } else if let (Some(onset), Some(firing)) = (ph_onset, ph.fired()) {
            Verdict::Drifted {
                detector: "page_hinkley(err)".to_owned(),
                onset_run: window[onset].clone(),
                magnitude_micro: firing.magnitude_micro,
            }
        } else if let (Some(_), Some(firing)) = (band_onset, band.fired()) {
            Verdict::Warn {
                signal: "ewma_band(err)".to_owned(),
                value_micro: firing.magnitude_micro,
            }
        } else {
            Verdict::Healthy
        };

        let (mean, p50, p95, p99) = err_stats(&err_series);
        ModelHealth {
            name: name.to_owned(),
            runs,
            mean_err_micro: mean,
            p50_err_micro: p50,
            p95_err_micro: p95,
            p99_err_micro: p99,
            max_coeff_dev_micro: max_coeff_dev,
            verdict,
        }
    }

    /// Evaluates the per-run recorded means against the error budget.
    fn budget_health(&self, samples: &[RunSample], window: &[String]) -> BudgetHealth {
        let max_time = to_micro(self.slo.max_mean_time_rel_error);
        let max_size = to_micro(self.slo.max_mean_size_rel_error);
        let mut breaches = 0u64;
        let mut streak = 0u64;
        let mut max_consecutive = 0u64;
        let mut exhausted_at: Option<usize> = None;
        for (idx, s) in samples.iter().enumerate() {
            let time_breach =
                s.mean_time_rel_error >= 0.0 && to_micro(s.mean_time_rel_error) > max_time;
            let size_breach =
                s.mean_size_rel_error >= 0.0 && to_micro(s.mean_size_rel_error) > max_size;
            if time_breach || size_breach {
                breaches += 1;
                streak += 1;
                max_consecutive = max_consecutive.max(streak);
                if streak > u64::from(self.slo.max_consecutive_breaches) && exhausted_at.is_none() {
                    exhausted_at = Some(idx);
                }
            } else {
                streak = 0;
            }
        }
        let runs = samples.len() as u64;
        let burn_rate_micro = if runs == 0 {
            0
        } else {
            let breach_fraction = i128::from(breaches) * i128::from(MICRO) / i128::from(runs);
            let allowed = i128::from(to_micro(self.slo.budget_breach_fraction).max(1));
            i64::try_from(breach_fraction * i128::from(MICRO) / allowed).unwrap_or(i64::MAX)
        };
        let verdict = if let Some(idx) = exhausted_at {
            Verdict::Drifted {
                detector: "error_budget".to_owned(),
                onset_run: window[idx].clone(),
                magnitude_micro: burn_rate_micro,
            }
        } else if runs > 0 && burn_rate_micro >= to_micro(self.slo.warn_burn_rate) {
            Verdict::Warn {
                signal: "budget_burn".to_owned(),
                value_micro: burn_rate_micro,
            }
        } else {
            Verdict::Healthy
        };
        BudgetHealth {
            runs,
            breaches,
            max_consecutive,
            burn_rate_micro,
            verdict,
        }
    }
}

/// Relative error `|predicted − actual| / |actual|` (absolute error when
/// the actual is ~zero) — the same formula `LedgerEntry` uses, repeated
/// here so stored manifests never need the live types.
fn rel_error(predicted: f64, actual: f64) -> f64 {
    let diff = (predicted - actual).abs();
    if actual.abs() < 1e-12 {
        diff
    } else {
        diff / actual.abs()
    }
}

/// All model names in the window: time models first (in first-seen
/// order, which is schedule order), then size models. Samples keep each
/// run's time models ahead of its size models, so first-seen order over
/// `name.starts_with("time")` reproduces the manifest ordering.
fn model_names(samples: &[RunSample]) -> Vec<String> {
    let mut names = Vec::new();
    let push_new = |name: &String, names: &mut Vec<String>| {
        if !names.contains(name) {
            names.push(name.clone());
        }
    };
    for s in samples {
        for m in s.models.iter().filter(|m| m.name.starts_with("time")) {
            push_new(&m.name, &mut names);
        }
    }
    for s in samples {
        for m in s.models.iter().filter(|m| !m.name.starts_with("time")) {
            push_new(&m.name, &mut names);
        }
    }
    names
}

/// `time [3]` → `Some(3)`.
fn schedule_index_of(name: &str) -> Option<usize> {
    name.strip_prefix("time [")?.strip_suffix(']')?.parse().ok()
}

/// Worst relative coefficient deviation from the baseline sample, in
/// micro-units. A spec (model-family) change counts as a full 100 %.
fn coeff_deviation_micro(baseline: &ModelSample, current: &ModelSample) -> i64 {
    if baseline.spec != current.spec || baseline.coeffs.len() != current.coeffs.len() {
        return MICRO;
    }
    let mut worst = 0i64;
    for (b, c) in baseline.coeffs.iter().zip(&current.coeffs) {
        let dev = (c - b).abs() / b.abs().max(1e-12);
        worst = worst.max(to_micro(dev));
    }
    worst
}

/// Mean and p50/p95/p99 of an error series via the shared log2-bucket
/// quantile estimator (-1 marks an empty series).
fn err_stats(series: &[(i64, usize)]) -> (i64, i64, i64, i64) {
    if series.is_empty() {
        return (-1, -1, -1, -1);
    }
    let mut sum = 0i128;
    let mut buckets = vec![0u64; obs::HIST_BUCKETS];
    for &(x, _) in series {
        sum += i128::from(x);
        let v = u64::try_from(x.max(0)).unwrap_or(0);
        let bucket = if v == 0 { 0 } else { v.ilog2() as usize };
        buckets[bucket] += 1;
    }
    let count = series.len() as u64;
    let mean = i64::try_from(sum / i128::from(count)).unwrap_or(i64::MAX);
    let q = |num: u64| {
        obs::log2_quantile(&buckets, count, num, 100)
            .and_then(|v| i64::try_from(v).ok())
            .unwrap_or(-1)
    };
    (mean, q(50), q(95), q(99))
}

/// Builds the refit advice for one drifted model from the newest
/// sample's parameters and recorded training costs.
fn refit_advice(model: &ModelHealth, samples: &[RunSample]) -> RefitAdvice {
    let latest = samples.last().expect("drifted model implies samples");
    let probe_examples = vec![
        (latest.examples / 4).max(1),
        (latest.examples / 2).max(1),
        latest.examples.max(1),
    ];
    let probe_features = vec![
        (latest.features / 4).max(1),
        (latest.features / 2).max(1),
        latest.features.max(1),
    ];
    let (stage_runs, stage_minutes) = if model.name.starts_with("time") {
        (latest.time_stage_runs, latest.time_stage_machine_minutes)
    } else {
        (latest.size_stage_runs, latest.size_stage_machine_minutes)
    };
    let per_run = if stage_runs == 0 {
        0.0
    } else {
        stage_minutes / f64::from(stage_runs)
    };
    let family = latest
        .models
        .iter()
        .find(|m| m.name == model.name)
        .map(|m| m.spec.clone())
        .unwrap_or_default();
    RefitAdvice {
        model: model.name.clone(),
        family,
        reason: model.verdict.detail(),
        probe_examples,
        probe_features,
        expected_cost_machine_minutes: per_run * 3.0,
    }
}

impl HealthReport {
    /// The canonical serialization the digest covers: compact JSON,
    /// struct fields in declaration order. No wall-clock value exists
    /// anywhere in the structure.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("HealthReport always serializes")
    }

    /// SHA-256 over [`Self::canonical_json`] — the report's identity.
    #[must_use]
    pub fn digest(&self) -> String {
        obs::sha256_hex(self.canonical_json().as_bytes())
    }

    /// Pretty JSON for the health store (trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("HealthReport always serializes");
        s.push('\n');
        s
    }

    /// Parses a stored report.
    pub fn from_json(raw: &str) -> Result<Self, String> {
        serde_json::from_str(raw).map_err(|e| format!("health report: {e}"))
    }

    /// Deterministic human-readable rendering (the `--format tree`
    /// output, and the golden-test surface).
    #[must_use]
    pub fn render_tree(&self) -> String {
        use obs::health::fmt_micro_pct as pct;
        let mut out = format!("juggler health — {}\n", self.workload);
        match (self.window.first(), self.window.last()) {
            (Some(first), Some(last)) if self.window.len() > 1 => {
                out.push_str(&format!(
                    "  window: {} runs, {first} .. {last} (oldest first)\n",
                    self.window.len()
                ));
            }
            (Some(only), _) => {
                out.push_str(&format!("  window: 1 run, {only}\n"));
            }
            _ => out.push_str("  window: empty\n"),
        }
        out.push_str(&format!("  slo: {}\n", self.slo.summary()));
        let b = &self.budget;
        out.push_str(&format!(
            "  budget: {} runs, {} breaches, max streak {}, burn {}  → {}\n",
            b.runs,
            b.breaches,
            b.max_consecutive,
            pct(b.burn_rate_micro),
            b.verdict.detail()
        ));
        out.push_str("  models\n");
        for m in &self.models {
            let errs = if m.mean_err_micro < 0 {
                "no error samples".to_owned()
            } else {
                format!(
                    "err mean {} p50<={} p95<={} p99<={}",
                    pct(m.mean_err_micro),
                    pct(m.p50_err_micro),
                    pct(m.p95_err_micro),
                    pct(m.p99_err_micro)
                )
            };
            out.push_str(&format!(
                "    {:<9} runs {:>3}  {errs}  coeff dev {}  → {}\n",
                m.name,
                m.runs,
                pct(m.max_coeff_dev_micro),
                m.verdict.detail()
            ));
        }
        if !self.advice.is_empty() {
            out.push_str("  refit advice\n");
            for a in &self.advice {
                let probes: Vec<String> = a
                    .probe_examples
                    .iter()
                    .zip(&a.probe_features)
                    .map(|(e, f)| format!("({e}, {f})"))
                    .collect();
                out.push_str(&format!(
                    "    {}: refit `{}` at probes {} — expected cost {} machine-min\n",
                    a.model,
                    a.family,
                    probes.join(", "),
                    obs::fmt_sig(a.expected_cost_machine_minutes, 3)
                ));
            }
        }
        out.push_str(&format!("  verdict: {}\n", self.verdict.detail()));
        out
    }

    /// Registers the report's gauges/counters/histograms into `registry`
    /// (the `/healthz` surface: `juggler health --format prom` exports a
    /// snapshot of exactly these).
    pub fn register_metrics(&self, registry: &obs::Registry) {
        registry
            .gauge(
                "health_level",
                "overall health verdict level (0 healthy, 1 warn, 2 drifted)",
                obs::MetricClass::Deterministic,
            )
            .set(f64::from(self.verdict.level()));
        registry
            .counter("health_runs_scanned_total", "runs folded into the report")
            .add(self.budget.runs);
        registry
            .counter(
                "health_budget_breaches_total",
                "runs that breached the error budget",
            )
            .add(self.budget.breaches);
        registry
            .gauge(
                "health_budget_burn_micro",
                "error-budget burn rate in micro-units (1e6 = exhausted)",
                obs::MetricClass::Deterministic,
            )
            .set(self.budget.burn_rate_micro as f64);
        let hist = registry.histogram(
            "health_model_err_micro",
            "per-model mean prediction error samples, micro-units",
        );
        for m in &self.models {
            registry
                .gauge(
                    &format!("health_model_{}_level", sanitize_metric(&m.name)),
                    "model verdict level (0 healthy, 1 warn, 2 drifted)",
                    obs::MetricClass::Deterministic,
                )
                .set(f64::from(m.verdict.level()));
            if m.mean_err_micro >= 0 {
                hist.record(u64::try_from(m.mean_err_micro).unwrap_or(0));
            }
        }
    }
}

/// `time [0]` → `time_0`: lowercase alphanumerics and underscores only,
/// runs collapsed — a legal Prometheus metric-name fragment.
fn sanitize_metric(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_underscore = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_underscore = false;
        } else if !last_underscore {
            out.push('_');
            last_underscore = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Loads the fold window for `workload` from a run-ledger store:
/// newest-first listing filtered by workload, truncated to `limit`
/// (0 = unlimited) and to runs no older than `since` (an id prefix),
/// then reversed to oldest-first parsed manifests. Unparseable files
/// are skipped with a warning.
pub fn load_history(
    store: &obs::LedgerStore,
    workload: &str,
    since: Option<&str>,
    limit: usize,
) -> Result<Vec<RunManifest>, String> {
    let entries = store
        .entries()
        .map_err(|e| format!("reading ledger {}: {e}", store.root().display()))?;
    // Walk newest-first with a single typed parse per file; stop as soon
    // as the window is satisfied so `--limit` never parses older runs.
    let mut manifests: Vec<RunManifest> = Vec::new();
    let mut since_seen = since.is_none();
    for entry in entries {
        let raw = std::fs::read_to_string(&entry.path)
            .map_err(|e| format!("reading {}: {e}", entry.path.display()))?;
        let manifest = match RunManifest::from_json(&raw) {
            Ok(m) => m,
            Err(e) => {
                obs::log_warn!("health: skipping {}: {e}", entry.path.display());
                continue;
            }
        };
        if manifest.content.workload != workload {
            continue;
        }
        let is_since = since.is_some_and(|prefix| entry.id.starts_with(prefix));
        manifests.push(manifest);
        if is_since {
            since_seen = true;
            break;
        }
        if limit > 0 && since.is_none() && manifests.len() == limit {
            break;
        }
    }
    if !since_seen {
        let prefix = since.unwrap_or_default();
        return Err(format!("--since {prefix}: no matching run for {workload}"));
    }
    if limit > 0 {
        manifests.truncate(limit);
    }
    manifests.reverse();
    Ok(manifests)
}

/// On-disk sample cache: one compact document holding the projection of
/// every manifest the fold has already seen, keyed by run id. Run ids
/// are content hashes, so a cached sample can never go stale — a changed
/// manifest is a *different* run. Corrupt, missing, or old-schema caches
/// are rebuilt silently from the manifests.
///
/// The format is deliberately *not* JSON: the cache exists to make the
/// steady-state `juggler health` cheap, and parsing a multi-hundred-run
/// JSON document would cost more than the fold it saves. Instead it is
/// a tab-separated line format — `run` lines carry the scalar fields,
/// `model` lines the per-model series — with every f64 stored as its
/// IEEE-754 bit pattern in hex, so a round trip is exact and parsing is
/// `u64::from_str_radix`. Any malformed line invalidates the whole
/// cache (rebuilt from manifests, never half-read), which also covers
/// the pathological case of a model name containing a tab.
const SAMPLE_CACHE_MAGIC: &str = "juggler-sample-cache";

fn fmt_bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_bits(field: &str) -> Option<f64> {
    u64::from_str_radix(field, 16).ok().map(f64::from_bits)
}

fn read_sample_cache(path: &std::path::Path) -> std::collections::HashMap<String, RunSample> {
    let Ok(raw) = std::fs::read_to_string(path) else {
        return std::collections::HashMap::new();
    };
    match parse_sample_cache(&raw) {
        Some(samples) => samples,
        None => {
            obs::log_warn!("health: rebuilding stale sample cache {}", path.display());
            std::collections::HashMap::new()
        }
    }
}

fn parse_sample_cache(raw: &str) -> Option<std::collections::HashMap<String, RunSample>> {
    let mut lines = raw.lines();
    let header = lines.next()?;
    let version = header.strip_prefix(SAMPLE_CACHE_MAGIC)?.trim();
    if version.parse::<u32>().ok()? != SAMPLE_SCHEMA_VERSION {
        return None;
    }
    let mut samples = std::collections::HashMap::new();
    let mut current: Option<RunSample> = None;
    for line in lines {
        let mut f = line.split('\t');
        match f.next()? {
            "run" => {
                if let Some(done) = current.take() {
                    samples.insert(done.id.clone(), done);
                }
                current = Some(RunSample {
                    id: f.next()?.to_owned(),
                    workload: f.next()?.to_owned(),
                    examples: f.next()?.parse().ok()?,
                    features: f.next()?.parse().ok()?,
                    models: Vec::new(),
                    mean_time_rel_error: parse_bits(f.next()?)?,
                    mean_size_rel_error: parse_bits(f.next()?)?,
                    time_stage_runs: f.next()?.parse().ok()?,
                    time_stage_machine_minutes: parse_bits(f.next()?)?,
                    size_stage_runs: f.next()?.parse().ok()?,
                    size_stage_machine_minutes: parse_bits(f.next()?)?,
                });
            }
            "model" => {
                let sample = current.as_mut()?;
                let name = f.next()?.to_owned();
                let spec = f.next()?.to_owned();
                let coeffs = f
                    .next()?
                    .split(' ')
                    .filter(|s| !s.is_empty())
                    .map(parse_bits)
                    .collect::<Option<Vec<f64>>>()?;
                let err_micro = f
                    .next()?
                    .split(' ')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().ok())
                    .collect::<Option<Vec<i64>>>()?;
                sample.models.push(ModelSample {
                    name,
                    spec,
                    coeffs,
                    err_micro,
                });
            }
            _ => return None,
        }
        if f.next().is_some() {
            return None;
        }
    }
    if let Some(done) = current.take() {
        samples.insert(done.id.clone(), done);
    }
    Some(samples)
}

fn write_sample_cache(
    path: &std::path::Path,
    cache: &std::collections::HashMap<String, RunSample>,
) {
    use std::fmt::Write as _;
    let mut ids: Vec<&str> = cache.keys().map(String::as_str).collect();
    ids.sort_unstable();
    let mut out = format!("{SAMPLE_CACHE_MAGIC} {SAMPLE_SCHEMA_VERSION}\n");
    for id in ids {
        let s = &cache[id];
        let _ = writeln!(
            out,
            "run\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            s.id,
            s.workload,
            s.examples,
            s.features,
            fmt_bits(s.mean_time_rel_error),
            fmt_bits(s.mean_size_rel_error),
            s.time_stage_runs,
            fmt_bits(s.time_stage_machine_minutes),
            s.size_stage_runs,
            fmt_bits(s.size_stage_machine_minutes),
        );
        for m in &s.models {
            let coeffs: Vec<String> = m.coeffs.iter().map(|c| fmt_bits(*c)).collect();
            let errs: Vec<String> = m.err_micro.iter().map(i64::to_string).collect();
            let _ = writeln!(
                out,
                "model\t{}\t{}\t{}\t{}",
                m.name,
                m.spec,
                coeffs.join(" "),
                errs.join(" "),
            );
        }
    }
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(path, out) {
        obs::log_warn!(
            "health: could not persist sample cache {}: {e}",
            path.display()
        );
    }
}

impl Watchtower {
    /// Folds a workload's window straight off a ledger store, reusing a
    /// persisted [`RunSample`] cache so a steady-state fold parses only
    /// manifests it has never seen (content-addressing makes the cache
    /// trivially coherent). `since`/`limit` follow [`load_history`];
    /// `cache_path = None` disables persistence. The result is
    /// bit-identical to `self.fold(&load_history(...))`.
    pub fn fold_ledger(
        &self,
        store: &obs::LedgerStore,
        workload: &str,
        since: Option<&str>,
        limit: usize,
        cache_path: Option<&std::path::Path>,
    ) -> Result<HealthReport, String> {
        let entries = store
            .entries()
            .map_err(|e| format!("reading ledger {}: {e}", store.root().display()))?;
        let mut cache = cache_path.map(read_sample_cache).unwrap_or_default();
        let mut dirty = false;

        let mut picked: Vec<RunSample> = Vec::new();
        let mut since_seen = since.is_none();
        for entry in &entries {
            let sample = match cache.get(&entry.id) {
                Some(s) => s.clone(),
                None => {
                    let raw = std::fs::read_to_string(&entry.path)
                        .map_err(|e| format!("reading {}: {e}", entry.path.display()))?;
                    match RunManifest::from_json(&raw) {
                        Ok(m) => {
                            let s = RunSample::extract(&m);
                            cache.insert(entry.id.clone(), s.clone());
                            dirty = true;
                            s
                        }
                        Err(e) => {
                            obs::log_warn!("health: skipping {}: {e}", entry.path.display());
                            continue;
                        }
                    }
                }
            };
            if sample.workload != workload {
                continue;
            }
            let is_since = since.is_some_and(|prefix| entry.id.starts_with(prefix));
            picked.push(sample);
            if is_since {
                since_seen = true;
                break;
            }
            if limit > 0 && since.is_none() && picked.len() == limit {
                break;
            }
        }
        if !since_seen {
            let prefix = since.unwrap_or_default();
            return Err(format!("--since {prefix}: no matching run for {workload}"));
        }
        if limit > 0 {
            picked.truncate(limit);
        }
        picked.reverse();

        if let Some(path) = cache_path {
            // Prune entries whose manifests left the store, then persist
            // only if something actually changed.
            let live: std::collections::HashSet<&str> =
                entries.iter().map(|e| e.id.as_str()).collect();
            let before = cache.len();
            cache.retain(|id, _| live.contains(id.as_str()));
            if dirty || cache.len() != before {
                write_sample_cache(path, &cache);
            }
        }
        Ok(self.fold_samples(&picked, &[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TrainingCosts;
    use crate::provenance::{
        CounterRecord, ManifestContent, ManifestEnvelope, ModelRecord, PredictionRecord,
        PredictionsRecord, ScheduleRecord, SCHEMA_VERSION,
    };
    use modeling::ModelSummary;
    use workloads::WorkloadParams;

    fn manifest(seed: u64, time_coeff: f64, mean_time_err: f64) -> RunManifest {
        let content = ManifestContent {
            workload: "TINY".into(),
            params: WorkloadParams {
                examples: 4_000,
                features: 800,
                iterations: 4,
                partitions: 4,
            },
            seed,
            max_machines: 12,
            memory_factor: 1.0,
            schedules: vec![ScheduleRecord {
                index: 0,
                notation: "p(2)".into(),
                digest: "ab".repeat(32),
                benefit_s: 12.5,
                budget_bytes: 1_000_000,
            }],
            size_models: vec![ModelRecord {
                name: "size D2".into(),
                model: ModelSummary {
                    spec: "e·f".into(),
                    coeffs: vec![0.016],
                    cv_error: 0.001,
                },
            }],
            time_models: vec![ModelRecord {
                name: "time [0]".into(),
                model: ModelSummary {
                    spec: "1 + e·f".into(),
                    coeffs: vec![30.0, time_coeff],
                    cv_error: 0.02,
                },
            }],
            training_costs: TrainingCosts::default(),
            predictions: PredictionsRecord {
                entries: vec![PredictionRecord {
                    schedule_index: 0,
                    machines: 4,
                    predicted_time_s: 100.0 * (1.0 + mean_time_err),
                    actual_time_s: 100.0,
                    predicted_size_bytes: 900_000,
                    actual_peak_bytes: 950_000,
                    report_digest: "cd".repeat(32),
                }],
                mean_time_rel_error: mean_time_err,
                max_time_rel_error: mean_time_err,
                mean_size_rel_error: 0.05,
            },
            counters: vec![CounterRecord {
                name: "sim_runs_total".into(),
                value: 11,
            }],
        };
        let content_hash = content.hash();
        RunManifest {
            envelope: ManifestEnvelope {
                schema_version: SCHEMA_VERSION,
                tool: "test".into(),
                threads_requested: 0,
                threads_resolved: 1,
            },
            content,
            content_hash,
        }
    }

    fn window(n: usize) -> Vec<RunManifest> {
        (0..n).map(|k| manifest(k as u64, 3.2e-7, 0.04)).collect()
    }

    #[test]
    fn clean_window_is_healthy() {
        let report = Watchtower::default().fold(&window(12));
        assert_eq!(report.verdict, Verdict::Healthy);
        assert_eq!(report.budget.breaches, 0);
        assert!(report.advice.is_empty());
        assert_eq!(report.models.len(), 2);
        assert_eq!(report.models[0].name, "time [0]");
        assert_eq!(report.models[0].runs, 12);
        assert_eq!(report.models[0].mean_err_micro, 40_000);
        assert_eq!(report.models[0].max_coeff_dev_micro, 0);
    }

    #[test]
    fn perturbed_coefficient_drifts_at_the_onset_run() {
        let mut w = window(12);
        for (k, m) in w.iter_mut().enumerate() {
            if k >= 8 {
                m.perturb_time_coefficient(0, 0.5);
            }
        }
        let onset_id = w[8].id();
        let report = Watchtower::default().fold(&w);
        let tm = &report.models[0];
        match &tm.verdict {
            Verdict::Drifted {
                detector,
                onset_run,
                magnitude_micro,
            } => {
                assert_eq!(detector, "cusum(coeff)");
                assert_eq!(onset_run, &onset_id, "fires on the first perturbed run");
                assert_eq!(*magnitude_micro, 490_000, "50% dev minus 1% slack");
            }
            other => panic!("expected coefficient drift, got {other:?}"),
        }
        assert_eq!(report.verdict.level(), 2);
        assert_eq!(report.advice.len(), 1);
        let a = &report.advice[0];
        assert_eq!(a.model, "time [0]");
        assert_eq!(a.probe_examples, vec![1_000, 2_000, 4_000]);
        assert_eq!(a.probe_features, vec![200, 400, 800]);
        // Size model untouched.
        assert_eq!(report.models[1].verdict, Verdict::Healthy);
    }

    #[test]
    fn budget_exhaustion_drifts_and_burn_warns() {
        let slo = SloSpec::default(); // mean time ceiling 15%
                                      // 12 runs, the last 4 breaching at 30%: streak 4 > 3 allowed.
        let mut w = window(8);
        w.extend((8..12).map(|k| manifest(k, 3.2e-7, 0.30)));
        let report = Watchtower::new(slo.clone()).fold(&w);
        match &report.budget.verdict {
            Verdict::Drifted {
                detector,
                onset_run,
                ..
            } => {
                assert_eq!(detector, "error_budget");
                assert_eq!(onset_run, &w[11].id(), "the 4th consecutive breach");
            }
            other => panic!("expected budget drift, got {other:?}"),
        }
        assert_eq!(report.budget.breaches, 4);
        assert_eq!(report.budget.max_consecutive, 4);
        // 4/12 breaching over a 25% budget = 4/3 burn.
        assert_eq!(report.budget.burn_rate_micro, 1_333_332);

        // 2 breaches in 12 runs with gaps: burn 2/3 ≥ warn 0.5 → Warn.
        let mut w = window(12);
        w[3] = manifest(103, 3.2e-7, 0.30);
        w[7] = manifest(107, 3.2e-7, 0.30);
        let report = Watchtower::new(slo).fold(&w);
        assert_eq!(report.budget.breaches, 2);
        assert_eq!(report.budget.max_consecutive, 1);
        match &report.budget.verdict {
            Verdict::Warn { signal, .. } => assert_eq!(signal, "budget_burn"),
            other => panic!("expected budget warn, got {other:?}"),
        }
    }

    #[test]
    fn fold_is_repeatable_and_digest_is_stable() {
        let mut w = window(10);
        for (k, m) in w.iter_mut().enumerate() {
            if k >= 6 {
                m.perturb_time_coefficient(0, 0.5);
            }
        }
        let tower = Watchtower::default();
        let (a, b) = (tower.fold(&w), tower.fold(&w));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.canonical_json(), b.canonical_json());
        let roundtrip = HealthReport::from_json(&a.to_json()).unwrap();
        assert_eq!(roundtrip.digest(), a.digest());
    }

    #[test]
    fn empty_window_reports_healthy_emptiness() {
        let report = Watchtower::default().fold(&[]);
        assert_eq!(report.verdict, Verdict::Healthy);
        assert!(report.models.is_empty());
        assert_eq!(report.budget.runs, 0);
        assert!(report.render_tree().contains("window: empty"));
    }

    #[test]
    fn seeded_band_absorbs_training_scale_errors() {
        // Error stream consistent with the seed: no warning.
        let seeds = [ResidualSeed {
            model: "time [0]".into(),
            residuals_micro: vec![38_000, 42_000, 40_000, 41_000],
        }];
        let report = Watchtower::default().fold_seeded(&window(12), &seeds);
        assert_eq!(report.models[0].verdict, Verdict::Healthy);
        // One wild outlier against the seeded band: Warn, not Drifted.
        let mut w = window(12);
        w[6] = manifest(206, 3.2e-7, 0.14); // inside budget, outside band
        let report = Watchtower::default().fold_seeded(&w, &seeds);
        match &report.models[0].verdict {
            Verdict::Warn { signal, .. } => assert_eq!(signal, "ewma_band(err)"),
            other => panic!("expected band warn, got {other:?}"),
        }
    }

    fn seed_store(dir: &std::path::Path, window: &[RunManifest]) -> obs::LedgerStore {
        let _ = std::fs::remove_dir_all(dir);
        let store = obs::LedgerStore::new(dir.to_path_buf());
        let base =
            std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_700_000_000);
        for (k, m) in window.iter().enumerate() {
            let path = store.record(&m.content_hash, &m.to_json()).unwrap();
            let file = std::fs::File::options().write(true).open(&path).unwrap();
            file.set_modified(base + std::time::Duration::from_secs(k as u64))
                .unwrap();
        }
        store
    }

    #[test]
    fn fold_ledger_matches_the_manifest_fold_cold_and_warm() {
        let mut w = window(8);
        for (k, m) in w.iter_mut().enumerate() {
            if k >= 5 {
                m.perturb_time_coefficient(0, 0.5 + k as f64 * 1e-4);
            }
        }
        let dir = std::env::temp_dir().join(format!("juggler-foldledger-{}", std::process::id()));
        let store = seed_store(&dir, &w);
        let cache = dir.join("sample_cache.json");
        let tower = Watchtower::default();

        let direct = tower.fold(&load_history(&store, "TINY", None, 0).unwrap());
        let cold = tower
            .fold_ledger(&store, "TINY", None, 0, Some(&cache))
            .unwrap();
        assert!(cache.is_file(), "cold fold persists the sample cache");
        let warm = tower
            .fold_ledger(&store, "TINY", None, 0, Some(&cache))
            .unwrap();
        let uncached = tower.fold_ledger(&store, "TINY", None, 0, None).unwrap();
        assert_eq!(direct.digest(), cold.digest());
        assert_eq!(direct.digest(), warm.digest());
        assert_eq!(direct.digest(), uncached.digest());
        assert_eq!(direct.canonical_json(), warm.canonical_json());

        // since/limit parity with load_history on the cached path.
        let since = w[4].id();
        let d2 = tower.fold(&load_history(&store, "TINY", Some(&since), 0).unwrap());
        let c2 = tower
            .fold_ledger(&store, "TINY", Some(&since), 0, Some(&cache))
            .unwrap();
        assert_eq!(d2.digest(), c2.digest());
        let d3 = tower.fold(&load_history(&store, "TINY", None, 3).unwrap());
        let c3 = tower
            .fold_ledger(&store, "TINY", None, 3, Some(&cache))
            .unwrap();
        assert_eq!(d3.digest(), c3.digest());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_sample_cache_is_rebuilt() {
        let w = window(5);
        let dir = std::env::temp_dir().join(format!("juggler-foldcache-{}", std::process::id()));
        let store = seed_store(&dir, &w);
        let cache = dir.join("sample_cache.json");
        let tower = Watchtower::default();
        let expect = tower.fold(&load_history(&store, "TINY", None, 0).unwrap());

        std::fs::write(&cache, "not a cache at all").unwrap();
        let got = tower
            .fold_ledger(&store, "TINY", None, 0, Some(&cache))
            .unwrap();
        assert_eq!(expect.digest(), got.digest());

        // A schema bump invalidates wholesale, never half-reads.
        let stale = format!("{SAMPLE_CACHE_MAGIC} {}\n", SAMPLE_SCHEMA_VERSION + 1);
        std::fs::write(&cache, stale).unwrap();
        let got = tower
            .fold_ledger(&store, "TINY", None, 0, Some(&cache))
            .unwrap();
        assert_eq!(expect.digest(), got.digest());
        let rebuilt = parse_sample_cache(&std::fs::read_to_string(&cache).unwrap())
            .expect("rebuilt cache parses at the current schema");
        assert_eq!(rebuilt.len(), w.len());

        // The round trip through the compact format is exact: a warm
        // fold from the rebuilt cache still matches bit-for-bit.
        let warm = tower
            .fold_ledger(&store, "TINY", None, 0, Some(&cache))
            .unwrap();
        assert_eq!(expect.digest(), warm.digest());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metric_names_sanitize() {
        assert_eq!(sanitize_metric("time [0]"), "time_0");
        assert_eq!(sanitize_metric("size D2"), "size_d2");
        assert_eq!(sanitize_metric("weird--name!!"), "weird_name");
    }

    #[test]
    fn register_metrics_exports_health_surface() {
        let mut w = window(10);
        for (k, m) in w.iter_mut().enumerate() {
            if k >= 6 {
                m.perturb_time_coefficient(0, 0.5);
            }
        }
        let report = Watchtower::default().fold(&w);
        let reg = obs::Registry::new(true);
        report.register_metrics(&reg);
        let snap = reg.snapshot(false);
        let prom = snap.to_prometheus();
        assert!(prom.contains("health_level 2"), "{prom}");
        assert!(prom.contains("health_model_time_0_level 2"), "{prom}");
        assert!(prom.contains("health_model_size_d2_level 0"), "{prom}");
        assert!(prom.contains("health_runs_scanned_total 10"), "{prom}");
        // Repeat registration into a fresh registry is byte-identical.
        let reg2 = obs::Registry::new(true);
        report.register_metrics(&reg2);
        assert_eq!(prom, reg2.snapshot(false).to_prometheus());
    }
}
