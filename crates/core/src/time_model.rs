//! Execution-time models (paper §5.4): per-schedule prediction of the
//! execution time on the schedule's recommended cluster configuration.

use serde::{Deserialize, Serialize};

use modeling::{
    fit_best, fit_best_with_report, FitError, FitReport, FittedModel, ModelSpec, Sample,
};

/// A fitted execution-time model for one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeModel {
    /// Index of the schedule this model belongs to.
    pub schedule_index: usize,
    /// Time (seconds) as a function of `(e, f)` — machine count is *not*
    /// a parameter: the model predicts the time on the optimal
    /// configuration for these parameters (§5.4).
    pub model: FittedModel,
    /// LOOCV error of the winning spec.
    pub cv_error: f64,
}

impl TimeModel {
    /// Fits the model from `(e, f, seconds)` training measurements.
    pub fn fit(schedule_index: usize, points: &[(f64, f64, f64)]) -> Result<Self, FitError> {
        Self::fit_with_report(schedule_index, points).map(|(tm, _)| tm)
    }

    /// [`Self::fit`] plus the full [`FitReport`] (candidate scores, winner,
    /// per-holdout residuals) for `juggler doctor`.
    pub fn fit_with_report(
        schedule_index: usize,
        points: &[(f64, f64, f64)],
    ) -> Result<(Self, FitReport), FitError> {
        let samples: Vec<Sample> = points
            .iter()
            .map(|&(e, f, t)| Sample::ef(e, f, t))
            .collect();
        let (cv, report) = fit_best_with_report(&ModelSpec::time_candidates(), &samples)?;
        Ok((
            TimeModel {
                schedule_index,
                model: cv.model,
                cv_error: cv.cv_error,
            },
            report,
        ))
    }

    /// Fits a model extended with the iteration count (§6.1) from
    /// `(e, f, iterations, seconds)` measurements.
    pub fn fit_with_iterations(
        schedule_index: usize,
        points: &[(f64, f64, f64, f64)],
    ) -> Result<Self, FitError> {
        let samples: Vec<Sample> = points
            .iter()
            .map(|&(e, f, i, t)| Sample { e, f, i, y: t })
            .collect();
        let cv = fit_best(&ModelSpec::time_candidates_with_iterations(), &samples)?;
        Ok(TimeModel {
            schedule_index,
            model: cv.model,
            cv_error: cv.cv_error,
        })
    }

    /// Predicted execution time at `(e, f)`, seconds.
    #[must_use]
    pub fn predict(&self, e: f64, f: f64) -> f64 {
        self.model.predict(e, f, 1.0).max(0.0)
    }

    /// Predicted execution time at `(e, f, iterations)` for
    /// iteration-extended models.
    #[must_use]
    pub fn predict_with_iterations(&self, e: f64, f: f64, iterations: f64) -> f64 {
        self.model.predict(e, f, iterations).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(law: impl Fn(f64, f64) -> f64) -> Vec<(f64, f64, f64)> {
        let mut out = Vec::new();
        for &e in &[3_000.0, 10_000.0, 18_000.0] {
            for &f in &[2_500.0, 6_000.0, 12_500.0] {
                out.push((e, f, law(e, f)));
            }
        }
        out
    }

    #[test]
    fn fits_constant_plus_ef() {
        let tm = TimeModel::fit(0, &grid(|e, f| 42.0 + 3.0e-7 * e * f)).unwrap();
        assert!(tm.cv_error < 1e-6, "cv {}", tm.cv_error);
        let pred = tm.predict(15_000.0, 9_000.0);
        let truth = 42.0 + 3.0e-7 * 15_000.0 * 9_000.0;
        assert!((pred - truth).abs() / truth < 1e-6);
    }

    #[test]
    fn fits_f_squared_family() {
        let tm = TimeModel::fit(1, &grid(|e, f| 2.0e-6 * f * f + 1.0e-7 * e * f)).unwrap();
        assert!(tm.cv_error < 1e-6);
        assert_eq!(tm.schedule_index, 1);
    }

    #[test]
    fn iteration_extension_recovers_linear_iterations() {
        let mut points = Vec::new();
        for &e in &[5_000.0, 15_000.0] {
            for &f in &[4_000.0, 9_000.0] {
                for &i in &[5.0, 20.0, 60.0] {
                    points.push((e, f, i, 12.0 + 4.0e-9 * e * f * i));
                }
            }
        }
        let tm = TimeModel::fit_with_iterations(0, &points).unwrap();
        assert!(tm.cv_error < 1e-6, "cv {}", tm.cv_error);
        let pred = tm.predict_with_iterations(10_000.0, 6_000.0, 40.0);
        let truth = 12.0 + 4.0e-9 * 10_000.0 * 6_000.0 * 40.0;
        assert!((pred - truth).abs() / truth < 1e-6);
    }

    #[test]
    fn prediction_is_never_negative() {
        let tm = TimeModel::fit(0, &grid(|e, f| 1.0 + 1.0e-9 * e * f)).unwrap();
        assert!(tm.predict(0.0, 0.0) >= 0.0);
    }
}
