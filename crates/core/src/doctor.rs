//! End-to-end diagnostics behind `juggler doctor`.
//!
//! [`doctor`] trains a workload with the global metrics registry enabled,
//! then *validates its own predictions*: every Pareto menu option at the
//! paper-scale parameters is simulated once (fixed seeds) and the
//! predicted time/size are compared against the observed run in a
//! [`PredictionLedger`]. The result bundles the hotspot decision trace,
//! the per-model fit reports, the ledger, and a deterministic counter
//! snapshot.
//!
//! [`DoctorReport::render`] is fully deterministic for a given
//! (workload, config): it contains no wall-clock values — host timings
//! live in the separate [`PipelineTimings`] field, which callers print
//! (or don't) themselves.

use cluster_sim::{ClusterConfig, Engine, RunOptions};
use workloads::Workload;

use crate::diagnostics::{LedgerEntry, PredictionLedger, TrainingDiagnostics};
use crate::pipeline::{
    OfflineTraining, PipelineTimings, TrainedJuggler, TrainingConfig, TrainingError,
};
use crate::provenance::RunManifest;
use crate::recommend::RecommendationMenu;
use crate::watchtower::{HealthReport, ResidualSeed, Watchtower};

/// Everything `juggler doctor` reports about one workload.
#[derive(Debug)]
pub struct DoctorReport {
    /// The trained artifact (byte-identical to `OfflineTraining::run`).
    pub trained: TrainedJuggler,
    /// Decision trace and fit reports from training.
    pub diagnostics: TrainingDiagnostics,
    /// The recommendation menu at the paper-scale parameters.
    pub menu: RecommendationMenu,
    /// Paper-scale `(e, f)` the menu and validations used.
    pub params: (f64, f64),
    /// Predicted-vs-simulated validation rows, one per menu option.
    pub ledger: PredictionLedger,
    /// Deterministic counter snapshot taken after the validations.
    pub snapshot: obs::Snapshot,
    /// Single-run health baseline: this run's own manifest folded
    /// through the watchtower against the default SLO, with EWMA bands
    /// seeded from the training holdout residuals. Deliberately ignores
    /// the on-disk ledger so the render stays a pure function of
    /// (workload, config) — `juggler health` is the history view.
    pub health: HealthReport,
    /// Host-side stage timings (never part of [`Self::render`]).
    pub timings: PipelineTimings,
}

/// Trains `workload`, validates the menu's predictions, and gathers the
/// full diagnostics bundle. Enables and resets the global metrics
/// registry for the duration (the previous enabled state is restored).
pub fn doctor(
    workload: &dyn Workload,
    config: &TrainingConfig,
) -> Result<DoctorReport, TrainingError> {
    let reg = obs::global();
    let was_enabled = reg.enabled();
    reg.set_enabled(true);
    reg.reset();
    let result = doctor_inner(workload, config);
    reg.set_enabled(was_enabled);
    result
}

fn doctor_inner(
    workload: &dyn Workload,
    config: &TrainingConfig,
) -> Result<DoctorReport, TrainingError> {
    let (trained, timings, diagnostics) = OfflineTraining::run_full(workload, config)?;

    let paper = workload.paper_params();
    let (e, f) = (paper.examples as f64, paper.features as f64);
    let menu = trained.recommend(e, f);

    // Validate each surviving option with one simulated run. Seeds are
    // fixed per schedule index, so the ledger is deterministic.
    let mut ledger = PredictionLedger::default();
    for opt in &menu.options {
        let app = workload.build(&paper);
        let mut sim = workload.sim_params();
        sim.seed = config.seed.wrapping_add(7000 + opt.schedule_index as u64);
        let cluster = ClusterConfig::new(opt.machines.max(1), config.target_spec);
        let report =
            Engine::new(&app, cluster, sim).run_shared(&opt.schedule, RunOptions::default())?;
        obs::global()
            .counter(
                "prediction_validations_total",
                "menu options validated against a simulated run",
            )
            .inc();
        ledger.push(LedgerEntry {
            workload: trained.workload.clone(),
            schedule_index: opt.schedule_index,
            examples: e,
            features: f,
            machines: opt.machines,
            predicted_time_s: opt.predicted_time_s,
            actual_time_s: report.total_time_s,
            predicted_size_bytes: opt.predicted_size_bytes,
            actual_peak_bytes: report.cache.peak_storage_bytes,
            report_digest: report.digest(),
        });
    }

    let snapshot = obs::global().snapshot(false);
    let mut report = DoctorReport {
        trained,
        diagnostics,
        menu,
        params: (e, f),
        ledger,
        snapshot,
        health: Watchtower::default().fold(&[]),
        timings,
    };
    let manifest = RunManifest::from_doctor(&report, config, &paper);
    let seeds = residual_seeds(&report.diagnostics);
    report.health = Watchtower::default().fold_seeded(&[manifest], &seeds);
    Ok(report)
}

/// Training holdout residuals keyed by manifest model name — the EWMA
/// warm-start for the health baseline.
fn residual_seeds(diagnostics: &TrainingDiagnostics) -> Vec<ResidualSeed> {
    let mut seeds = Vec::new();
    for (i, fit) in diagnostics.time_fits.iter().enumerate() {
        seeds.push(ResidualSeed {
            model: format!("time [{i}]"),
            residuals_micro: fit.residual_micro_series(),
        });
    }
    for (dataset, fit) in &diagnostics.size_fits {
        seeds.push(ResidualSeed {
            model: format!("size {dataset}"),
            residuals_micro: fit.residual_micro_series(),
        });
    }
    seeds
}

/// `fraction` as a percentage with three significant figures (`4.56%`).
fn fmt_pct(fraction: f64) -> String {
    format!("{}%", obs::fmt_sig(fraction * 100.0, 3))
}

impl DoctorReport {
    /// Renders the human-readable diagnostics. Deterministic for a given
    /// (workload, config): every number flows through the shared `obs`
    /// formatters and no wall-clock value appears.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: String| out.push_str(&s);

        push(
            &mut out,
            format!("juggler doctor — {}\n", self.trained.workload),
        );

        // ── Hotspot decisions. ──
        let h = &self.diagnostics.hotspot;
        push(
            &mut out,
            format!(
                "\nhotspot detection: {} rounds, {} BCR evaluations, {} re-evaluations\n",
                h.rounds, h.bcr_evaluations, h.reevaluations
            ),
        );
        for d in &h.datasets {
            push(
                &mut out,
                format!(
                    "  {:<5} benefit {:>8}  size {:>8}  evals {}  {}\n",
                    d.dataset.to_string(),
                    obs::fmt_duration_s(d.benefit_s),
                    obs::fmt_bytes(d.size_bytes),
                    d.evaluations,
                    d.outcome.label()
                ),
            );
        }
        push(&mut out, "\nschedules\n".to_owned());
        for s in &h.schedules {
            push(
                &mut out,
                format!(
                    "  {} {:<24} benefit {:>8}  budget {:>8}\n",
                    if s.kept { "keep   " } else { "discard" },
                    s.notation,
                    obs::fmt_duration_s(s.benefit_s),
                    obs::fmt_bytes(s.budget_bytes)
                ),
            );
        }

        // ── Model quality. ──
        push(
            &mut out,
            "\nsize models (LOO-CV winner per dataset)\n".to_owned(),
        );
        for (dataset, report) in &self.diagnostics.size_fits {
            push(
                &mut out,
                format!(
                    "  {:<5} {}  cv {}\n",
                    dataset.to_string(),
                    report.winner.render(),
                    fmt_pct(report.cv_error)
                ),
            );
            for c in &report.candidates {
                push(
                    &mut out,
                    format!(
                        "        {} {:<14} cv {}\n",
                        if c.selected { "*" } else { " " },
                        c.spec.to_string(),
                        fmt_pct(c.cv_error)
                    ),
                );
            }
        }
        push(
            &mut out,
            "\ntime models (LOO-CV winner per schedule)\n".to_owned(),
        );
        for (i, report) in self.diagnostics.time_fits.iter().enumerate() {
            push(
                &mut out,
                format!(
                    "  [{}] {}  cv {}  max holdout {}\n",
                    i,
                    report.winner.render(),
                    fmt_pct(report.cv_error),
                    fmt_pct(report.max_residual())
                ),
            );
        }
        push(
            &mut out,
            format!(
                "\nmemory factor: {}\n",
                obs::fmt_sig(self.trained.memory_factor.factor, 3)
            ),
        );
        for n in &self.diagnostics.notes {
            push(&mut out, format!("note: {n}\n"));
        }

        // ── Predictions vs simulation. ──
        let (e, f) = self.params;
        push(
            &mut out,
            format!(
                "\npredictions at paper scale (e = {}, f = {})\n",
                obs::fmt_sig(e, 3),
                obs::fmt_sig(f, 3)
            ),
        );
        for entry in &self.ledger.entries {
            push(
                &mut out,
                format!(
                    "  [{}] {} machines  time {} predicted / {} simulated (err {})  size {} / peak {} (err {})\n",
                    entry.schedule_index,
                    entry.machines,
                    obs::fmt_duration_s(entry.predicted_time_s),
                    obs::fmt_duration_s(entry.actual_time_s),
                    fmt_pct(entry.time_rel_error()),
                    obs::fmt_bytes(entry.predicted_size_bytes),
                    obs::fmt_bytes(entry.actual_peak_bytes),
                    fmt_pct(entry.size_rel_error())
                ),
            );
        }
        if let (Some(mean_t), Some(max_t), Some(mean_s)) = (
            self.ledger.mean_time_rel_error(),
            self.ledger.max_time_rel_error(),
            self.ledger.mean_size_rel_error(),
        ) {
            push(
                &mut out,
                format!(
                    "  time error: mean {}, max {}   size error: mean {}\n",
                    fmt_pct(mean_t),
                    fmt_pct(max_t),
                    fmt_pct(mean_s)
                ),
            );
        }

        // ── Counters. ──
        push(&mut out, "\ncounters\n".to_owned());
        for m in &self.snapshot.metrics {
            if let obs::MetricValue::Counter(v) = m.value {
                push(&mut out, format!("  {:<36} {}\n", m.name, v));
            }
        }

        // ── Health baseline. ──
        push(
            &mut out,
            format!(
                "\nhealth (this run vs default SLO; `juggler health {}` folds history)\n",
                self.trained.workload
            ),
        );
        for m in &self.health.models {
            push(
                &mut out,
                format!("  {:<9} {}\n", m.name, m.verdict.detail()),
            );
        }
        push(
            &mut out,
            format!("  budget: {}\n", self.health.budget.verdict.detail()),
        );
        push(
            &mut out,
            format!("  verdict: {}\n", self.health.verdict.detail()),
        );
        out
    }
}
