//! Memory calibration (paper §5.3): the memory factor and the
//! cluster-configuration formula.
//!
//! One training run, with parameters chosen so the first schedule's
//! predicted size fills the unified region M, measures how much of M the
//! application actually leaves for caching:
//!
//! ```text
//! memory factor = non-evicted partitions / total partitions   ∈ [0.5, 1]
//! MemoryForCaching_PerMachine = M × memory factor              (Eq. 5)
//! #machines = ⌈ SCHEDULE_size / MemoryForCaching ⌉             (Eq. 6)
//! ```

use serde::{Deserialize, Serialize};

use cluster_sim::{MachineSpec, RunReport};
use dagflow::{Application, Schedule};

/// The calibrated memory factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFactor {
    /// Ratio of non-evicted to total partitions, clamped to `[0.5, 1]`.
    pub factor: f64,
}

impl MemoryFactor {
    /// Derives the factor from a calibration run: over the datasets the
    /// schedule leaves resident, the fraction of partitions still cached
    /// at the end of the run (steady state — transient first-iteration
    /// evictions have been re-admitted by then, §7.5).
    #[must_use]
    pub fn from_run(app: &Application, schedule: &Schedule, report: &RunReport) -> Self {
        let resident_set = schedule.resident_at_end();
        let mut total: u64 = 0;
        let mut resident: u64 = 0;
        for d in &resident_set {
            total += u64::from(app.dataset(*d).partitions);
            resident += u64::from(
                report
                    .cache
                    .per_dataset
                    .get(d)
                    .map_or(0, |s| s.resident_partitions),
            );
        }
        let raw = if total == 0 {
            1.0
        } else {
            resident as f64 / total as f64
        };
        MemoryFactor {
            factor: raw.clamp(0.5, 1.0),
        }
    }

    /// Usable caching bytes per machine (Eq. 5).
    #[must_use]
    pub fn memory_for_caching(&self, spec: &MachineSpec) -> f64 {
        spec.unified_memory() as f64 * self.factor
    }

    /// Eq. 5 in whole bytes: `⌊M × factor⌋`. The integer form both Eq. 6
    /// and exact-fit tests agree on.
    #[must_use]
    pub fn memory_for_caching_bytes(&self, spec: &MachineSpec) -> u64 {
        self.memory_for_caching(spec).max(0.0) as u64
    }

    /// Recommended machine count for a schedule of `schedule_bytes`
    /// (Eq. 6). At least one machine.
    ///
    /// Integer ceiling division: the old float `ceil()` rounded an
    /// exactly-divisible `schedule_bytes = k × MemoryForCaching` up to
    /// `k + 1` machines whenever the quotient landed a ULP above `k`, and
    /// huge schedules silently truncated through `as u32`. Counts beyond
    /// `u32::MAX` saturate instead.
    #[must_use]
    pub fn recommend_machines(&self, schedule_bytes: u64, spec: &MachineSpec) -> u32 {
        let per_machine = self.memory_for_caching_bytes(spec);
        if per_machine == 0 || schedule_bytes == 0 {
            return 1;
        }
        u32::try_from(schedule_bytes.div_ceil(per_machine)).unwrap_or(u32::MAX)
    }
}

/// How [`MemoryCalibration::scale_params_to_target`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScaleOutcome {
    /// Bisection bracketed the target and converged.
    Converged,
    /// The target exceeded `predict` even after 64 doublings of the scale
    /// factor; parameters are clamped at the upper bracket.
    ClampedHigh {
        /// Size the clamped parameters actually predict.
        achieved_bytes: f64,
    },
    /// The target lies below `predict` at the minimum scale `1e-3`;
    /// parameters are clamped at the lower bracket.
    ClampedLow {
        /// Size the clamped parameters actually predict.
        achieved_bytes: f64,
    },
}

impl ScaleOutcome {
    /// Whether the target was actually reached.
    #[must_use]
    pub fn converged(&self) -> bool {
        matches!(self, ScaleOutcome::Converged)
    }

    /// Human-readable note for pipeline reports; `None` when converged.
    #[must_use]
    pub fn note(&self, target_bytes: f64) -> Option<String> {
        match *self {
            ScaleOutcome::Converged => None,
            ScaleOutcome::ClampedHigh { achieved_bytes } => Some(format!(
                "calibration target {target_bytes:.3e} B unreachable: clamped high at {achieved_bytes:.3e} B"
            )),
            ScaleOutcome::ClampedLow { achieved_bytes } => Some(format!(
                "calibration target {target_bytes:.3e} B below minimum scale: clamped low at {achieved_bytes:.3e} B"
            )),
        }
    }
}

/// Result of scaling `(e0, f0)` toward a target predicted size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaledParams {
    /// Scaled first parameter.
    pub e: f64,
    /// Scaled second parameter.
    pub f: f64,
    /// Whether the target was reached or the scale was clamped.
    pub outcome: ScaleOutcome,
}

/// Memory-calibration helpers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryCalibration;

impl MemoryCalibration {
    /// Scales `(e0, f0)` by a common factor so that
    /// `predicted_size(t·e0, t·f0) ≈ target_bytes` — how Juggler "chooses
    /// values for P1 and P2 such that the size of the schedule equals M".
    /// Bisection over `t`; `predict` must be monotone in `t`.
    ///
    /// When the target cannot be bracketed — above `eval` after 64
    /// doublings, or already below `eval(1e-3)` — the previous version
    /// silently returned parameters that predicted something else
    /// entirely. Now the returned [`ScaledParams::outcome`] says whether
    /// the scale converged or was clamped, and at what achieved size.
    #[must_use]
    pub fn scale_params_to_target(
        e0: f64,
        f0: f64,
        target_bytes: f64,
        predict: impl Fn(f64, f64) -> f64,
    ) -> ScaledParams {
        let eval = |t: f64| predict(e0 * t, f0 * t);
        // Bracket the target.
        let mut lo = 1e-3;
        let mut hi = 1.0;
        if eval(lo) >= target_bytes {
            return ScaledParams {
                e: e0 * lo,
                f: f0 * lo,
                outcome: ScaleOutcome::ClampedLow {
                    achieved_bytes: eval(lo),
                },
            };
        }
        let mut guard = 0;
        while eval(hi) < target_bytes && guard < 64 {
            hi *= 2.0;
            guard += 1;
        }
        if eval(hi) < target_bytes {
            return ScaledParams {
                e: e0 * hi,
                f: f0 * hi,
                outcome: ScaleOutcome::ClampedHigh {
                    achieved_bytes: eval(hi),
                },
            };
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if eval(mid) < target_bytes {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = 0.5 * (lo + hi);
        ScaledParams {
            e: e0 * t,
            f: f0 * t,
            outcome: ScaleOutcome::Converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: on 12 GB machines M = 7.02 GB; SVM's
    /// factor 0.798 leaves 5.6 GB per machine, and the 35.7 GB cached
    /// dataset needs ⌈35.7/5.6⌉ = 7 machines — area C of Figure 2.
    #[test]
    fn svm_figure2_machine_count() {
        let spec = MachineSpec::paper_example();
        let mf = MemoryFactor { factor: 0.798 };
        let per_machine = mf.memory_for_caching(&spec);
        assert!((per_machine - 5.6e9).abs() < 0.01e9, "{per_machine}");
        assert_eq!(mf.recommend_machines(35_700_000_000, &spec), 7);
    }

    #[test]
    fn full_residency_is_factor_one() {
        let mf = MemoryFactor { factor: 1.0 };
        let spec = MachineSpec::paper_example();
        // Exactly M bytes fit on one machine.
        assert_eq!(mf.recommend_machines(spec.unified_memory(), &spec), 1);
        assert_eq!(mf.recommend_machines(spec.unified_memory() + 1, &spec), 2);
    }

    #[test]
    fn factor_clamps_to_half() {
        let mf = MemoryFactor { factor: 0.5 };
        let spec = MachineSpec::paper_example();
        assert_eq!(
            mf.recommend_machines(spec.unified_memory(), &spec),
            2,
            "at factor 0.5 only half of M caches"
        );
    }

    #[test]
    fn tiny_schedule_needs_one_machine() {
        let mf = MemoryFactor { factor: 0.9 };
        let spec = MachineSpec::paper_example();
        assert_eq!(mf.recommend_machines(1_000_000, &spec), 1);
        assert_eq!(mf.recommend_machines(0, &spec), 1);
    }

    #[test]
    fn scaling_hits_target_size() {
        // Size law 4.49·e·f; target 2 GB.
        let sp = MemoryCalibration::scale_params_to_target(70_000.0, 50_000.0, 2.0e9, |e, f| {
            4.49 * e * f
        });
        assert!(sp.outcome.converged());
        let got = 4.49 * sp.e * sp.f;
        assert!((got - 2.0e9).abs() / 2.0e9 < 1e-6, "{got}");
        // Aspect ratio preserved.
        assert!((sp.e / sp.f - 70_000.0 / 50_000.0).abs() < 1e-9);
    }

    /// Regression (Eq. 6 float ceil): exactly-divisible schedules must not
    /// round up to an extra machine.
    #[test]
    fn exact_fit_schedules_round_to_exact_machine_counts() {
        let spec = MachineSpec::paper_example();
        for factor in [0.5, 0.613, 0.798, 0.9, 1.0] {
            let mf = MemoryFactor { factor };
            let per = mf.memory_for_caching_bytes(&spec);
            assert!(per > 0);
            for k in [1u64, 2, 3, 7, 12, 100, 4096] {
                assert_eq!(
                    mf.recommend_machines(k * per, &spec),
                    u32::try_from(k).unwrap(),
                    "factor {factor}, k {k}: k×MemoryForCaching must need exactly k machines"
                );
                assert_eq!(
                    mf.recommend_machines(k * per + 1, &spec),
                    u32::try_from(k + 1).unwrap(),
                    "factor {factor}, k {k}: one byte over must need k+1"
                );
            }
        }
    }

    /// Regression (Eq. 6 `as u32` truncation): astronomically large
    /// schedules saturate at `u32::MAX` machines instead of wrapping.
    #[test]
    fn huge_schedules_saturate_instead_of_truncating() {
        // A 1-byte caching region forces the count to schedule_bytes.
        let spec = MachineSpec {
            ram_bytes: 0,
            ..MachineSpec::paper_example()
        };
        let mf = MemoryFactor { factor: 1.0 };
        // Degenerate M = 0: stay at the 1-machine floor, no division.
        assert_eq!(mf.recommend_machines(u64::MAX, &spec), 1);
        // A Raspberry-Pi-class machine: M ≈ 120 MB. u64::MAX bytes of
        // schedule would need ~1.5e11 machines — far past u32::MAX.
        let spec = MachineSpec {
            ram_bytes: 500_000_000,
            ..MachineSpec::paper_example()
        };
        let mf = MemoryFactor { factor: 1.0 };
        assert!(mf.memory_for_caching_bytes(&spec) > 0);
        assert_eq!(
            mf.recommend_machines(u64::MAX, &spec),
            u32::MAX,
            "count beyond u32::MAX saturates"
        );
    }

    /// Regression: an unreachable (too large) target is reported as
    /// clamped-high, not silently returned as if converged.
    #[test]
    fn unreachable_target_reports_clamped_high() {
        // predict saturates at 1 GB no matter how far the params scale.
        let sp = MemoryCalibration::scale_params_to_target(1.0, 1.0, 5.0e9, |e, f| {
            (e * f * 1e6).min(1.0e9)
        });
        match sp.outcome {
            ScaleOutcome::ClampedHigh { achieved_bytes } => {
                assert!((achieved_bytes - 1.0e9).abs() < 1.0, "{achieved_bytes}");
            }
            other => panic!("expected ClampedHigh, got {other:?}"),
        }
        assert!(sp.outcome.note(5.0e9).unwrap().contains("clamped high"));
    }

    /// Regression: a target below `eval(1e-3)` is reported as clamped-low.
    #[test]
    fn microscopic_target_reports_clamped_low() {
        let sp = MemoryCalibration::scale_params_to_target(1.0e6, 1.0e6, 10.0, |e, f| e * f);
        match sp.outcome {
            ScaleOutcome::ClampedLow { achieved_bytes } => {
                assert!(achieved_bytes >= 10.0);
                assert!((sp.e - 1.0e3).abs() < 1e-9, "clamped at t = 1e-3");
            }
            other => panic!("expected ClampedLow, got {other:?}"),
        }
        assert!(sp.outcome.note(10.0).unwrap().contains("clamped low"));
    }
}
