//! Memory calibration (paper §5.3): the memory factor and the
//! cluster-configuration formula.
//!
//! One training run, with parameters chosen so the first schedule's
//! predicted size fills the unified region M, measures how much of M the
//! application actually leaves for caching:
//!
//! ```text
//! memory factor = non-evicted partitions / total partitions   ∈ [0.5, 1]
//! MemoryForCaching_PerMachine = M × memory factor              (Eq. 5)
//! #machines = ⌈ SCHEDULE_size / MemoryForCaching ⌉             (Eq. 6)
//! ```

use serde::{Deserialize, Serialize};

use cluster_sim::{MachineSpec, RunReport};
use dagflow::{Application, Schedule};

/// The calibrated memory factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFactor {
    /// Ratio of non-evicted to total partitions, clamped to `[0.5, 1]`.
    pub factor: f64,
}

impl MemoryFactor {
    /// Derives the factor from a calibration run: over the datasets the
    /// schedule leaves resident, the fraction of partitions still cached
    /// at the end of the run (steady state — transient first-iteration
    /// evictions have been re-admitted by then, §7.5).
    #[must_use]
    pub fn from_run(app: &Application, schedule: &Schedule, report: &RunReport) -> Self {
        let resident_set = schedule.resident_at_end();
        let mut total: u64 = 0;
        let mut resident: u64 = 0;
        for d in &resident_set {
            total += u64::from(app.dataset(*d).partitions);
            resident += u64::from(
                report
                    .cache
                    .per_dataset
                    .get(d)
                    .map_or(0, |s| s.resident_partitions),
            );
        }
        let raw = if total == 0 {
            1.0
        } else {
            resident as f64 / total as f64
        };
        MemoryFactor {
            factor: raw.clamp(0.5, 1.0),
        }
    }

    /// Usable caching bytes per machine (Eq. 5).
    #[must_use]
    pub fn memory_for_caching(&self, spec: &MachineSpec) -> f64 {
        spec.unified_memory() as f64 * self.factor
    }

    /// Recommended machine count for a schedule of `schedule_bytes`
    /// (Eq. 6). At least one machine.
    #[must_use]
    pub fn recommend_machines(&self, schedule_bytes: u64, spec: &MachineSpec) -> u32 {
        let per_machine = self.memory_for_caching(spec);
        if per_machine <= 0.0 || schedule_bytes == 0 {
            return 1;
        }
        (schedule_bytes as f64 / per_machine).ceil().max(1.0) as u32
    }
}

/// Memory-calibration helpers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryCalibration;

impl MemoryCalibration {
    /// Scales `(e0, f0)` by a common factor so that
    /// `predicted_size(t·e0, t·f0) ≈ target_bytes` — how Juggler "chooses
    /// values for P1 and P2 such that the size of the schedule equals M".
    /// Bisection over `t`; `predict` must be monotone in `t`.
    #[must_use]
    pub fn scale_params_to_target(
        e0: f64,
        f0: f64,
        target_bytes: f64,
        predict: impl Fn(f64, f64) -> f64,
    ) -> (f64, f64) {
        let eval = |t: f64| predict(e0 * t, f0 * t);
        // Bracket the target.
        let mut lo = 1e-3;
        let mut hi = 1.0;
        let mut guard = 0;
        while eval(hi) < target_bytes && guard < 64 {
            hi *= 2.0;
            guard += 1;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if eval(mid) < target_bytes {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = 0.5 * (lo + hi);
        (e0 * t, f0 * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: on 12 GB machines M = 7.02 GB; SVM's
    /// factor 0.798 leaves 5.6 GB per machine, and the 35.7 GB cached
    /// dataset needs ⌈35.7/5.6⌉ = 7 machines — area C of Figure 2.
    #[test]
    fn svm_figure2_machine_count() {
        let spec = MachineSpec::paper_example();
        let mf = MemoryFactor { factor: 0.798 };
        let per_machine = mf.memory_for_caching(&spec);
        assert!((per_machine - 5.6e9).abs() < 0.01e9, "{per_machine}");
        assert_eq!(mf.recommend_machines(35_700_000_000, &spec), 7);
    }

    #[test]
    fn full_residency_is_factor_one() {
        let mf = MemoryFactor { factor: 1.0 };
        let spec = MachineSpec::paper_example();
        // Exactly M bytes fit on one machine.
        assert_eq!(mf.recommend_machines(spec.unified_memory(), &spec), 1);
        assert_eq!(mf.recommend_machines(spec.unified_memory() + 1, &spec), 2);
    }

    #[test]
    fn factor_clamps_to_half() {
        let mf = MemoryFactor { factor: 0.5 };
        let spec = MachineSpec::paper_example();
        assert_eq!(
            mf.recommend_machines(spec.unified_memory(), &spec),
            2,
            "at factor 0.5 only half of M caches"
        );
    }

    #[test]
    fn tiny_schedule_needs_one_machine() {
        let mf = MemoryFactor { factor: 0.9 };
        let spec = MachineSpec::paper_example();
        assert_eq!(mf.recommend_machines(1_000_000, &spec), 1);
        assert_eq!(mf.recommend_machines(0, &spec), 1);
    }

    #[test]
    fn scaling_hits_target_size() {
        // Size law 4.49·e·f; target 2 GB.
        let (e, f) = MemoryCalibration::scale_params_to_target(
            70_000.0,
            50_000.0,
            2.0e9,
            |e, f| 4.49 * e * f,
        );
        let got = 4.49 * e * f;
        assert!((got - 2.0e9).abs() / 2.0e9 < 1e-6, "{got}");
        // Aspect ratio preserved.
        assert!((e / f - 70_000.0 / 50_000.0).abs() < 1e-9);
    }
}
