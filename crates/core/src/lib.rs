#![warn(missing_docs)]
//! # juggler — autonomous cost optimization and performance prediction
//!
//! Reproduction of **Juggler** (Al-Sayeh, Memishi, Jibril, Paradies,
//! Sattler — SIGMOD '22): an end-to-end, training-based framework that,
//! for iterative data-intensive applications,
//!
//! 1. **selects appropriate datasets to cache** (*hotspot detection*,
//!    Algorithm 1) from a single instrumented sample run,
//! 2. **predicts the sizes of the selected datasets** for any user-chosen
//!    application parameters (*parameter calibration*),
//! 3. **recommends the cluster configuration** that caches them without
//!    eviction (*memory calibration* — the memory-factor model), and
//! 4. **predicts execution time and cost** per schedule (*execution-time
//!    models*), offering end users a Pareto menu of schedules.
//!
//! The crate orchestrates the substrates of this workspace: `dagflow`
//! (lineage), `cluster-sim` (the simulated Spark cluster standing in for
//! the paper's testbed), `instrument` (Spark_i) and `modeling` (NNLS model
//! fitting).
//!
//! ## Quick start
//!
//! ```no_run
//! use juggler::pipeline::{OfflineTraining, TrainingConfig};
//! use workloads::{Workload, LogisticRegression};
//!
//! let workload = LogisticRegression;
//! let trained = OfflineTraining::run(&workload, &TrainingConfig::default()).unwrap();
//! let menu = trained.recommend(70_000.0, 50_000.0);
//! for option in &menu.options {
//!     println!(
//!         "{} → {} machines, {:.0} s, {:.1} machine-min",
//!         option.schedule, option.machines, option.predicted_time_s,
//!         option.predicted_cost_machine_min
//!     );
//! }
//! ```

pub mod chaos;
pub mod diagnostics;
pub mod doctor;
pub mod hotspot;
pub mod memory_calibration;
pub mod parallel;
pub mod param_calibration;
pub mod pipeline;
pub mod provenance;
pub mod recommend;
pub mod summary;
pub mod tenants;
pub mod time_model;
pub mod transfer;
pub mod watchtower;

pub use chaos::{build_plan, run_chaos, ChaosConfig, ChaosOutcome, PlanKind, ResidencyCheck};
pub use diagnostics::{LedgerEntry, PredictionLedger, TrainingDiagnostics};
pub use doctor::{doctor, DoctorReport};
pub use hotspot::{
    detect_hotspots, detect_hotspots_audited, AuditOutcome, DatasetAudit, DatasetMetricsView,
    HotspotAudit, HotspotConfig, RankedSchedule, ScheduleAudit,
};
pub use memory_calibration::{MemoryCalibration, MemoryFactor, ScaleOutcome, ScaledParams};
pub use parallel::{resolve_threads, run_indexed, try_run_indexed, with_retry};
pub use param_calibration::{ParamCalibration, SizeModel};
pub use pipeline::{
    OfflineTraining, PipelineStageTiming, PipelineTimings, TrainedJuggler, TrainingConfig,
};
pub use provenance::{
    schedule_digest, DiffTolerances, Drift, ManifestContent, ManifestDiff, ManifestEnvelope,
    ModelRecord, RunManifest, ScheduleRecord,
};
pub use recommend::{CostModel, MachineMinutes, Recommendation, RecommendationMenu, TieredHourly};
pub use summary::model_card;
pub use tenants::{
    run_tenants, workload_by_name, TenantSpec, TenantsOutcome, TenantsSpec, DRILL_RAM_BYTES,
};
pub use time_model::TimeModel;
pub use transfer::{select_probes, InstanceCatalog, InstanceType, TransferModel};
pub use watchtower::{
    load_history, BudgetHealth, DetectorTuning, HealthReport, ModelHealth, ModelSample,
    RefitAdvice, ResidualSeed, RunSample, Watchtower, SAMPLE_SCHEMA_VERSION,
};
