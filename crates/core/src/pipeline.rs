//! The offline-training pipeline (paper Figure 8): four sequential stages
//! producing a serializable [`TrainedJuggler`] artifact, plus the §5.5
//! run-time recommendation flow.
//!
//! Stage costs are tracked in machine-minutes — the bookkeeping behind the
//! paper's Figure 16 (training-cost breakdown) and Table 5 (runs needed to
//! amortize training).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use cluster_sim::{
    ClusterConfig, Engine, EnginePrep, MachineSpec, RunOptions, RunReport, TraceConfig,
};
use dagflow::{Application, DagError, DatasetId};
use instrument::profile_run;
use workloads::{Workload, WorkloadParams};

use crate::diagnostics::TrainingDiagnostics;
use crate::hotspot::{detect_hotspots_audited, DatasetMetricsView, HotspotConfig, RankedSchedule};
use crate::memory_calibration::{MemoryCalibration, MemoryFactor};
use crate::parallel::{resolve_threads, try_run_indexed};
use crate::param_calibration::ParamCalibration;
use crate::recommend::{CostModel, MachineMinutes, Recommendation, RecommendationMenu};
use crate::time_model::TimeModel;

/// Attempts each training experiment gets before the pipeline reacts: the
/// single-run stages (1: hotspot, 3: memory calibration) fail after the
/// last attempt, while the grid stages (2: parameter calibration, 4:
/// execution-time models) skip the failing point with a note — losing one
/// of nine grid cells degrades the fit, it does not kill the training.
pub const TRAINING_RETRIES: u32 = 3;

/// Seed salt added per retry attempt. Far above every stage's seed-offset
/// space, so a retried run draws fresh noise, while attempt 0 keeps the
/// original seed — healthy workloads produce bit-identical artifacts to
/// the pre-retry pipeline.
const RETRY_SEED_SALT: u64 = 1 << 32;

/// Errors from the offline-training pipeline.
#[derive(Debug)]
pub enum TrainingError {
    /// A simulated run rejected its plan or schedule.
    Dag(DagError),
    /// A model-fitting stage failed (no samples / no candidates).
    Fit(modeling::FitError),
}

impl std::fmt::Display for TrainingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainingError::Dag(e) => write!(f, "plan error during training: {e}"),
            TrainingError::Fit(e) => write!(f, "model fitting failed: {e}"),
        }
    }
}

impl std::error::Error for TrainingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainingError::Dag(e) => Some(e),
            TrainingError::Fit(e) => Some(e),
        }
    }
}

impl From<DagError> for TrainingError {
    fn from(e: DagError) -> Self {
        TrainingError::Dag(e)
    }
}

impl From<modeling::FitError> for TrainingError {
    fn from(e: modeling::FitError) -> Self {
        TrainingError::Fit(e)
    }
}

/// Configuration of the offline training.
#[derive(Debug, Clone, Copy)]
pub struct TrainingConfig {
    /// The single node used for hotspot detection, parameter calibration
    /// and memory calibration (§7.1's Core i3).
    pub calibration_spec: MachineSpec,
    /// The machine type of the target cluster, used for execution-time
    /// model training and the Eq. 6 recommendation.
    pub target_spec: MachineSpec,
    /// Hotspot-detection tunables.
    pub hotspot: HotspotConfig,
    /// Cap on recommendable machine counts (the evaluation sweeps 1–12).
    pub max_machines: u32,
    /// RNG seed threaded into every simulated run.
    pub seed: u64,
    /// Worker threads for the independent training experiments. `0` means
    /// automatic: the `JUGGLER_THREADS` environment variable if set, else
    /// the machine's available parallelism. `1` forces the sequential
    /// path. Every run owns its seed, so the trained artifact is
    /// bit-identical at any setting.
    pub threads: usize,
    /// Structured-trace recording for the pipeline's single-run stages
    /// (the stage-3 memory-calibration run). Disabled by default; the
    /// trace never enters the serialized [`TrainedJuggler`], so artifacts
    /// stay bit-identical with or without it.
    pub trace: TraceConfig,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            calibration_spec: MachineSpec::calibration_node(),
            target_spec: MachineSpec::private_cluster(),
            hotspot: HotspotConfig::default(),
            max_machines: 12,
            seed: 0x5EED,
            threads: 0,
            trace: TraceConfig::default(),
        }
    }
}

/// Wall-clock timing of one offline-pipeline stage. Host timing only —
/// never part of the serialized artifact (it would break the bit-identical
/// determinism contract).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineStageTiming {
    /// Stage label (`"1: hotspot detection"`, …).
    pub stage: String,
    /// Host wall-clock seconds the stage took.
    pub wall_s: f64,
    /// Experiment runs the stage performed.
    pub runs: u32,
}

/// Per-stage wall-clock timings of one pipeline execution, plus
/// calibration notes (e.g. a clamped stage-3 scale target).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineTimings {
    /// Stages in execution order.
    pub stages: Vec<PipelineStageTiming>,
    /// Non-fatal calibration anomalies, human-readable.
    pub notes: Vec<String>,
}

impl PipelineTimings {
    fn push(&mut self, stage: &str, started: std::time::Instant, runs: u32) {
        let wall_s = started.elapsed().as_secs_f64();
        let reg = obs::global();
        if reg.enabled() {
            reg.counter(
                "pipeline_stage_runs_total",
                "experiment runs across pipeline stages",
            )
            .add(u64::from(runs));
            let idx = self.stages.len() + 1;
            reg.gauge(
                &format!("pipeline_stage{idx}_seconds"),
                "pipeline stage wall-clock seconds (host timing)",
                obs::MetricClass::Timing,
            )
            .set(wall_s);
        }
        self.stages.push(PipelineStageTiming {
            stage: stage.to_owned(),
            wall_s,
            runs,
        });
    }

    /// Total wall-clock seconds across recorded stages.
    #[must_use]
    pub fn total_wall_s(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_s).sum()
    }

    /// Multi-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            out.push_str(&format!(
                "  stage {:<28} {:>9}  ({} runs)\n",
                s.stage,
                obs::fmt_duration_s(s.wall_s),
                s.runs
            ));
        }
        out.push_str(&format!(
            "  total {:>32}\n",
            obs::fmt_duration_s(self.total_wall_s())
        ));
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Cost of one training stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Number of experiment runs in the stage.
    pub runs: u32,
    /// Total cost in machine-minutes.
    pub machine_minutes: f64,
}

impl StageCost {
    fn add(&mut self, report: &RunReport) {
        self.runs += 1;
        self.machine_minutes += report.cost_machine_minutes();
    }

    /// Accumulates a run's cost from its machine-minutes alone (used when
    /// the report itself stays on a worker thread).
    fn add_cost(&mut self, machine_minutes: f64) {
        self.runs += 1;
        self.machine_minutes += machine_minutes;
    }
}

/// Per-stage training costs (Figure 16 / Table 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingCosts {
    /// Stage 1: the single instrumented sample run.
    pub hotspot: StageCost,
    /// Stage 2: the 3×3 full-factorial instrumented runs.
    pub param_calibration: StageCost,
    /// Stage 3: the single memory-calibration run.
    pub memory_calibration: StageCost,
    /// Stage 4: execution-time model training (9 runs per schedule).
    pub time_models: StageCost,
}

impl TrainingCosts {
    /// Optimization-stage cost (stages 1–3), machine-minutes.
    #[must_use]
    pub fn optimization_machine_minutes(&self) -> f64 {
        self.hotspot.machine_minutes
            + self.param_calibration.machine_minutes
            + self.memory_calibration.machine_minutes
    }

    /// Total training cost, machine-minutes.
    #[must_use]
    pub fn total_machine_minutes(&self) -> f64 {
        self.optimization_machine_minutes() + self.time_models.machine_minutes
    }
}

/// The trained artifact: everything the §5.5 flow needs, serializable so
/// one offline training serves arbitrarily many later runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedJuggler {
    /// Workload name (`LOR`, …).
    pub workload: String,
    /// The hotspot-detection schedules, in generation order.
    pub schedules: Vec<RankedSchedule>,
    /// Fitted dataset-size models.
    pub sizes: ParamCalibration,
    /// The calibrated memory factor.
    pub memory_factor: MemoryFactor,
    /// Per-schedule execution-time models (same order as `schedules`).
    pub time_models: Vec<TimeModel>,
    /// Machine type the recommendations target.
    pub target_spec: MachineSpec,
    /// Machine-count cap.
    pub max_machines: u32,
    /// Bookkeeping for Figure 16 / Table 5.
    pub costs: TrainingCosts,
}

impl TrainedJuggler {
    /// The §5.5 flow with the paper's machine-minutes pricing.
    #[must_use]
    pub fn recommend(&self, examples: f64, features: f64) -> RecommendationMenu {
        self.recommend_with(examples, features, &MachineMinutes)
    }

    /// The §5.5 flow under a custom pricing model.
    #[must_use]
    pub fn recommend_with(
        &self,
        examples: f64,
        features: f64,
        pricing: &dyn CostModel,
    ) -> RecommendationMenu {
        let _prof = obs::prof::scope("menu");
        let candidates: Vec<Recommendation> = self
            .schedules
            .iter()
            .enumerate()
            .map(|(i, rs)| {
                let size = self
                    .sizes
                    .predict_schedule_size(&rs.schedule, examples, features);
                let machines = self
                    .memory_factor
                    .recommend_machines(size, &self.target_spec)
                    .min(self.max_machines);
                let time = self.time_models[i].predict(examples, features);
                Recommendation {
                    schedule_index: i,
                    schedule: Arc::clone(&rs.schedule),
                    predicted_size_bytes: size,
                    machines,
                    predicted_time_s: time,
                    predicted_cost_machine_min: pricing.cost(machines, time),
                }
            })
            .collect();
        RecommendationMenu::from_candidates(candidates)
    }

    /// Recommended machine count for one schedule at `(e, f)` (Eq. 6).
    #[must_use]
    pub fn machines_for(&self, schedule_index: usize, examples: f64, features: f64) -> u32 {
        let size = self.sizes.predict_schedule_size(
            &self.schedules[schedule_index].schedule,
            examples,
            features,
        );
        self.memory_factor
            .recommend_machines(size, &self.target_spec)
            .min(self.max_machines)
    }

    /// The §6.2 cross-machine-type flow: the *optimization* models (sizes,
    /// memory factor, Eq. 6) are reused as-is with the new machine's
    /// memory; the *prediction* side goes through an optional
    /// [`crate::TransferModel`] bridging the base predictions to the new
    /// type (`None` falls back to the base model — correct only for
    /// machines similar to the training cluster).
    #[must_use]
    pub fn recommend_on(
        &self,
        examples: f64,
        features: f64,
        spec: &MachineSpec,
        transfer: Option<&crate::TransferModel>,
    ) -> RecommendationMenu {
        let candidates: Vec<Recommendation> = self
            .schedules
            .iter()
            .enumerate()
            .map(|(i, rs)| {
                let size = self
                    .sizes
                    .predict_schedule_size(&rs.schedule, examples, features);
                let machines = self
                    .memory_factor
                    .recommend_machines(size, spec)
                    .min(self.max_machines);
                let base = self.time_models[i].predict(examples, features);
                let time = transfer.map_or(base, |t| t.predict(base));
                Recommendation {
                    schedule_index: i,
                    schedule: Arc::clone(&rs.schedule),
                    predicted_size_bytes: size,
                    machines,
                    predicted_time_s: time,
                    predicted_cost_machine_min: MachineMinutes.cost(machines, time),
                }
            })
            .collect();
        RecommendationMenu::from_candidates(candidates)
    }

    /// Fits a §6.2 transfer model for a new machine type from a few probe
    /// runs: `runner(e, f, machines)` must execute the *first* schedule on
    /// the new type and return the measured seconds. Probe parameter
    /// points are chosen from `candidates` by spread-maximizing selection;
    /// `probes` runs are spent (CherryPick's point: a handful suffices).
    pub fn fit_transfer(
        &self,
        candidates: &[(f64, f64)],
        probes: usize,
        spec: &MachineSpec,
        mut runner: impl FnMut(f64, f64, u32) -> f64,
    ) -> crate::TransferModel {
        let base_preds: Vec<f64> = candidates
            .iter()
            .map(|&(e, f)| self.time_models[0].predict(e, f))
            .collect();
        let picks = crate::select_probes(&base_preds, probes.min(candidates.len()));
        let pairs: Vec<(f64, f64)> = picks
            .into_iter()
            .map(|i| {
                let (e, f) = candidates[i];
                let size = self
                    .sizes
                    .predict_schedule_size(&self.schedules[0].schedule, e, f);
                let machines = self
                    .memory_factor
                    .recommend_machines(size, spec)
                    .min(self.max_machines);
                (base_preds[i], runner(e, f, machines))
            })
            .collect();
        crate::TransferModel::fit(&pairs)
    }
}

/// Runs the four offline-training stages.
#[derive(Debug)]
pub struct OfflineTraining;

impl OfflineTraining {
    /// Trains Juggler for one workload. Deterministic for a given
    /// (workload, config).
    pub fn run(
        workload: &dyn Workload,
        config: &TrainingConfig,
    ) -> Result<TrainedJuggler, TrainingError> {
        Self::run_traced(workload, config).map(|(trained, _)| trained)
    }

    /// Like [`OfflineTraining::run`], also returning per-stage wall-clock
    /// timings and calibration notes. The timings are host-side
    /// observability only; the returned [`TrainedJuggler`] is byte-for-byte
    /// the one [`OfflineTraining::run`] produces.
    pub fn run_traced(
        workload: &dyn Workload,
        config: &TrainingConfig,
    ) -> Result<(TrainedJuggler, PipelineTimings), TrainingError> {
        Self::run_full(workload, config).map(|(trained, timings, _)| (trained, timings))
    }

    /// The full-evidence variant: [`OfflineTraining::run_traced`] plus the
    /// [`TrainingDiagnostics`] (hotspot decision trace, per-model fit
    /// reports) that `juggler doctor` renders. The trained artifact is
    /// byte-for-byte the one [`OfflineTraining::run`] produces.
    pub fn run_full(
        workload: &dyn Workload,
        config: &TrainingConfig,
    ) -> Result<(TrainedJuggler, PipelineTimings, TrainingDiagnostics), TrainingError> {
        let _prof = obs::prof::scope("training");
        let mut timings = PipelineTimings::default();
        let mut costs = TrainingCosts::default();
        let sim = |seed_off: u64| {
            let mut p = workload.sim_params();
            p.seed = config.seed.wrapping_add(seed_off);
            p
        };
        // Resolve the worker count once for the whole pipeline.
        // `resolve_threads` consults the `JUGGLER_THREADS` environment
        // variable; resolving per fan-out (worse: per `run_indexed` call)
        // re-reads the environment mid-training, so a variable change
        // while the pipeline runs would give different stages different
        // pools. One read, one answer, every stage.
        let threads = resolve_threads(config.threads);

        // ── Stage 1: hotspot detection (one instrumented sample run). ──
        let stage_prof = obs::prof::scope("stage1_hotspot");
        let clock = std::time::Instant::now();
        let sample = workload.sample_params();
        let sample_app = workload.build(&sample);
        let calib_cluster = ClusterConfig::new(1, config.calibration_spec);
        let (out, attempt) = crate::parallel::with_retry(TRAINING_RETRIES, |attempt| {
            profile_run(
                &sample_app,
                sample_app.default_schedule(),
                calib_cluster,
                sim(1 + u64::from(attempt) * RETRY_SEED_SALT),
            )
        })?;
        if attempt > 0 {
            timings.notes.push(format!(
                "stage-1 sample run succeeded on attempt {}",
                attempt + 1
            ));
        }
        costs.hotspot.add(&out.report);
        let metrics = DatasetMetricsView::from_metrics(&out.metrics, sample_app.dataset_count());
        let (schedules, hotspot_audit) = {
            let _detect = obs::prof::scope("detect");
            detect_hotspots_audited(&sample_app, &metrics, &config.hotspot)
        };
        timings.push("1: hotspot detection", clock, costs.hotspot.runs);
        obs::log_info!(
            "stage 1 done: {} candidate schedules from the sample run",
            schedules.len()
        );
        drop(stage_prof);

        // ── Stage 2: parameter calibration (3×3 instrumented runs, one
        //    grid point per worker; each point owns its seed). ──
        let stage_prof = obs::prof::scope("stage2_calibration");
        let clock = std::time::Instant::now();
        let (e_axis, f_axis) = workload.training_axes();
        let grid = ParamCalibration::training_grid(&e_axis, &f_axis);
        let wanted: BTreeSet<DatasetId> =
            ParamCalibration::datasets_of(schedules.iter().map(|s| s.schedule.as_ref()));
        // One application per grid point, built up front and shared into
        // the fan-out: the DAG is a pure function of the parameters, so a
        // retry (or a worker) re-deriving it can only waste time, never
        // change a result.
        let grid_apps: Vec<Arc<Application>> = grid
            .iter()
            .map(|&(e, f)| {
                let params = WorkloadParams::auto(e as u64, f as u64, sample.iterations);
                Arc::new(workload.build(&params))
            })
            .collect();
        let grid_runs = crate::parallel::run_indexed(grid.len(), threads, |gi| {
            let app = &grid_apps[gi];
            let attempt_run = |attempt: u32| {
                profile_run(
                    app.as_ref(),
                    app.default_schedule(),
                    calib_cluster,
                    sim(2 + gi as u64 + u64::from(attempt) * RETRY_SEED_SALT),
                )
            };
            match crate::parallel::with_retry(TRAINING_RETRIES, attempt_run) {
                Ok((run, attempt)) => {
                    let sizes: Vec<(DatasetId, u64)> = run
                        .metrics
                        .iter()
                        .filter(|m| wanted.contains(&m.dataset))
                        .map(|m| (m.dataset, m.size_bytes))
                        .collect();
                    Ok((run.report.cost_machine_minutes(), sizes, attempt))
                }
                Err(e) => Err(e.to_string()),
            }
        });
        // Accumulate in grid order — identical at any thread count. A grid
        // point whose run died on every attempt is skipped with a note:
        // the size models fit on the surviving eight points.
        let mut observations: HashMap<DatasetId, Vec<(f64, f64, u64)>> = HashMap::new();
        for (outcome, &(e, f)) in grid_runs.iter().zip(&grid) {
            match outcome {
                Ok((machine_minutes, sizes, attempt)) => {
                    if *attempt > 0 {
                        timings.notes.push(format!(
                            "stage-2 run at (e={e:.0}, f={f:.0}) succeeded on attempt {}",
                            attempt + 1
                        ));
                    }
                    costs.param_calibration.add_cost(*machine_minutes);
                    for &(dataset, size_bytes) in sizes {
                        observations
                            .entry(dataset)
                            .or_default()
                            .push((e, f, size_bytes));
                    }
                }
                Err(msg) => {
                    obs::log_warn!(
                        "stage-2 grid point (e={e:.0}, f={f:.0}) skipped after \
                         {TRAINING_RETRIES} attempts: {msg}"
                    );
                    timings.notes.push(format!(
                        "stage-2 run at (e={e:.0}, f={f:.0}) failed after \
                         {TRAINING_RETRIES} attempts; grid point skipped: {msg}"
                    ));
                }
            }
        }
        let fit_prof = obs::prof::scope("fit_sizes");
        let (sizes, size_fits) = match ParamCalibration::fit_with_reports(&observations) {
            Ok(pair) => pair,
            Err(_) if observations.is_empty() => (ParamCalibration::default(), Vec::new()),
            Err(e) => return Err(e.into()),
        };
        drop(fit_prof);
        timings.push(
            "2: parameter calibration",
            clock,
            costs.param_calibration.runs,
        );
        obs::log_info!(
            "stage 2 done: {} calibration runs, {} dataset size models",
            costs.param_calibration.runs,
            size_fits.len()
        );
        drop(stage_prof);

        // ── Stage 3: memory calibration (one run filling M). ──
        let stage_prof = obs::prof::scope("stage3_memory");
        let clock = std::time::Instant::now();
        let memory_factor = if let Some(first) = schedules.first() {
            let m_bytes = config.calibration_spec.unified_memory() as f64;
            let (e0, f0) = (
                *e_axis.last().expect("axes non-empty"),
                *f_axis.last().expect("axes non-empty"),
            );
            let scaled = MemoryCalibration::scale_params_to_target(e0, f0, m_bytes, |e, f| {
                sizes.predict_schedule_size(&first.schedule, e, f) as f64
            });
            if let Some(note) = scaled.outcome.note(m_bytes) {
                timings.notes.push(note);
            }
            let params = WorkloadParams::auto(scaled.e as u64, scaled.f as u64, sample.iterations);
            let app = workload.build(&params);
            // Plan the app once; retries only need a fresh seed, not a
            // fresh `EnginePrep`.
            let prep = Arc::new(EnginePrep::new(&app));
            let (report, attempt) = crate::parallel::with_retry(TRAINING_RETRIES, |attempt| {
                let engine = Engine::with_prep(
                    &app,
                    calib_cluster,
                    sim(20 + u64::from(attempt) * RETRY_SEED_SALT),
                    Arc::clone(&prep),
                );
                engine.run_shared(
                    &first.schedule,
                    RunOptions {
                        trace: config.trace,
                        ..RunOptions::default()
                    },
                )
            })?;
            if attempt > 0 {
                timings.notes.push(format!(
                    "stage-3 memory-calibration run succeeded on attempt {}",
                    attempt + 1
                ));
            }
            costs.memory_calibration.add(&report);
            if let Some(trace) = &report.trace {
                timings.notes.push(format!("stage-3 {}", trace.summary()));
            }
            MemoryFactor::from_run(&app, &first.schedule, &report)
        } else {
            MemoryFactor { factor: 1.0 }
        };
        timings.push(
            "3: memory calibration",
            clock,
            costs.memory_calibration.runs,
        );
        obs::log_info!("stage 3 done: memory factor {:.3}", memory_factor.factor);
        drop(stage_prof);

        // ── Stage 4: execution-time models (9 runs per schedule on the
        //    recommended configuration, full iteration counts). The
        //    (schedule × grid-point) matrix is flattened onto the worker
        //    pool; the seed offset `40 + k` matches the sequential loop. ──
        let stage_prof = obs::prof::scope("stage4_time_models");
        let clock = std::time::Instant::now();
        let paper = workload.paper_params();
        let cells = schedules.len() * grid.len();
        // The cell application depends only on the grid point — every
        // schedule (and every retry attempt) of the same `(e, f)` runs the
        // same DAG. Build it once per grid point, plan it once
        // (`EnginePrep`), and share both into the fan-out: per cell only
        // the cheap `Engine::with_prep` handle remains. Clusters still
        // differ per cell (the recommended machine count depends on the
        // schedule), which `with_prep` is built for.
        let cell_shared: Vec<(Arc<Application>, Arc<EnginePrep>)> = grid
            .iter()
            .map(|&(e, f)| {
                let params = WorkloadParams::auto(e as u64, f as u64, paper.iterations);
                let app = Arc::new(workload.build(&params));
                let prep = Arc::new(EnginePrep::new(&app));
                (app, prep)
            })
            .collect();
        let matrix = crate::parallel::run_indexed(cells, threads, |k| {
            let (si, gi) = (k / grid.len(), k % grid.len());
            let rs = &schedules[si];
            let (e, f) = grid[gi];
            let size = sizes.predict_schedule_size(&rs.schedule, e, f);
            let machines = memory_factor
                .recommend_machines(size, &config.target_spec)
                .min(config.max_machines);
            let cluster = ClusterConfig::new(machines, config.target_spec);
            let (app, prep) = &cell_shared[gi];
            let attempt_run = |attempt: u32| {
                let engine = Engine::with_prep(
                    app.as_ref(),
                    cluster,
                    sim(40 + k as u64 + u64::from(attempt) * RETRY_SEED_SALT),
                    Arc::clone(prep),
                );
                engine.run_shared(&rs.schedule, RunOptions::default())
            };
            match crate::parallel::with_retry(TRAINING_RETRIES, attempt_run) {
                Ok((report, attempt)) => Ok((
                    report.cost_machine_minutes(),
                    (e, f, report.total_time_s),
                    attempt,
                )),
                Err(e) => Err(e.to_string()),
            }
        });
        let mut time_models = Vec::with_capacity(schedules.len());
        let mut time_fits = Vec::with_capacity(schedules.len());
        for si in 0..schedules.len() {
            let row = &matrix[si * grid.len()..(si + 1) * grid.len()];
            let mut points = Vec::with_capacity(grid.len());
            for (ci, cell) in row.iter().enumerate() {
                let (e, f) = grid[ci];
                match cell {
                    Ok((machine_minutes, point, attempt)) => {
                        if *attempt > 0 {
                            timings.notes.push(format!(
                                "stage-4 run (schedule {si}, e={e:.0}, f={f:.0}) \
                                 succeeded on attempt {}",
                                attempt + 1
                            ));
                        }
                        costs.time_models.add_cost(*machine_minutes);
                        points.push(*point);
                    }
                    // A cell whose run died on every attempt loses one of
                    // the schedule's nine fit points; the model fits on
                    // the rest (and fitting fails loudly if none survive).
                    Err(msg) => {
                        obs::log_warn!(
                            "stage-4 cell (schedule {si}, e={e:.0}, f={f:.0}) skipped \
                             after {TRAINING_RETRIES} attempts: {msg}"
                        );
                        timings.notes.push(format!(
                            "stage-4 run (schedule {si}, e={e:.0}, f={f:.0}) failed after \
                             {TRAINING_RETRIES} attempts; point skipped: {msg}"
                        ));
                    }
                }
            }
            let fit_prof = obs::prof::scope("fit_times");
            let (model, report) = TimeModel::fit_with_report(si, &points)?;
            drop(fit_prof);
            time_models.push(model);
            time_fits.push(report);
        }
        timings.push("4: execution-time models", clock, costs.time_models.runs);
        obs::log_info!(
            "stage 4 done: {} matrix runs, {} time models",
            costs.time_models.runs,
            time_models.len()
        );
        drop(stage_prof);

        let reg = obs::global();
        if reg.enabled() {
            reg.counter("pipeline_trainings_total", "offline trainings completed")
                .inc();
        }

        let diagnostics = TrainingDiagnostics {
            hotspot: hotspot_audit,
            size_fits,
            time_fits,
            notes: timings.notes.clone(),
        };
        Ok((
            TrainedJuggler {
                workload: workload.name().to_owned(),
                schedules,
                sizes,
                memory_factor,
                time_models,
                target_spec: config.target_spec,
                max_machines: config.max_machines,
                costs,
            },
            timings,
            diagnostics,
        ))
    }
}

impl OfflineTraining {
    /// §6.1 extension: fits iteration-aware execution-time models by
    /// adding an iterations axis to the stage-4 experiments — "another
    /// (linear) execution time model can be extracted … by carrying out
    /// additional experiments". Returns one model per schedule, aligned
    /// with `trained.schedules`.
    pub fn fit_iteration_models(
        workload: &dyn Workload,
        config: &TrainingConfig,
        trained: &TrainedJuggler,
        iteration_axis: &[u32],
    ) -> Result<Vec<TimeModel>, TrainingError> {
        assert!(
            !iteration_axis.is_empty(),
            "need at least one iteration level"
        );
        let (e_axis, f_axis) = workload.training_axes();
        let grid = ParamCalibration::training_grid(&e_axis, &f_axis);
        // Flatten the (schedule × grid × iterations) cube onto the worker
        // pool; the seed offset `900 + k` matches the sequential loop.
        let per_schedule = grid.len() * iteration_axis.len();
        let cells = trained.schedules.len() * per_schedule;
        // As in stage 4: the application depends only on `(e, f, iters)`,
        // never on the schedule, so one app + prep per (grid point,
        // iteration level) is shared across every schedule's cells.
        let cube_shared: Vec<(Arc<Application>, Arc<EnginePrep>)> = grid
            .iter()
            .flat_map(|&(e, f)| iteration_axis.iter().map(move |&iters| (e, f, iters)))
            .map(|(e, f, iters)| {
                let params = WorkloadParams::auto(e as u64, f as u64, iters);
                let app = Arc::new(workload.build(&params));
                let prep = Arc::new(EnginePrep::new(&app));
                (app, prep)
            })
            .collect();
        let threads = resolve_threads(config.threads);
        let runs = try_run_indexed::<_, TrainingError, _>(cells, threads, |k| {
            let si = k / per_schedule;
            let (gi, ii) = (
                (k % per_schedule) / iteration_axis.len(),
                k % iteration_axis.len(),
            );
            let rs = &trained.schedules[si];
            let (e, f) = grid[gi];
            let iters = iteration_axis[ii];
            let size = trained.sizes.predict_schedule_size(&rs.schedule, e, f);
            let machines = trained
                .memory_factor
                .recommend_machines(size, &config.target_spec)
                .min(config.max_machines);
            let mut sim = workload.sim_params();
            sim.seed = config.seed.wrapping_add(900 + k as u64);
            let cluster = ClusterConfig::new(machines, config.target_spec);
            let (app, prep) = &cube_shared[gi * iteration_axis.len() + ii];
            let report = Engine::with_prep(app.as_ref(), cluster, sim, Arc::clone(prep))
                .run_shared(&rs.schedule, RunOptions::default())
                .map_err(TrainingError::from)?;
            Ok((e, f, f64::from(iters), report.total_time_s))
        })?;
        let mut models = Vec::with_capacity(trained.schedules.len());
        for (si, points) in runs.chunks(per_schedule).enumerate() {
            models.push(TimeModel::fit_with_iterations(si, points)?);
        }
        Ok(models)
    }
}
