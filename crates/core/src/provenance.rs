//! Run provenance: the typed [`RunManifest`] every training/validation
//! run emits into the ledger, and the cross-run drift diff behind
//! `juggler runs diff`.
//!
//! A manifest has two parts with deliberately different contracts:
//!
//! * **Content** ([`ManifestContent`]) — everything the run *computed*:
//!   workload identity and parameters, seed, per-schedule digests, every
//!   fitted model's winning spec and coefficients, the prediction
//!   ledger's relative errors, and the deterministic counter snapshot.
//!   Content is canonically serialized (compact JSON, struct fields in
//!   declaration order, floats in Rust's shortest-roundtrip form) and
//!   hashed with the workspace SHA-256; the hash is the run's identity.
//!   Content must be **bit-identical across worker-thread counts** —
//!   the same determinism contract as every trained artifact.
//! * **Envelope** ([`ManifestEnvelope`]) — how the run was *executed*:
//!   schema version, tool name, thread counts. Recorded for forensics,
//!   **excluded from the hash** — re-running the same training at a
//!   different thread count maps to the same run id.
//!
//! Nothing here carries a wall-clock timestamp: identity must not
//! depend on when a run happened, only on what it computed. Host-side
//! stage timings stay in [`PipelineTimings`](crate::PipelineTimings)
//! and never enter a manifest.

use serde::{Deserialize, Serialize};

use dagflow::Schedule;
use modeling::ModelSummary;
use workloads::WorkloadParams;

use crate::doctor::DoctorReport;
use crate::pipeline::{TrainingConfig, TrainingCosts};

/// Version of the manifest content schema. Bump on any change to the
/// canonical serialization; `runs diff` refuses cross-version diffs.
pub const SCHEMA_VERSION: u32 = 1;

/// Execution circumstances — recorded, never hashed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEnvelope {
    /// Content-schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing tool, e.g. `juggler doctor`.
    pub tool: String,
    /// `TrainingConfig::threads` as requested (0 = auto).
    pub threads_requested: usize,
    /// The worker-thread count the request resolved to on this host.
    pub threads_resolved: usize,
}

/// One schedule the training ranked, with a content digest of the
/// schedule itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleRecord {
    /// Index in the trained artifact's schedule order.
    pub index: usize,
    /// Human-readable schedule notation.
    pub notation: String,
    /// SHA-256 of the schedule's canonical serialization.
    pub digest: String,
    /// Estimated caching benefit, seconds.
    pub benefit_s: f64,
    /// Memory budget the schedule needs, bytes.
    pub budget_bytes: u64,
}

/// One fitted model: a stable name plus the winning spec, coefficients
/// and LOO-CV error (see [`modeling::ModelSummary`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Stable name, e.g. `size D3` or `time [0]`.
    pub name: String,
    /// The winner's spec, coefficients, and cross-validation error.
    pub model: ModelSummary,
}

/// One predicted-vs-simulated validation row (mirrors
/// [`crate::LedgerEntry`], minus the redundant workload/params fields).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionRecord {
    /// Index of the schedule the prediction targeted.
    pub schedule_index: usize,
    /// Recommended machine count.
    pub machines: u32,
    /// Predicted execution time, seconds.
    pub predicted_time_s: f64,
    /// Simulated execution time, seconds.
    pub actual_time_s: f64,
    /// Predicted memory budget, bytes.
    pub predicted_size_bytes: u64,
    /// Observed peak cached bytes.
    pub actual_peak_bytes: u64,
    /// Digest of the validating run's report.
    pub report_digest: String,
}

/// The prediction-quality block of a manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionsRecord {
    /// Per-option validation rows.
    pub entries: Vec<PredictionRecord>,
    /// Mean relative time-prediction error (negative when no entries).
    pub mean_time_rel_error: f64,
    /// Worst relative time-prediction error (negative when no entries).
    pub max_time_rel_error: f64,
    /// Mean relative size-prediction error (negative when no entries).
    pub mean_size_rel_error: f64,
}

/// One deterministic counter from the metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// The hashed body of a manifest — everything the run computed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestContent {
    /// Workload name.
    pub workload: String,
    /// Workload parameters the validations used.
    pub params: WorkloadParams,
    /// RNG seed threaded into every simulated run.
    pub seed: u64,
    /// Machine-count cap.
    pub max_machines: u32,
    /// Calibrated memory factor.
    pub memory_factor: f64,
    /// Ranked schedules with their digests.
    pub schedules: Vec<ScheduleRecord>,
    /// Per-dataset size models, ordered by dataset id.
    pub size_models: Vec<ModelRecord>,
    /// Per-schedule time models, in schedule order.
    pub time_models: Vec<ModelRecord>,
    /// Per-stage training costs.
    pub training_costs: TrainingCosts,
    /// Predicted-vs-simulated validation summary.
    pub predictions: PredictionsRecord,
    /// Deterministic counters from the metrics snapshot, sorted by name.
    pub counters: Vec<CounterRecord>,
}

/// A complete, storable run manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Execution circumstances (never hashed).
    pub envelope: ManifestEnvelope,
    /// The hashed body.
    pub content: ManifestContent,
    /// SHA-256 of the content's canonical serialization.
    pub content_hash: String,
}

/// SHA-256 of a schedule's canonical serialization — the per-schedule
/// digest recorded in manifests.
#[must_use]
pub fn schedule_digest(schedule: &Schedule) -> String {
    let canonical = serde_json::to_string(schedule).expect("Schedule always serializes");
    obs::sha256_hex(canonical.as_bytes())
}

impl ManifestContent {
    /// The canonical serialization the content hash covers: compact
    /// JSON, struct fields in declaration order, maps pre-sorted.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("ManifestContent always serializes")
    }

    /// SHA-256 over [`Self::canonical_json`].
    #[must_use]
    pub fn hash(&self) -> String {
        obs::sha256_hex(self.canonical_json().as_bytes())
    }
}

impl RunManifest {
    /// Builds the manifest of one `juggler doctor` run.
    #[must_use]
    pub fn from_doctor(
        report: &DoctorReport,
        config: &TrainingConfig,
        params: &WorkloadParams,
    ) -> Self {
        let trained = &report.trained;
        let schedules = trained
            .schedules
            .iter()
            .enumerate()
            .map(|(index, rs)| ScheduleRecord {
                index,
                notation: rs.schedule.notation(),
                digest: schedule_digest(&rs.schedule),
                benefit_s: rs.benefit_s,
                budget_bytes: rs.budget_bytes,
            })
            .collect();
        // HashMap order is nondeterministic; sort by dataset id.
        let mut size_models: Vec<ModelRecord> = trained
            .sizes
            .models()
            .values()
            .map(|sm| ModelRecord {
                name: format!("size {}", sm.dataset),
                model: ModelSummary::of(&sm.model, sm.cv_error),
            })
            .collect();
        size_models.sort_by(|a, b| a.name.cmp(&b.name));
        let time_models = trained
            .time_models
            .iter()
            .map(|tm| ModelRecord {
                name: format!("time [{}]", tm.schedule_index),
                model: ModelSummary::of(&tm.model, tm.cv_error),
            })
            .collect();
        let entries: Vec<PredictionRecord> = report
            .ledger
            .entries
            .iter()
            .map(|e| PredictionRecord {
                schedule_index: e.schedule_index,
                machines: e.machines,
                predicted_time_s: e.predicted_time_s,
                actual_time_s: e.actual_time_s,
                predicted_size_bytes: e.predicted_size_bytes,
                actual_peak_bytes: e.actual_peak_bytes,
                report_digest: e.report_digest.clone(),
            })
            .collect();
        let predictions = PredictionsRecord {
            entries,
            mean_time_rel_error: report.ledger.mean_time_rel_error().unwrap_or(-1.0),
            max_time_rel_error: report.ledger.max_time_rel_error().unwrap_or(-1.0),
            mean_size_rel_error: report.ledger.mean_size_rel_error().unwrap_or(-1.0),
        };
        let mut counters: Vec<CounterRecord> = report
            .snapshot
            .metrics
            .iter()
            .filter_map(|m| match m.value {
                obs::MetricValue::Counter(v) => Some(CounterRecord {
                    name: m.name.clone(),
                    value: v,
                }),
                _ => None,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let content = ManifestContent {
            workload: trained.workload.clone(),
            params: *params,
            seed: config.seed,
            max_machines: trained.max_machines,
            memory_factor: trained.memory_factor.factor,
            schedules,
            size_models,
            time_models,
            training_costs: trained.costs,
            predictions,
            counters,
        };
        let content_hash = content.hash();
        RunManifest {
            envelope: ManifestEnvelope {
                schema_version: SCHEMA_VERSION,
                tool: "juggler doctor".to_owned(),
                threads_requested: config.threads,
                threads_resolved: crate::parallel::resolve_threads(config.threads),
            },
            content,
            content_hash,
        }
    }

    /// Run id: the leading 16 hex chars of the content hash (matches
    /// the ledger-store file stem).
    #[must_use]
    pub fn id(&self) -> String {
        obs::LedgerStore::id_of(&self.content_hash)
    }

    /// Full-manifest JSON for the ledger store (pretty, trailing
    /// newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("RunManifest always serializes");
        s.push('\n');
        s
    }

    /// Parses a stored manifest and verifies its content hash.
    pub fn from_json(raw: &str) -> Result<Self, String> {
        let manifest: RunManifest =
            serde_json::from_str(raw).map_err(|e| format!("manifest: {e}"))?;
        let recomputed = manifest.content.hash();
        if recomputed != manifest.content_hash {
            return Err(format!(
                "manifest content hash mismatch: declared {}, recomputed {} \
                 (corrupted file or schema drift)",
                manifest.content_hash, recomputed
            ));
        }
        Ok(manifest)
    }

    /// Test-only hook: multiplies one coefficient of one time model by
    /// `1 + delta_rel` and rehashes, simulating silent model drift. Used
    /// by the drift-detection tests and nothing else.
    #[doc(hidden)]
    pub fn perturb_time_coefficient(&mut self, schedule_index: usize, delta_rel: f64) {
        if let Some(record) = self.content.time_models.get_mut(schedule_index) {
            if let Some(c) = record.model.coeffs.iter_mut().find(|c| **c != 0.0) {
                *c *= 1.0 + delta_rel;
            }
        }
        self.content_hash = self.content.hash();
    }
}

// ───────────────────────────── diffing ─────────────────────────────

/// What separates noise from drift when diffing two manifests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffTolerances {
    /// Relative tolerance for model coefficients: a coefficient pair
    /// `(a, b)` drifts when `|a - b| > coeff_rel · max(|a|, |b|)`.
    pub coeff_rel: f64,
    /// Absolute tolerance on prediction relative errors (which are
    /// themselves fractions): an error that grows by more than this is
    /// a regression.
    pub pred_err_abs: f64,
}

impl Default for DiffTolerances {
    fn default() -> Self {
        // Training is bit-deterministic, so the default tolerances are
        // tight: they only absorb last-ulp noise from refactored float
        // arithmetic, not behaviour changes.
        DiffTolerances {
            coeff_rel: 1e-6,
            pred_err_abs: 1e-3,
        }
    }
}

/// One detected difference between two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Short category tag (`model`, `coeff`, `prediction`, `counter`,
    /// `schedule`, `identity`).
    pub category: &'static str,
    /// Human-readable account of the change, `a → b`.
    pub detail: String,
}

/// The result of diffing two manifests' *content* (envelopes are
/// execution circumstances and never diffed).
#[derive(Debug, Clone)]
pub struct ManifestDiff {
    /// Id of the left (older/reference) run.
    pub a_id: String,
    /// Id of the right (newer/candidate) run.
    pub b_id: String,
    /// Every detected drift, in a fixed section order.
    pub drifts: Vec<Drift>,
}

fn rel_differs(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return false;
    }
    if !a.is_finite() || !b.is_finite() {
        return true;
    }
    (a - b).abs() > rel_tol * a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

impl ManifestDiff {
    /// Diffs `b` (candidate) against `a` (reference).
    #[must_use]
    pub fn between(a: &RunManifest, b: &RunManifest, tol: &DiffTolerances) -> Self {
        let mut drifts = Vec::new();
        let push = |drifts: &mut Vec<Drift>, category: &'static str, detail: String| {
            drifts.push(Drift { category, detail });
        };
        let ca = &a.content;
        let cb = &b.content;

        // Identity: when these differ the runs aren't comparable, but
        // the diff still reports rather than erroring.
        if ca.workload != cb.workload {
            push(
                &mut drifts,
                "identity",
                format!("workload: {} → {}", ca.workload, cb.workload),
            );
        }
        if ca.params != cb.params {
            push(
                &mut drifts,
                "identity",
                format!(
                    "params: (e {}, f {}, i {}) → (e {}, f {}, i {})",
                    ca.params.examples,
                    ca.params.features,
                    ca.params.iterations,
                    cb.params.examples,
                    cb.params.features,
                    cb.params.iterations
                ),
            );
        }
        if ca.seed != cb.seed {
            push(
                &mut drifts,
                "identity",
                format!("seed: {:#x} → {:#x}", ca.seed, cb.seed),
            );
        }
        if ca.max_machines != cb.max_machines {
            push(
                &mut drifts,
                "identity",
                format!("max machines: {} → {}", ca.max_machines, cb.max_machines),
            );
        }
        if rel_differs(ca.memory_factor, cb.memory_factor, tol.coeff_rel) {
            push(
                &mut drifts,
                "model",
                format!(
                    "memory factor: {} → {}",
                    obs::fmt_sig(ca.memory_factor, 6),
                    obs::fmt_sig(cb.memory_factor, 6)
                ),
            );
        }

        // Schedules.
        if ca.schedules.len() != cb.schedules.len() {
            push(
                &mut drifts,
                "schedule",
                format!(
                    "schedule count: {} → {}",
                    ca.schedules.len(),
                    cb.schedules.len()
                ),
            );
        }
        for (sa, sb) in ca.schedules.iter().zip(&cb.schedules) {
            if sa.notation != sb.notation {
                push(
                    &mut drifts,
                    "schedule",
                    format!("[{}] schedule: {} → {}", sa.index, sa.notation, sb.notation),
                );
            } else if sa.digest != sb.digest {
                push(
                    &mut drifts,
                    "schedule",
                    format!(
                        "[{}] {} digest: {}… → {}…",
                        sa.index,
                        sa.notation,
                        &sa.digest[..12.min(sa.digest.len())],
                        &sb.digest[..12.min(sb.digest.len())]
                    ),
                );
            }
            if sa.budget_bytes != sb.budget_bytes {
                let delta = i128::from(sb.budget_bytes) - i128::from(sa.budget_bytes);
                push(
                    &mut drifts,
                    "schedule",
                    format!(
                        "[{}] budget: {} → {} ({})",
                        sa.index,
                        obs::fmt_bytes(sa.budget_bytes),
                        obs::fmt_bytes(sb.budget_bytes),
                        obs::fmt_bytes_delta(delta)
                    ),
                );
            }
            if rel_differs(sa.benefit_s, sb.benefit_s, tol.coeff_rel) {
                push(
                    &mut drifts,
                    "schedule",
                    format!(
                        "[{}] benefit: {} → {}",
                        sa.index,
                        obs::fmt_duration_s(sa.benefit_s),
                        obs::fmt_duration_s(sb.benefit_s)
                    ),
                );
            }
        }

        // Models: winners, then coefficients.
        diff_models(&mut drifts, &ca.size_models, &cb.size_models, tol);
        diff_models(&mut drifts, &ca.time_models, &cb.time_models, tol);

        // Prediction-error regressions (improvements are not drift).
        let pairs = [
            (
                "mean time rel error",
                ca.predictions.mean_time_rel_error,
                cb.predictions.mean_time_rel_error,
            ),
            (
                "max time rel error",
                ca.predictions.max_time_rel_error,
                cb.predictions.max_time_rel_error,
            ),
            (
                "mean size rel error",
                ca.predictions.mean_size_rel_error,
                cb.predictions.mean_size_rel_error,
            ),
        ];
        for (label, ea, eb) in pairs {
            if eb > ea + tol.pred_err_abs {
                push(
                    &mut drifts,
                    "prediction",
                    format!(
                        "{label} regressed: {}% → {}%",
                        obs::fmt_sig(ea * 100.0, 3),
                        obs::fmt_sig(eb * 100.0, 3)
                    ),
                );
            }
        }
        for (pa, pb) in ca.predictions.entries.iter().zip(&cb.predictions.entries) {
            if pa.schedule_index == pb.schedule_index && pa.report_digest != pb.report_digest {
                push(
                    &mut drifts,
                    "prediction",
                    format!(
                        "[{}] validation report digest: {}… → {}…",
                        pa.schedule_index,
                        &pa.report_digest[..12.min(pa.report_digest.len())],
                        &pb.report_digest[..12.min(pb.report_digest.len())]
                    ),
                );
            }
        }

        // Counter drift (sorted-by-name merge).
        let mut ia = ca.counters.iter().peekable();
        let mut ib = cb.counters.iter().peekable();
        loop {
            match (ia.peek(), ib.peek()) {
                (Some(x), Some(y)) if x.name == y.name => {
                    if x.value != y.value {
                        let delta = i128::from(y.value) - i128::from(x.value);
                        push(
                            &mut drifts,
                            "counter",
                            format!("{}: {} → {} ({:+})", x.name, x.value, y.value, delta),
                        );
                    }
                    ia.next();
                    ib.next();
                }
                (Some(x), Some(y)) if x.name < y.name => {
                    push(
                        &mut drifts,
                        "counter",
                        format!("{} disappeared (was {})", x.name, x.value),
                    );
                    ia.next();
                }
                (Some(_), Some(y)) => {
                    push(
                        &mut drifts,
                        "counter",
                        format!("{} appeared ({})", y.name, y.value),
                    );
                    ib.next();
                }
                (Some(x), None) => {
                    push(
                        &mut drifts,
                        "counter",
                        format!("{} disappeared (was {})", x.name, x.value),
                    );
                    ia.next();
                }
                (None, Some(y)) => {
                    push(
                        &mut drifts,
                        "counter",
                        format!("{} appeared ({})", y.name, y.value),
                    );
                    ib.next();
                }
                (None, None) => break,
            }
        }

        ManifestDiff {
            a_id: a.id(),
            b_id: b.id(),
            drifts,
        }
    }

    /// Whether anything drifted.
    #[must_use]
    pub fn has_drift(&self) -> bool {
        !self.drifts.is_empty()
    }

    /// Deterministic human-readable rendering (the `runs diff` output).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("runs diff {} .. {}\n", self.a_id, self.b_id);
        if self.drifts.is_empty() {
            out.push_str("  no drift\n");
            return out;
        }
        for d in &self.drifts {
            out.push_str(&format!("  [{}] {}\n", d.category, d.detail));
        }
        let n = self.drifts.len();
        out.push_str(&format!(
            "  {n} drift{} detected\n",
            if n == 1 { "" } else { "s" }
        ));
        out
    }
}

fn diff_models(
    drifts: &mut Vec<Drift>,
    a: &[ModelRecord],
    b: &[ModelRecord],
    tol: &DiffTolerances,
) {
    if a.len() != b.len() {
        drifts.push(Drift {
            category: "model",
            detail: format!("model count: {} → {}", a.len(), b.len()),
        });
    }
    for (ma, mb) in a.iter().zip(b) {
        let name = if ma.name == mb.name {
            ma.name.clone()
        } else {
            format!("{}/{}", ma.name, mb.name)
        };
        if ma.model.spec != mb.model.spec {
            drifts.push(Drift {
                category: "model",
                detail: format!(
                    "{name} winner changed: {} → {}",
                    ma.model.spec, mb.model.spec
                ),
            });
            // Coefficients of different specs aren't comparable.
            continue;
        }
        for (k, (ca, cb)) in ma.model.coeffs.iter().zip(&mb.model.coeffs).enumerate() {
            if rel_differs(*ca, *cb, tol.coeff_rel) {
                drifts.push(Drift {
                    category: "coeff",
                    detail: format!(
                        "{name} θ{k}: {} → {}",
                        obs::fmt_sig(*ca, 6),
                        obs::fmt_sig(*cb, 6)
                    ),
                });
            }
        }
        if rel_differs(ma.model.cv_error, mb.model.cv_error, tol.coeff_rel)
            && (mb.model.cv_error - ma.model.cv_error).abs() > tol.pred_err_abs
        {
            drifts.push(Drift {
                category: "model",
                detail: format!(
                    "{name} cv error: {}% → {}%",
                    obs::fmt_sig(ma.model.cv_error * 100.0, 3),
                    obs::fmt_sig(mb.model.cv_error * 100.0, 3)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest() -> RunManifest {
        let content = ManifestContent {
            workload: "TINY".into(),
            params: WorkloadParams {
                examples: 4_000,
                features: 800,
                iterations: 4,
                partitions: 4,
            },
            seed: 0x5EED,
            max_machines: 12,
            memory_factor: 1.0,
            schedules: vec![ScheduleRecord {
                index: 0,
                notation: "P(D2@D0)".into(),
                digest: "ab".repeat(32),
                benefit_s: 12.5,
                budget_bytes: 1_000_000,
            }],
            size_models: vec![ModelRecord {
                name: "size D2".into(),
                model: ModelSummary {
                    spec: "e·f".into(),
                    coeffs: vec![0.016],
                    cv_error: 0.001,
                },
            }],
            time_models: vec![ModelRecord {
                name: "time [0]".into(),
                model: ModelSummary {
                    spec: "1 + e·f".into(),
                    coeffs: vec![30.0, 3.2e-7],
                    cv_error: 0.02,
                },
            }],
            training_costs: TrainingCosts::default(),
            predictions: PredictionsRecord {
                entries: vec![PredictionRecord {
                    schedule_index: 0,
                    machines: 4,
                    predicted_time_s: 100.0,
                    actual_time_s: 104.0,
                    predicted_size_bytes: 900_000,
                    actual_peak_bytes: 950_000,
                    report_digest: "cd".repeat(32),
                }],
                mean_time_rel_error: 0.04,
                max_time_rel_error: 0.04,
                mean_size_rel_error: 0.05,
            },
            counters: vec![
                CounterRecord {
                    name: "sim_runs_total".into(),
                    value: 11,
                },
                CounterRecord {
                    name: "sim_cache_hits_total".into(),
                    value: 42,
                },
            ],
        };
        let content_hash = content.hash();
        RunManifest {
            envelope: ManifestEnvelope {
                schema_version: SCHEMA_VERSION,
                tool: "test".into(),
                threads_requested: 0,
                threads_resolved: 8,
            },
            content,
            content_hash,
        }
    }

    #[test]
    fn hash_covers_content_not_envelope() {
        let a = tiny_manifest();
        let mut b = a.clone();
        b.envelope.threads_resolved = 1;
        b.envelope.tool = "other".into();
        assert_eq!(a.content.hash(), b.content.hash());
        assert_eq!(a.id(), b.id());
        let mut c = a.clone();
        c.content.seed ^= 1;
        assert_ne!(a.content.hash(), c.content.hash());
    }

    #[test]
    fn json_roundtrip_preserves_identity() {
        let m = tiny_manifest();
        let parsed = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.content_hash, m.content.hash());
    }

    #[test]
    fn from_json_rejects_tampered_content() {
        let m = tiny_manifest();
        let tampered = m.to_json().replace("\"seed\": 24301", "\"seed\": 24302");
        assert_ne!(tampered, m.to_json(), "replacement must hit");
        let err = RunManifest::from_json(&tampered).unwrap_err();
        assert!(err.contains("hash mismatch"), "{err}");
    }

    #[test]
    fn identical_manifests_diff_clean() {
        let a = tiny_manifest();
        let diff = ManifestDiff::between(&a, &a.clone(), &DiffTolerances::default());
        assert!(!diff.has_drift(), "{:#?}", diff.drifts);
        assert!(diff.render().contains("no drift"));
    }

    #[test]
    fn perturbed_coefficient_is_flagged() {
        let a = tiny_manifest();
        let mut b = a.clone();
        b.perturb_time_coefficient(0, 0.05);
        assert_ne!(a.content_hash, b.content_hash);
        let diff = ManifestDiff::between(&a, &b, &DiffTolerances::default());
        assert!(diff.has_drift());
        let coeff = diff
            .drifts
            .iter()
            .find(|d| d.category == "coeff")
            .expect("coefficient drift");
        assert!(coeff.detail.contains("time [0]"), "{}", coeff.detail);
    }

    #[test]
    fn sub_tolerance_jitter_is_not_drift() {
        let a = tiny_manifest();
        let mut b = a.clone();
        // One-ulp-scale wiggle, far below coeff_rel = 1e-6.
        b.content.time_models[0].model.coeffs[1] *= 1.0 + 1e-12;
        b.content_hash = b.content.hash();
        let diff = ManifestDiff::between(&a, &b, &DiffTolerances::default());
        assert!(!diff.has_drift(), "{:#?}", diff.drifts);
    }

    #[test]
    fn winner_change_suppresses_coefficient_noise() {
        let a = tiny_manifest();
        let mut b = a.clone();
        b.content.time_models[0].model.spec = "e·f".into();
        b.content.time_models[0].model.coeffs = vec![9.9];
        b.content_hash = b.content.hash();
        let diff = ManifestDiff::between(&a, &b, &DiffTolerances::default());
        let cats: Vec<&str> = diff.drifts.iter().map(|d| d.category).collect();
        assert!(cats.contains(&"model"), "{cats:?}");
        assert!(!cats.contains(&"coeff"), "{cats:?}");
    }

    #[test]
    fn prediction_regressions_and_counter_drift_are_flagged() {
        let a = tiny_manifest();
        let mut b = a.clone();
        b.content.predictions.mean_time_rel_error = 0.09;
        b.content.counters[1].value = 45;
        b.content.counters.push(CounterRecord {
            name: "zzz_new_total".into(),
            value: 1,
        });
        b.content_hash = b.content.hash();
        let diff = ManifestDiff::between(&a, &b, &DiffTolerances::default());
        let text = diff.render();
        assert!(
            text.contains("mean time rel error regressed: 4% → 9%"),
            "{text}"
        );
        assert!(
            text.contains("sim_cache_hits_total: 42 → 45 (+3)"),
            "{text}"
        );
        assert!(text.contains("zzz_new_total appeared (1)"), "{text}");
        // An *improvement* is not drift.
        let mut c = a.clone();
        c.content.predictions.mean_time_rel_error = 0.01;
        c.content_hash = c.content.hash();
        let diff = ManifestDiff::between(&a, &c, &DiffTolerances::default());
        assert!(!diff.has_drift(), "{:#?}", diff.drifts);
    }
}
