//! Human-readable model cards for trained artifacts: what end users (and
//! the CLI) see after offline training — schedules, fitted formulas, the
//! memory factor, and training-cost accounting.

use std::fmt::Write as _;

use crate::pipeline::TrainedJuggler;

/// Renders a plain-text model card for a trained artifact.
#[must_use]
pub fn model_card(trained: &TrainedJuggler) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Juggler model card — {}", trained.workload);
    let _ = writeln!(out, "{}", "=".repeat(24 + trained.workload.len()));

    let _ = writeln!(out, "\nSchedules (hotspot detection):");
    for (i, rs) in trained.schedules.iter().enumerate() {
        let _ = writeln!(
            out,
            "  #{} {:<28} benefit {:>8.2}s   budget {:>9.1} MB (sample scale)",
            i + 1,
            rs.schedule.notation(),
            rs.benefit_s,
            rs.budget_bytes as f64 / 1e6,
        );
    }

    let _ = writeln!(out, "\nSize models (parameter calibration):");
    let mut size_models: Vec<_> = trained.sizes.models().values().collect();
    size_models.sort_by_key(|m| m.dataset);
    for m in size_models {
        let _ = writeln!(
            out,
            "  {:<5} bytes = {}   (LOOCV error {:.3}%)",
            m.dataset.to_string(),
            m.model.render(),
            m.cv_error * 100.0
        );
    }

    let _ = writeln!(
        out,
        "\nMemory factor: {:.3}  =>  {:.2} GB usable for caching per {} GB machine",
        trained.memory_factor.factor,
        trained
            .memory_factor
            .memory_for_caching(&trained.target_spec)
            / 1e9,
        trained.target_spec.ram_bytes / 1_000_000_000,
    );

    let _ = writeln!(out, "\nExecution-time models (per schedule, seconds):");
    for tm in &trained.time_models {
        let _ = writeln!(
            out,
            "  #{} t(e, f) = {}   (LOOCV error {:.1}%)",
            tm.schedule_index + 1,
            tm.model.render(),
            tm.cv_error * 100.0
        );
    }

    let c = &trained.costs;
    let _ = writeln!(
        out,
        "\nTraining cost: {:.1} machine-min over {} runs \
         (hotspot {:.1}, calibration {:.1}, memory {:.1}, time models {:.1})",
        c.total_machine_minutes(),
        c.hotspot.runs + c.param_calibration.runs + c.memory_calibration.runs + c.time_models.runs,
        c.hotspot.machine_minutes,
        c.param_calibration.machine_minutes,
        c.memory_calibration.machine_minutes,
        c.time_models.machine_minutes,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{OfflineTraining, TrainingConfig};
    use workloads::Pca;

    #[test]
    fn card_mentions_every_component() {
        let trained = OfflineTraining::run(&Pca, &TrainingConfig::default()).unwrap();
        let card = model_card(&trained);
        assert!(card.contains("Juggler model card — PCA"));
        assert!(card.contains("p(1) u(1) p(2) u(2) p(13)"));
        assert!(card.contains("Memory factor"));
        assert!(card.contains("Execution-time models"));
        assert!(card.contains("Training cost"));
        // Fitted formulas use the monomial rendering.
        assert!(card.contains("e·f") || card.contains("·e"), "{card}");
    }
}
