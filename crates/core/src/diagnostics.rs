//! Decision and model-quality diagnostics for the offline pipeline.
//!
//! [`TrainingDiagnostics`] bundles everything `juggler doctor` needs to
//! explain *why* a trained artifact looks the way it does: the hotspot
//! decision trace ([`HotspotAudit`]), the per-dataset size-model fit
//! reports and per-schedule time-model fit reports (each a
//! [`modeling::FitReport`] with every candidate family's LOO-CV score),
//! and the calibration notes. [`PredictionLedger`] then records
//! predicted-vs-simulated outcomes so prediction quality can be
//! summarized as relative errors.
//!
//! Everything here is plain serializable data — no wall-clock values, so
//! a diagnostics dump is deterministic for a given (workload, config).

use serde::{Deserialize, Serialize};

use dagflow::DatasetId;
use modeling::FitReport;

use crate::hotspot::HotspotAudit;

/// The model-quality and decision evidence gathered during one offline
/// training (see [`crate::OfflineTraining::run_full`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingDiagnostics {
    /// The hotspot-detection decision trace (stage 1).
    pub hotspot: HotspotAudit,
    /// Per-dataset size-model fit reports (stage 2), ordered by dataset.
    pub size_fits: Vec<(DatasetId, FitReport)>,
    /// Per-schedule time-model fit reports (stage 4), aligned with the
    /// trained artifact's schedule order.
    pub time_fits: Vec<FitReport>,
    /// Calibration notes (same strings as the pipeline timings' notes).
    pub notes: Vec<String>,
}

/// One predicted-vs-observed comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Workload name.
    pub workload: String,
    /// Index of the schedule in the trained artifact.
    pub schedule_index: usize,
    /// Application parameter `e` (examples).
    pub examples: f64,
    /// Application parameter `f` (features).
    pub features: f64,
    /// Machine count the prediction targeted (Eq. 6).
    pub machines: u32,
    /// Predicted execution time, seconds.
    pub predicted_time_s: f64,
    /// Observed (simulated) execution time, seconds.
    pub actual_time_s: f64,
    /// Predicted schedule memory budget, bytes.
    pub predicted_size_bytes: u64,
    /// Observed peak cached bytes during the run.
    pub actual_peak_bytes: u64,
    /// Content digest of the validating run's report (see
    /// `cluster_sim::RunReport::digest`) — lets run manifests prove which
    /// simulated outcome backed each prediction row.
    pub report_digest: String,
}

/// Relative error of `predicted` against `actual`; absolute error when
/// the reference is (numerically) zero.
fn rel_error(predicted: f64, actual: f64) -> f64 {
    let diff = (predicted - actual).abs();
    if actual.abs() < 1e-12 {
        diff
    } else {
        diff / actual.abs()
    }
}

impl LedgerEntry {
    /// Relative time-prediction error against the observed run.
    #[must_use]
    pub fn time_rel_error(&self) -> f64 {
        rel_error(self.predicted_time_s, self.actual_time_s)
    }

    /// Relative size-prediction error against the observed peak.
    #[must_use]
    pub fn size_rel_error(&self) -> f64 {
        rel_error(
            self.predicted_size_bytes as f64,
            self.actual_peak_bytes as f64,
        )
    }
}

/// A collection of predicted-vs-observed rows with error summaries —
/// the evidence behind the paper's Figure 11/12 accuracy claims.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionLedger {
    /// The comparison rows, in recording order.
    pub entries: Vec<LedgerEntry>,
}

impl PredictionLedger {
    /// Appends one comparison row.
    pub fn push(&mut self, entry: LedgerEntry) {
        self.entries.push(entry);
    }

    /// Mean relative time-prediction error, `None` when empty.
    #[must_use]
    pub fn mean_time_rel_error(&self) -> Option<f64> {
        mean(self.entries.iter().map(LedgerEntry::time_rel_error))
    }

    /// Worst relative time-prediction error, `None` when empty.
    #[must_use]
    pub fn max_time_rel_error(&self) -> Option<f64> {
        self.entries
            .iter()
            .map(LedgerEntry::time_rel_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Mean relative size-prediction error, `None` when empty.
    #[must_use]
    pub fn mean_size_rel_error(&self) -> Option<f64> {
        mean(self.entries.iter().map(LedgerEntry::size_rel_error))
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> Option<f64> {
    let mut n = 0u32;
    let mut sum = 0.0;
    for v in iter {
        n += 1;
        sum += v;
    }
    (n > 0).then(|| sum / f64::from(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pred_t: f64, act_t: f64, pred_b: u64, act_b: u64) -> LedgerEntry {
        LedgerEntry {
            workload: "LOR".into(),
            schedule_index: 0,
            examples: 1e4,
            features: 1e3,
            machines: 4,
            predicted_time_s: pred_t,
            actual_time_s: act_t,
            predicted_size_bytes: pred_b,
            actual_peak_bytes: act_b,
            report_digest: String::new(),
        }
    }

    #[test]
    fn rel_errors_use_actual_as_reference() {
        let e = entry(110.0, 100.0, 90, 100);
        assert!((e.time_rel_error() - 0.1).abs() < 1e-12);
        assert!((e.size_rel_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_falls_back_to_absolute() {
        let e = entry(0.25, 0.0, 0, 0);
        assert!((e.time_rel_error() - 0.25).abs() < 1e-12);
        assert_eq!(e.size_rel_error(), 0.0);
    }

    #[test]
    fn ledger_summaries() {
        let mut ledger = PredictionLedger::default();
        assert_eq!(ledger.mean_time_rel_error(), None);
        ledger.push(entry(110.0, 100.0, 100, 100));
        ledger.push(entry(100.0, 100.0, 100, 100));
        let mean = ledger.mean_time_rel_error().unwrap();
        assert!((mean - 0.05).abs() < 1e-12, "{mean}");
        let max = ledger.max_time_rel_error().unwrap();
        assert!((max - 0.1).abs() < 1e-12, "{max}");
        assert_eq!(ledger.mean_size_rel_error().unwrap(), 0.0);
    }
}
