//! Machine-type transfer (paper §6.2).
//!
//! Public clouds offer hundreds of instance types. Juggler's *optimization*
//! models transfer as-is: dataset selection and size prediction do not
//! depend on the machine, and the cluster-configuration formula (Eq. 5/6)
//! only needs the new machine's memory size, "which is known in advance".
//! Its *prediction* models do not transfer directly — "the execution time
//! of a schedule varies between different types of machines" — so the
//! paper points to CherryPick-style adaptive modeling: run a few probe
//! experiments on the new type and fit a model on top of the existing one.
//!
//! This module implements both: [`InstanceCatalog`] (a CherryPick-like
//! search space of machine types), [`TransferModel`] (an affine
//! `t_target ≈ α + β·t_base` bridge fit with non-negative least squares),
//! and [`select_probes`] (spread-maximizing probe selection, the greedy
//! analogue of CherryPick's Bayesian acquisition over a small candidate
//! set).

use serde::{Deserialize, Serialize};

use cluster_sim::MachineSpec;
use modeling::{d_optimal_greedy, nnls, Matrix};

/// A named VM instance type with an hourly price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Display name (`m.std`, `r.big`, …).
    pub name: String,
    /// Hardware description.
    pub spec: MachineSpec,
    /// Price per machine-hour (arbitrary currency).
    pub price_per_hour: f64,
}

/// A small cloud catalog, mirroring the variety the paper cites (Azure:
/// 146 types, AWS: 133).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceCatalog {
    /// The available types.
    pub types: Vec<InstanceType>,
}

impl InstanceCatalog {
    /// A representative AWS-like catalog: general-purpose, memory-
    /// optimized, compute-optimized, and a budget tier.
    #[must_use]
    pub fn aws_like() -> Self {
        let base = MachineSpec::private_cluster();
        let mk = |name: &str, ram_gb: u64, cores: u32, cpu: f64, disk_mb: f64, price: f64| {
            InstanceType {
                name: name.to_owned(),
                spec: MachineSpec {
                    ram_bytes: ram_gb * 1_000_000_000,
                    cores,
                    cpu_speed: cpu,
                    disk_bandwidth: disk_mb * 1.0e6,
                    ..base
                },
                price_per_hour: price,
            }
        };
        InstanceCatalog {
            types: vec![
                mk("m.std", 16, 4, 1.0, 80.0, 0.34),    // the paper's cluster
                mk("m.small", 8, 2, 1.0, 80.0, 0.17),   // half-size general
                mk("m.large", 32, 8, 1.0, 120.0, 0.68), // double general
                mk("r.big", 64, 8, 0.9, 120.0, 0.96),   // memory-optimized
                mk("c.fast", 16, 8, 1.4, 120.0, 0.61),  // compute-optimized
                mk("t.budget", 12, 4, 0.7, 50.0, 0.12), // burstable budget
            ],
        }
    }

    /// Looks a type up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&InstanceType> {
        self.types.iter().find(|t| t.name == name)
    }
}

/// An affine bridge from base-machine predictions to a new machine type:
/// `t_target ≈ α + β·t_base`, with α, β ≥ 0 (a slower machine scales the
/// parallel work and adds fixed overhead; NNLS keeps both physical).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Fixed offset, seconds.
    pub alpha: f64,
    /// Scale on the base prediction.
    pub beta: f64,
}

impl TransferModel {
    /// Fits from `(base_time, target_time)` probe pairs.
    ///
    /// # Panics
    /// Panics if `pairs` is empty.
    #[must_use]
    pub fn fit(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "need at least one probe pair");
        let rows: Vec<Vec<f64>> = pairs.iter().map(|&(b, _)| vec![1.0, b]).collect();
        let y: Vec<f64> = pairs.iter().map(|&(_, t)| t).collect();
        let theta = nnls(&Matrix::from_rows(&rows), &y);
        TransferModel {
            alpha: theta[0],
            beta: theta[1],
        }
    }

    /// Predicted time on the target type from a base prediction.
    #[must_use]
    pub fn predict(&self, base_time_s: f64) -> f64 {
        (self.alpha + self.beta * base_time_s).max(0.0)
    }
}

/// Chooses `k` probe parameter points (by index) whose *base-model
/// predictions* spread the regression the most — greedy D-optimality over
/// the `[1, t_base]` feature rows, the deterministic analogue of
/// CherryPick's "adaptive search methodology to reduce the number of
/// experiments".
///
/// # Panics
/// Panics if `k` exceeds the number of candidates.
#[must_use]
pub fn select_probes(base_predictions: &[f64], k: usize) -> Vec<usize> {
    let rows: Vec<Vec<f64>> = base_predictions.iter().map(|&t| vec![1.0, t]).collect();
    d_optimal_greedy(&rows, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_the_paper_cluster() {
        let cat = InstanceCatalog::aws_like();
        let std = cat.get("m.std").expect("present");
        assert_eq!(std.spec.ram_bytes, 16_000_000_000);
        assert_eq!(std.spec.cores, 4);
        assert!(cat.get("nope").is_none());
        assert!(cat.types.len() >= 5);
    }

    #[test]
    fn transfer_recovers_affine_map() {
        let pairs: Vec<(f64, f64)> = [60.0, 180.0, 420.0]
            .iter()
            .map(|&b| (b, 12.0 + 1.4 * b))
            .collect();
        let tm = TransferModel::fit(&pairs);
        assert!((tm.alpha - 12.0).abs() < 1e-6, "{tm:?}");
        assert!((tm.beta - 1.4).abs() < 1e-8, "{tm:?}");
        assert!((tm.predict(300.0) - (12.0 + 1.4 * 300.0)).abs() < 1e-6);
    }

    #[test]
    fn transfer_clamps_to_physical_coefficients() {
        // A "target" that is absurdly faster than any affine non-negative
        // map allows: NNLS clamps rather than producing negative α.
        let tm = TransferModel::fit(&[(100.0, 10.0), (200.0, 20.0)]);
        assert!(tm.alpha >= 0.0 && tm.beta >= 0.0);
        assert!((tm.predict(150.0) - 15.0).abs() < 1e-6);
    }

    #[test]
    fn probe_selection_spans_the_range() {
        let preds = vec![30.0, 31.0, 32.0, 500.0, 33.0, 250.0];
        let picks = select_probes(&preds, 3);
        assert_eq!(picks.len(), 3);
        assert!(
            picks.contains(&3),
            "must include the extreme point: {picks:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn fit_requires_pairs() {
        let _ = TransferModel::fit(&[]);
    }
}
