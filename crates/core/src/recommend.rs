//! The end-user flow of §5.5: size estimator → cluster-configuration
//! selector → execution-time predictor → cost estimator → Pareto menu.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dagflow::Schedule;

/// Pricing model turning (machines, seconds) into money-equivalent cost.
/// The paper uses machine-minutes and notes the model "can be replaced
/// with other pricing models".
pub trait CostModel {
    /// Cost of running `machines` machines for `seconds`.
    fn cost(&self, machines: u32, seconds: f64) -> f64;
    /// Unit label for display.
    fn unit(&self) -> &'static str;
}

/// The paper's `#machines × time` pricing, in machine-minutes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineMinutes;

impl CostModel for MachineMinutes {
    fn cost(&self, machines: u32, seconds: f64) -> f64 {
        f64::from(machines) * seconds / 60.0
    }
    fn unit(&self) -> &'static str {
        "machine-min"
    }
}

/// A tiered hourly price list (cloud-style: whole machine-hours, with a
/// volume discount above a machine threshold). Ships as the example of a
/// replaceable pricing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieredHourly {
    /// Price per machine-hour.
    pub per_machine_hour: f64,
    /// Machines above this count get the discounted rate.
    pub discount_threshold: u32,
    /// Discount multiplier for machines past the threshold.
    pub discount: f64,
}

impl CostModel for TieredHourly {
    fn cost(&self, machines: u32, seconds: f64) -> f64 {
        let hours = (seconds / 3600.0).ceil().max(1.0);
        let base = machines.min(self.discount_threshold);
        let extra = machines.saturating_sub(self.discount_threshold);
        (f64::from(base) + f64::from(extra) * self.discount) * hours * self.per_machine_hour
    }
    fn unit(&self) -> &'static str {
        "$"
    }
}

/// One menu entry: a schedule with its recommendation and predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Index of the schedule in the trained family.
    pub schedule_index: usize,
    /// The schedule itself (shared with the trained family — menu
    /// construction never deep-copies schedules).
    pub schedule: Arc<Schedule>,
    /// Predicted total size of the cached datasets, bytes.
    pub predicted_size_bytes: u64,
    /// Recommended machine count (Eq. 6).
    pub machines: u32,
    /// Predicted execution time, seconds.
    pub predicted_time_s: f64,
    /// Predicted cost in machine-minutes.
    pub predicted_cost_machine_min: f64,
}

impl Recommendation {
    /// Whether both predictions are finite — a degenerate NNLS fit can
    /// emit NaN or ±inf, which must never crash menu construction.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.predicted_time_s.is_finite() && self.predicted_cost_machine_min.is_finite()
    }
}

/// The menu returned to the end user: Pareto-efficient schedules only
/// ("Juggler does not offer a schedule if another one is faster and
/// cheaper"), plus the dominated ones for inspection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendationMenu {
    /// Pareto-efficient options, cheapest first.
    pub options: Vec<Recommendation>,
    /// Options suppressed because another is both faster and cheaper.
    pub dominated: Vec<Recommendation>,
    /// Candidates quarantined because a prediction was NaN or infinite
    /// (degenerate model fit) — reported, never offered.
    pub invalid: Vec<Recommendation>,
}

impl RecommendationMenu {
    /// Splits candidates into Pareto-efficient, dominated, and invalid
    /// (non-finite prediction) sets. Never panics: non-finite candidates
    /// are quarantined into [`RecommendationMenu::invalid`] before the
    /// Pareto pass, and the cost sort uses [`f64::total_cmp`].
    #[must_use]
    pub fn from_candidates(candidates: Vec<Recommendation>) -> Self {
        let (candidates, invalid): (Vec<_>, Vec<_>) =
            candidates.into_iter().partition(Recommendation::is_finite);
        let mut dominated_flags = vec![false; candidates.len()];
        for i in 0..candidates.len() {
            for j in 0..candidates.len() {
                if i == j {
                    continue;
                }
                let faster =
                    candidates[j].predicted_time_s < candidates[i].predicted_time_s - 1e-12;
                let cheaper = candidates[j].predicted_cost_machine_min
                    < candidates[i].predicted_cost_machine_min - 1e-12;
                if faster && cheaper {
                    dominated_flags[i] = true;
                    break;
                }
            }
        }
        let mut options = Vec::new();
        let mut dominated = Vec::new();
        for (i, c) in candidates.into_iter().enumerate() {
            if dominated_flags[i] {
                dominated.push(c);
            } else {
                options.push(c);
            }
        }
        options.sort_by(|a, b| {
            a.predicted_cost_machine_min
                .total_cmp(&b.predicted_cost_machine_min)
        });
        let reg = obs::global();
        if reg.enabled() {
            reg.counter("recommend_menus_total", "recommendation menus constructed")
                .inc();
            reg.counter("recommend_options_total", "Pareto-surviving menu options")
                .add(options.len() as u64);
            reg.counter("recommend_dominated_total", "Pareto-dominated candidates")
                .add(dominated.len() as u64);
            reg.counter(
                "recommend_invalid_total",
                "candidates quarantined for non-finite predictions",
            )
            .add(invalid.len() as u64);
        }
        RecommendationMenu {
            options,
            dominated,
            invalid,
        }
    }

    /// The minimal-cost option (the paper's headline recommendation).
    #[must_use]
    pub fn cheapest(&self) -> Option<&Recommendation> {
        self.options.first()
    }

    /// The minimal-time option among Pareto survivors.
    #[must_use]
    pub fn fastest(&self) -> Option<&Recommendation> {
        self.options
            .iter()
            .min_by(|a, b| a.predicted_time_s.total_cmp(&b.predicted_time_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(idx: usize, time: f64, cost: f64) -> Recommendation {
        Recommendation {
            schedule_index: idx,
            schedule: Arc::new(Schedule::empty()),
            predicted_size_bytes: 0,
            machines: 1,
            predicted_time_s: time,
            predicted_cost_machine_min: cost,
        }
    }

    #[test]
    fn machine_minutes_cost() {
        assert_eq!(MachineMinutes.cost(7, 120.0), 14.0);
        assert_eq!(MachineMinutes.unit(), "machine-min");
    }

    #[test]
    fn tiered_pricing_discounts_large_clusters() {
        let p = TieredHourly {
            per_machine_hour: 1.0,
            discount_threshold: 4,
            discount: 0.5,
        };
        // 8 machines, 30 min → 1 billed hour: 4 full + 4 half = 6.
        assert_eq!(p.cost(8, 1800.0), 6.0);
        // Hours round up.
        assert_eq!(p.cost(1, 3700.0), 2.0);
    }

    #[test]
    fn dominated_schedules_are_suppressed() {
        // Option 1 is both faster and cheaper than option 0.
        let menu =
            RecommendationMenu::from_candidates(vec![rec(0, 100.0, 50.0), rec(1, 80.0, 40.0)]);
        assert_eq!(menu.options.len(), 1);
        assert_eq!(menu.options[0].schedule_index, 1);
        assert_eq!(menu.dominated.len(), 1);
    }

    #[test]
    fn tradeoff_schedules_both_survive() {
        // Faster but more expensive vs slower but cheaper: keep both.
        let menu =
            RecommendationMenu::from_candidates(vec![rec(0, 100.0, 30.0), rec(1, 60.0, 45.0)]);
        assert_eq!(menu.options.len(), 2);
        assert_eq!(menu.cheapest().unwrap().schedule_index, 0);
        assert_eq!(menu.fastest().unwrap().schedule_index, 1);
    }

    #[test]
    fn options_sorted_by_cost() {
        let menu = RecommendationMenu::from_candidates(vec![
            rec(0, 10.0, 90.0),
            rec(1, 30.0, 20.0),
            rec(2, 20.0, 50.0),
        ]);
        let costs: Vec<f64> = menu
            .options
            .iter()
            .map(|o| o.predicted_cost_machine_min)
            .collect();
        assert_eq!(costs, vec![20.0, 50.0, 90.0]);
    }

    #[test]
    fn equal_predictions_are_not_dominated() {
        let menu =
            RecommendationMenu::from_candidates(vec![rec(0, 50.0, 25.0), rec(1, 50.0, 25.0)]);
        assert_eq!(menu.options.len(), 2);
    }

    /// Regression: NaN/inf predictions from a degenerate fit used to panic
    /// in `partial_cmp().expect(...)`; now they are quarantined.
    #[test]
    fn non_finite_predictions_are_quarantined_not_panicking() {
        let menu = RecommendationMenu::from_candidates(vec![
            rec(0, f64::NAN, 10.0),
            rec(1, 50.0, f64::INFINITY),
            rec(2, f64::NEG_INFINITY, f64::NAN),
            rec(3, 60.0, 20.0),
            rec(4, 40.0, 30.0),
        ]);
        assert_eq!(menu.invalid.len(), 3);
        let bad: Vec<usize> = menu.invalid.iter().map(|r| r.schedule_index).collect();
        assert_eq!(bad, vec![0, 1, 2]);
        // The finite candidates still form a menu; neither dominates.
        assert_eq!(menu.options.len(), 2);
        assert_eq!(menu.cheapest().unwrap().schedule_index, 3);
        assert_eq!(menu.fastest().unwrap().schedule_index, 4);
    }

    /// Regression: an all-non-finite candidate set yields an empty (not
    /// crashing) menu with everything reported.
    #[test]
    fn all_non_finite_candidates_yield_empty_menu() {
        let menu = RecommendationMenu::from_candidates(vec![
            rec(0, f64::NAN, f64::NAN),
            rec(1, f64::INFINITY, 1.0),
        ]);
        assert!(menu.options.is_empty());
        assert!(menu.dominated.is_empty());
        assert_eq!(menu.invalid.len(), 2);
        assert!(menu.cheapest().is_none());
        assert!(menu.fastest().is_none());
    }
}
