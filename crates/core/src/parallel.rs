//! Scoped worker pool for independent simulated experiments.
//!
//! Offline training (Figure 8) is dominated by experiment runs that are
//! mutually independent: the 3×3 parameter-calibration grid, the
//! per-(schedule, grid-point) execution-time matrix, and the iteration-axis
//! extension of §6.1. Each run owns its RNG seed, so fanning them across
//! threads cannot change any result — only the wall-clock time.
//!
//! The contract of this module is **determinism**: [`run_indexed`] and
//! [`try_run_indexed`] return results in input-index order no matter how
//! the scheduler interleaves workers, and [`try_run_indexed`] reports the
//! error of the *lowest-index* failing item — exactly what a sequential
//! `for` loop with `?` would surface. Callers therefore produce
//! bit-identical artifacts at any thread count (asserted by the
//! `determinism_parallel` integration test).
//!
//! Built on `std::thread::scope` — no external dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count when a caller asks
/// for the automatic setting (`threads == 0`).
pub const THREADS_ENV: &str = "JUGGLER_THREADS";

/// Resolves a requested thread count to an effective one.
///
/// * `requested > 0` — taken as-is;
/// * `requested == 0` — the `JUGGLER_THREADS` environment variable if it
///   parses to a positive integer, else [`std::thread::available_parallelism`],
///   else 1.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0), …, f(len − 1)` on up to `threads` scoped workers and
/// returns the results in index order.
///
/// `threads` is resolved via [`resolve_threads`]; with one effective
/// worker (or fewer than two items) the calls happen sequentially on the
/// caller's thread — the fallback path shares no code with the pool, so
/// `threads = 1` is trivially identical to a plain loop.
pub fn run_indexed<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_run_indexed::<T, std::convert::Infallible, _>(len, threads, |i| Ok(f(i))) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Fallible variant of [`run_indexed`]: every item runs (no short-circuit
/// across workers), and on failure the error of the lowest-index failing
/// item is returned — the same error a sequential `?` loop would hit
/// first, keeping error behaviour independent of the thread count.
pub fn try_run_indexed<T, E, F>(len: usize, threads: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let workers = resolve_threads(threads).min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }

    // Profiler phase context: workers re-establish the caller's active
    // phase so spans opened inside `f` nest identically whether the work
    // ran inline (1 thread) or on the pool — part of the profile
    // structure-determinism contract. Free when profiling is off.
    let prof_ctx = obs::prof::fork();

    // Gather directly into pre-sized index-order slots — no intermediate
    // arrival-order vector. `fetch_add` hands out each index exactly once,
    // so every slot is written exactly once (asserted in debug builds);
    // the result can never be a worker-arrival-order artifact.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<T, E>>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                let prof_ctx = &prof_ctx;
                scope.spawn(move || {
                    let _phase = prof_ctx.attach();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("experiment worker panicked") {
                debug_assert!(
                    slots[i].is_none(),
                    "fetch_add handed out index {i} more than once"
                );
                slots[i] = Some(r);
            }
        }
    });

    // Surface the first error (by index) or the full result vector.
    let mut results = Vec::with_capacity(len);
    for slot in slots {
        results.push(slot.expect("work-stealing covered every index")?);
    }
    Ok(results)
}

/// Calls `f(attempt)` up to `attempts` times (attempt numbers `0..attempts`)
/// and returns the first success together with the attempt it happened on.
/// On persistent failure the *last* error is returned — that is the error
/// state the caller would act on, and earlier ones are retried-away noise.
///
/// This is the training-pipeline counterpart of the simulator's task retry:
/// an experiment run that dies (a schedule that fails validation at one
/// grid point, a poisoned workload) gets a bounded number of fresh chances
/// before the caller decides whether to fail or degrade gracefully.
pub fn with_retry<T, E, F>(attempts: u32, mut f: F) -> Result<(T, u32), E>
where
    F: FnMut(u32) -> Result<T, E>,
{
    let attempts = attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match f(attempt) {
            Ok(v) => return Ok((v, attempt)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn first_error_by_index_wins() {
        // Items 3 and 7 fail; the reported error must be item 3's
        // regardless of which worker reaches which item first.
        for threads in [1, 2, 4] {
            let r: Result<Vec<usize>, String> = try_run_indexed(10, threads, |i| {
                if i == 7 {
                    // Make the later failure likely to finish first.
                    Err(format!("fast failure at {i}"))
                } else if i == 3 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    Err(format!("slow failure at {i}"))
                } else {
                    Ok(i)
                }
            });
            assert_eq!(r.unwrap_err(), "slow failure at 3", "threads={threads}");
        }
    }

    #[test]
    fn with_retry_returns_first_success_and_attempt() {
        let r: Result<(u32, u32), &str> =
            with_retry(4, |attempt| if attempt < 2 { Err("boom") } else { Ok(7) });
        assert_eq!(r, Ok((7, 2)));
    }

    #[test]
    fn with_retry_surfaces_last_error_when_exhausted() {
        let mut calls = 0;
        let r: Result<((), u32), String> = with_retry(3, |attempt| {
            calls += 1;
            Err(format!("fail {attempt}"))
        });
        assert_eq!(calls, 3);
        assert_eq!(r.unwrap_err(), "fail 2");
    }

    #[test]
    fn with_retry_treats_zero_attempts_as_one() {
        let r: Result<(u32, u32), &str> = with_retry(0, |_| Ok(1));
        assert_eq!(r, Ok((1, 0)));
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        // requested = 0 resolves to something positive whatever the
        // environment says.
        assert!(resolve_threads(0) >= 1);
    }
}
