//! Tenancy drills: curated multi-tenant contention scenarios and their
//! invariant checks.
//!
//! The chaos drills ([`crate::chaos`]) stress one application against a
//! hostile cluster; the tenancy drill stresses the cluster against
//! *several applications at once*. A [`TenantsSpec`] names a set of
//! workloads with FAIR weights and arrival offsets, sizes the machines so
//! the shared block store cannot hold every tenant's cached datasets, and
//! runs them through [`cluster_sim::TenantSet`]. The drill then checks
//! the invariants the tenancy test matrix (`tests/tenants/`) asserts:
//!
//! * every tenant **terminates** with finite wall clock,
//! * per-tenant **task accounting** holds (attempts = tasks + retries +
//!   speculative copies),
//! * cross-tenant **evictions balance** — every eviction a tenant
//!   suffers was inflicted by some other tenant (Σ suffered = Σ
//!   inflicted),
//! * **single-tenant parity** — the incumbent run alone through the
//!   tenancy machinery is bit-identical to the plain engine,
//! * reruns are **deterministic** (digest-identical),
//! * the **pressured hotspot audit** stays Pareto-consistent: discounting
//!   candidate benefits by expected residency must not break the
//!   monotone benefit/budget ordering of the schedule family.
//!
//! All runs use `NoiseParams::NONE` and zero cluster jitter, so the drill
//! is bit-for-bit reproducible — `tests/tenants_golden.rs` pins the
//! rendered report.

use std::sync::Arc;

use cluster_sim::{
    ClusterConfig, Engine, MachineSpec, NoiseParams, RunOptions, SimParams, TenancyReport, Tenant,
    TenantSet,
};
use dagflow::{Application, Schedule};
use instrument::profile_run;
use serde::Serialize;
use workloads::Workload;

use crate::chaos::drill_params;
use crate::hotspot::{detect_hotspots_audited, DatasetMetricsView, HotspotAudit, HotspotConfig};

/// Per-machine RAM of the built-in drill: small enough that LOR's parsed
/// points and the SQL star table cannot both stay resident, so the drill
/// reliably produces cross-tenant evictions.
pub const DRILL_RAM_BYTES: u64 = 1_200_000_000;

/// Looks up a workload by its paper-style name, covering the five
/// evaluated applications plus the extension families (`KMEANS`,
/// `SQLJOIN`, `STREAM`). Case-insensitive.
#[must_use]
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    let mut pool = workloads::all_workloads();
    pool.push(Box::new(workloads::KMeans::default()));
    pool.push(Box::new(workloads::SqlStarJoin));
    pool.push(Box::new(workloads::MicroBatchStream));
    pool.into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

/// One tenant of a drill spec.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantSpec {
    /// Workload name (`LOR`, `SQLJOIN`, …), resolved by
    /// [`workload_by_name`].
    pub workload: String,
    /// FAIR scheduler weight; ≤ 0 admits the tenant but runs nothing.
    pub weight: f64,
    /// Seconds after drill start at which the tenant arrives.
    pub arrival_offset_s: f64,
}

/// A full tenancy-drill specification — the schema of the JSON file
/// `juggler tenants <spec.json>` accepts. Every field except `tenants`
/// has a drill default (see [`TenantsSpec::from_json`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantsSpec {
    /// Cluster size (private-cluster machine spec, RAM overridden).
    pub machines: u32,
    /// Base RNG seed; tenant `i` runs with `seed + i`.
    pub seed: u64,
    /// Per-machine RAM in bytes (the contention knob).
    pub ram_bytes: u64,
    /// Contention-pressure factor for the hotspot audit section (see
    /// [`HotspotConfig::pressure`]).
    pub pressure: f64,
    /// The tenants, in admission order.
    pub tenants: Vec<TenantSpec>,
}

/// Reads an optional numeric spec field as f64 (integers widen).
fn num_field(v: &serde_json::Value, key: &str) -> Result<Option<f64>, String> {
    use serde_json::Value;
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) => Ok(Some(*i as f64)),
        Some(Value::UInt(u)) => Ok(Some(*u as f64)),
        Some(Value::Float(f)) => Ok(Some(*f)),
        Some(other) => Err(format!(
            "field `{key}` must be a number, got {}",
            other.kind()
        )),
    }
}

impl TenantsSpec {
    /// The built-in two-tenant contention drill: LOR arrives first with
    /// weight 1; an SQL star join arrives 5 s later with weight 2, and
    /// the reduced per-machine RAM forces the tenants to evict each
    /// other's blocks.
    #[must_use]
    pub fn drill() -> Self {
        TenantsSpec {
            machines: 3,
            seed: 0x7E4A7,
            ram_bytes: DRILL_RAM_BYTES,
            pressure: 0.6,
            tenants: vec![
                TenantSpec {
                    workload: "LOR".to_owned(),
                    weight: 1.0,
                    arrival_offset_s: 0.0,
                },
                TenantSpec {
                    workload: "SQLJOIN".to_owned(),
                    weight: 2.0,
                    arrival_offset_s: 5.0,
                },
            ],
        }
    }

    /// Parses a spec from its JSON representation; absent optional fields
    /// take the built-in drill's defaults. Parsed by hand over the JSON
    /// value tree so optional fields work (the vendored serde derive has
    /// no `#[serde(default)]` support).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("invalid tenants spec: {e}"))?;
        v.expect_object("tenants spec").map_err(|e| e.0)?;
        let drill = TenantsSpec::drill();
        let tenants = v
            .get("tenants")
            .ok_or("tenants spec is missing the `tenants` array")?
            .expect_array("tenants")
            .map_err(|e| e.0)?
            .iter()
            .map(|t| {
                let workload = match t.get("workload") {
                    Some(serde_json::Value::Str(s)) => s.clone(),
                    _ => return Err("every tenant needs a string `workload`".to_owned()),
                };
                Ok(TenantSpec {
                    workload,
                    weight: num_field(t, "weight")?.unwrap_or(1.0),
                    arrival_offset_s: num_field(t, "arrival_offset_s")?.unwrap_or(0.0),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TenantsSpec {
            machines: num_field(&v, "machines")?.map_or(drill.machines, |m| m as u32),
            seed: num_field(&v, "seed")?.map_or(drill.seed, |s| s as u64),
            ram_bytes: num_field(&v, "ram_bytes")?.map_or(drill.ram_bytes, |r| r as u64),
            pressure: num_field(&v, "pressure")?.unwrap_or(drill.pressure),
            tenants,
        })
    }
}

/// The outcome of one tenancy drill: the multi-tenant report plus every
/// derived invariant verdict.
#[derive(Debug)]
pub struct TenantsOutcome {
    /// The spec the drill ran.
    pub spec: TenantsSpec,
    /// Resolved workload names, aligned with `spec.tenants`.
    pub names: Vec<String>,
    /// Schedule notation each tenant executed.
    pub schedules: Vec<String>,
    /// The multi-tenant run.
    pub tenancy: TenancyReport,
    /// Whether a second run of the same set produced identical digests.
    pub deterministic: bool,
    /// Whether tenant 0 alone through the tenancy machinery matches the
    /// plain engine digest.
    pub solo_parity: bool,
    /// The pressured hotspot decision trace for tenant 0's workload.
    pub audit: HotspotAudit,
}

impl TenantsOutcome {
    /// Every tenant's wall clock is finite.
    #[must_use]
    pub fn terminated(&self) -> bool {
        self.tenancy
            .reports
            .iter()
            .all(|r| r.total_time_s.is_finite())
    }

    /// Per-tenant attempts = tasks + retries + speculative copies.
    #[must_use]
    pub fn attempts_consistent(&self) -> bool {
        self.tenancy.reports.iter().all(|r| {
            r.task_attempts
                == r.total_tasks + r.faults.retried_attempts + r.faults.speculative_launched
        })
    }

    /// Σ suffered = Σ inflicted across the tenant set.
    #[must_use]
    pub fn evictions_balance(&self) -> bool {
        self.tenancy.cross_evictions_balance()
    }

    /// The schedules the pressured audit kept stay monotone in both
    /// benefit and budget — pressure discounts the *selection*, never the
    /// reported Pareto frontier.
    #[must_use]
    pub fn pressured_monotone(&self) -> bool {
        let kept: Vec<_> = self.audit.schedules.iter().filter(|s| s.kept).collect();
        kept.windows(2)
            .all(|w| w[1].benefit_s >= w[0].benefit_s && w[1].budget_bytes >= w[0].budget_bytes)
    }

    /// All invariants at once — the CLI exit-code gate.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.terminated()
            && self.attempts_consistent()
            && self.evictions_balance()
            && self.solo_parity
            && self.deterministic
            && self.pressured_monotone()
    }

    /// Deterministic human report (golden-pinned for the built-in drill).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tenancy drill: {} tenants on {} machines, seed {:#x}, {:.1} GB RAM/machine\n",
            self.spec.tenants.len(),
            self.spec.machines,
            self.spec.seed,
            self.spec.ram_bytes as f64 / 1e9
        ));
        for (i, (t, name)) in self.spec.tenants.iter().zip(&self.names).enumerate() {
            out.push_str(&format!(
                "  tenant {i} {:<8} weight {:.1}  arrival {:>6.1} s  schedule {}\n",
                name, t.weight, t.arrival_offset_s, self.schedules[i]
            ));
        }
        out.push_str(&format!(
            "  makespan {:>8.1} s\n  per-tenant outcomes\n",
            self.tenancy.makespan_s
        ));
        for (i, r) in self.tenancy.reports.iter().enumerate() {
            out.push_str(&format!(
                "    tenant {i} {:<8} {:>8.1} s  {} tasks in {} attempts\n",
                self.names[i], r.total_time_s, r.total_tasks, r.task_attempts
            ));
            let c = &r.contention;
            out.push_str(&format!(
                "      slot wait {:.1} s, evictions {} suffered / {} inflicted, \
                 residency half-life {:.1} s\n",
                c.slot_wait_s,
                c.cross_evictions_suffered,
                c.cross_evictions_inflicted,
                c.residency_half_life_s
            ));
        }
        out.push_str(&format!(
            "  contention-aware hotspots ({} sample, pressure {:.2})\n",
            self.names[0], self.spec.pressure
        ));
        for s in &self.audit.schedules {
            out.push_str(&format!(
                "    {:<24} benefit {:>7.2} s  budget {:>8.2} MB  {}\n",
                s.notation,
                s.benefit_s,
                s.budget_bytes as f64 / 1e6,
                if s.kept { "kept" } else { "discarded" }
            ));
        }
        let check = |ok: bool| if ok { "ok" } else { "FAIL" };
        out.push_str("  invariants\n");
        out.push_str(&format!(
            "    every tenant terminated          {}\n",
            check(self.terminated())
        ));
        out.push_str(&format!(
            "    attempts account for every task  {}\n",
            check(self.attempts_consistent())
        ));
        out.push_str(&format!(
            "    cross-tenant evictions balance   {}\n",
            check(self.evictions_balance())
        ));
        out.push_str(&format!(
            "    single-tenant parity             {}\n",
            check(self.solo_parity)
        ));
        out.push_str(&format!(
            "    rerun digests identical          {}\n",
            check(self.deterministic)
        ));
        out.push_str(&format!(
            "    pressured schedules monotone     {}\n",
            check(self.pressured_monotone())
        ));
        out
    }
}

/// Quiet drill sim parameters for one tenant: no noise, no jitter, the
/// tenant's own seed.
fn quiet_sim(w: &dyn Workload, seed: u64) -> SimParams {
    let mut sim = w.sim_params();
    sim.noise = NoiseParams::NONE;
    sim.cluster_jitter_s = 0.0;
    sim.seed = seed;
    sim
}

/// Runs a tenancy drill: the multi-tenant set, a determinism rerun, the
/// single-tenant parity check, and the pressured hotspot audit.
pub fn run_tenants(spec: &TenantsSpec) -> Result<TenantsOutcome, String> {
    if spec.tenants.is_empty() {
        return Err("tenants spec names no tenants".to_owned());
    }
    let workloads: Vec<Box<dyn Workload>> = spec
        .tenants
        .iter()
        .map(|t| {
            workload_by_name(&t.workload)
                .ok_or_else(|| format!("unknown workload `{}`", t.workload))
        })
        .collect::<Result<_, _>>()?;
    let names: Vec<String> = workloads.iter().map(|w| w.name().to_owned()).collect();
    let apps: Vec<Application> = workloads
        .iter()
        .map(|w| w.build(&drill_params(w.as_ref())))
        .collect();
    let schedules: Vec<Arc<Schedule>> = apps
        .iter()
        .map(|a| Arc::new(a.default_schedule().clone()))
        .collect();
    let sims: Vec<SimParams> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| quiet_sim(w.as_ref(), spec.seed.wrapping_add(i as u64)))
        .collect();
    let cluster = ClusterConfig::new(
        spec.machines,
        MachineSpec {
            ram_bytes: spec.ram_bytes,
            ..MachineSpec::private_cluster()
        },
    );

    let set = TenantSet {
        cluster,
        tenants: spec
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| Tenant {
                app: &apps[i],
                schedule: schedules[i].clone(),
                params: sims[i].clone(),
                arrival_offset_s: t.arrival_offset_s,
                weight: t.weight,
            })
            .collect(),
    };
    let run = |s: &TenantSet<'_>| s.run(RunOptions::default()).map_err(|e| e.to_string());
    let tenancy = run(&set)?;
    let rerun = run(&set)?;
    let deterministic = tenancy.makespan_s.to_bits() == rerun.makespan_s.to_bits()
        && tenancy
            .reports
            .iter()
            .zip(&rerun.reports)
            .all(|(a, b)| a.digest() == b.digest());

    // Single-tenant parity: tenant 0 alone (weight 1, no offset) through
    // the tenancy machinery must reproduce the plain engine byte-for-byte.
    let solo_set = TenantSet {
        cluster,
        tenants: vec![Tenant::new(&apps[0], schedules[0].clone(), sims[0].clone())],
    };
    let solo = run(&solo_set)?;
    let plain = Engine::new(&apps[0], cluster, sims[0].clone())
        .run(&schedules[0], RunOptions::default())
        .map_err(|e| e.to_string())?;
    let solo_parity = solo.reports[0].digest() == plain.digest();

    // The pressured hotspot audit for the incumbent's workload: one quiet
    // instrumented sample run, then detection under the spec's pressure.
    let w0 = workloads[0].as_ref();
    let sample = w0.sample_params();
    let sample_app = w0.build(&sample);
    let out = profile_run(
        &sample_app,
        sample_app.default_schedule(),
        ClusterConfig::new(1, MachineSpec::calibration_node()),
        quiet_sim(w0, spec.seed),
    )
    .map_err(|e| e.to_string())?;
    let metrics = DatasetMetricsView::from_metrics(&out.metrics, sample_app.dataset_count());
    let (_, audit) = detect_hotspots_audited(
        &sample_app,
        &metrics,
        &HotspotConfig {
            pressure: spec.pressure,
            ..HotspotConfig::default()
        },
    );

    Ok(TenantsOutcome {
        spec: spec.clone(),
        names,
        schedules: schedules.iter().map(|s| s.notation()).collect(),
        tenancy,
        deterministic,
        solo_parity,
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_spec_round_trips_through_json() {
        let spec = TenantsSpec::drill();
        let text = serde_json::to_string(&spec).unwrap();
        assert_eq!(TenantsSpec::from_json(&text).unwrap(), spec);
    }

    #[test]
    fn spec_defaults_fill_in() {
        let spec = TenantsSpec::from_json(r#"{"tenants": [{"workload": "LOR"}]}"#).unwrap();
        assert_eq!(spec.machines, 3);
        assert_eq!(spec.ram_bytes, DRILL_RAM_BYTES);
        assert_eq!(spec.tenants[0].weight, 1.0);
        assert_eq!(spec.tenants[0].arrival_offset_s, 0.0);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(TenantsSpec::from_json("not json").is_err());
        let empty = TenantsSpec {
            tenants: vec![],
            ..TenantsSpec::drill()
        };
        assert!(run_tenants(&empty).is_err());
        let unknown = TenantsSpec {
            tenants: vec![TenantSpec {
                workload: "NOPE".to_owned(),
                weight: 1.0,
                arrival_offset_s: 0.0,
            }],
            ..TenantsSpec::drill()
        };
        assert!(run_tenants(&unknown).unwrap_err().contains("NOPE"));
    }

    #[test]
    fn lookup_covers_extension_families() {
        for name in ["LOR", "lor", "KMEANS", "SQLJOIN", "STREAM"] {
            assert!(workload_by_name(name).is_some(), "{name}");
        }
        assert!(workload_by_name("nope").is_none());
    }
}
