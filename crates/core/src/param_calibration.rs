//! Parameter calibration (paper §5.2): predicting cached-dataset sizes
//! from the application parameters.
//!
//! Juggler runs a 3×3 full-factorial set of instrumented experiments over
//! the training arrays `E` and `F`, then fits each schedule dataset's
//! measured sizes to the §5.2 model families with non-negative least
//! squares, selecting per dataset the model with the least leave-one-out
//! cross-validation error.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use dagflow::{DatasetId, Schedule};
use modeling::{fit_best_with_report, full_factorial, FitReport, FittedModel, ModelSpec, Sample};

/// A fitted size model for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeModel {
    /// The dataset.
    pub dataset: DatasetId,
    /// The fitted model (bytes as a function of `(e, f)`).
    pub model: FittedModel,
    /// LOOCV error of the winning spec.
    pub cv_error: f64,
}

/// The calibrated size predictor for every dataset appearing in any
/// schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamCalibration {
    models: HashMap<DatasetId, SizeModel>,
}

impl ParamCalibration {
    /// Fits size models from measurements.
    ///
    /// `observations` maps each dataset to its `(e, f, size_bytes)`
    /// training points (one per full-factorial experiment).
    pub fn fit(
        observations: &HashMap<DatasetId, Vec<(f64, f64, u64)>>,
    ) -> Result<Self, modeling::FitError> {
        Self::fit_with_reports(observations).map(|(cal, _)| cal)
    }

    /// [`Self::fit`] plus, per dataset, the full [`FitReport`] (every
    /// candidate family's LOO-CV score, the winner, and its per-holdout
    /// residuals) for `juggler doctor`. Reports are ordered by dataset id.
    pub fn fit_with_reports(
        observations: &HashMap<DatasetId, Vec<(f64, f64, u64)>>,
    ) -> Result<(Self, Vec<(DatasetId, FitReport)>), modeling::FitError> {
        let candidates = ModelSpec::size_candidates();
        let mut models = HashMap::new();
        let mut datasets: Vec<DatasetId> = observations.keys().copied().collect();
        datasets.sort();
        let mut reports = Vec::with_capacity(datasets.len());
        for dataset in datasets {
            let points = &observations[&dataset];
            let samples: Vec<Sample> = points
                .iter()
                .map(|&(e, f, b)| Sample::ef(e, f, b as f64))
                .collect();
            let (cv, report) = fit_best_with_report(&candidates, &samples)?;
            models.insert(
                dataset,
                SizeModel {
                    dataset,
                    model: cv.model,
                    cv_error: cv.cv_error,
                },
            );
            reports.push((dataset, report));
        }
        Ok((ParamCalibration { models }, reports))
    }

    /// The fitted models.
    #[must_use]
    pub fn models(&self) -> &HashMap<DatasetId, SizeModel> {
        &self.models
    }

    /// Predicted size of one dataset at `(e, f)`, bytes. Zero if the
    /// dataset was never calibrated.
    #[must_use]
    pub fn predict_dataset(&self, dataset: DatasetId, e: f64, f: f64) -> u64 {
        self.models
            .get(&dataset)
            .map_or(0, |m| m.model.predict(e, f, 1.0).max(0.0) as u64)
    }

    /// Predicted memory budget of a schedule at `(e, f)` — the sum of its
    /// cached datasets' predicted sizes, with `u(X) p(Y)` pairs reduced to
    /// `max(|X|, |Y|)` exactly as in the hotspot stage.
    #[must_use]
    pub fn predict_schedule_size(&self, schedule: &Schedule, e: f64, f: f64) -> u64 {
        schedule.memory_budget(|d| self.predict_dataset(d, e, f))
    }

    /// Datasets needed by a set of schedules (helper for selecting what to
    /// calibrate). Accepts any iterator of schedule references, so callers
    /// holding `Arc<Schedule>`s need not clone them into a slice.
    #[must_use]
    pub fn datasets_of<'a, I>(schedules: I) -> BTreeSet<DatasetId>
    where
        I: IntoIterator<Item = &'a Schedule>,
    {
        schedules
            .into_iter()
            .flat_map(Schedule::persisted)
            .collect()
    }

    /// The full-factorial training grid of §5.2 over the axes `E` and `F`.
    #[must_use]
    pub fn training_grid(e_axis: &[f64], f_axis: &[f64]) -> Vec<(f64, f64)> {
        full_factorial(&[e_axis.to_vec(), f_axis.to_vec()])
            .into_iter()
            .map(|row| (row[0], row[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::ScheduleOp;

    fn grid_obs(law: impl Fn(f64, f64) -> f64) -> Vec<(f64, f64, u64)> {
        let grid = ParamCalibration::training_grid(
            &[5_000.0, 20_000.0, 40_000.0],
            &[2_000.0, 10_000.0, 30_000.0],
        );
        grid.into_iter()
            .map(|(e, f)| (e, f, law(e, f) as u64))
            .collect()
    }

    #[test]
    fn grid_is_nine_points() {
        let g = ParamCalibration::training_grid(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(g.len(), 9);
    }

    #[test]
    fn recovers_ef_law_with_high_accuracy() {
        let mut obs = HashMap::new();
        obs.insert(DatasetId(2), grid_obs(|e, f| 4.4915 * e * f));
        let cal = ParamCalibration::fit(&obs).unwrap();
        let pred = cal.predict_dataset(DatasetId(2), 70_000.0, 50_000.0);
        let truth = 4.4915 * 70_000.0 * 50_000.0;
        let err = (pred as f64 - truth).abs() / truth;
        assert!(err < 0.001, "err {err}");
    }

    #[test]
    fn recovers_affine_law() {
        let mut obs = HashMap::new();
        obs.insert(
            DatasetId(5),
            grid_obs(|e, f| 1.0e6 + 96.0 * e + 0.008 * e * f),
        );
        let cal = ParamCalibration::fit(&obs).unwrap();
        let pred = cal.predict_dataset(DatasetId(5), 60_000.0, 45_000.0) as f64;
        let truth = 1.0e6 + 96.0 * 60_000.0 + 0.008 * 60_000.0 * 45_000.0;
        assert!((pred - truth).abs() / truth < 0.01);
    }

    #[test]
    fn schedule_size_respects_unpersist() {
        let mut obs = HashMap::new();
        obs.insert(DatasetId(1), grid_obs(|e, f| 7.45 * e * f));
        obs.insert(DatasetId(2), grid_obs(|e, f| 4.49 * e * f));
        obs.insert(DatasetId(11), grid_obs(|e, f| 4.50 * e * f));
        let cal = ParamCalibration::fit(&obs).unwrap();
        let schedule = Schedule::from_ops(vec![
            ScheduleOp::Persist(DatasetId(1)),
            ScheduleOp::Persist(DatasetId(2)),
            ScheduleOp::Unpersist(DatasetId(2)),
            ScheduleOp::Persist(DatasetId(11)),
        ]);
        let (e, f) = (50_000.0, 40_000.0);
        let size = cal.predict_schedule_size(&schedule, e, f) as f64;
        let expect = 7.45 * e * f + 4.50 * e * f;
        assert!((size - expect).abs() / expect < 0.001, "{size} vs {expect}");
    }

    #[test]
    fn unknown_dataset_predicts_zero() {
        let cal = ParamCalibration::default();
        assert_eq!(cal.predict_dataset(DatasetId(7), 1e4, 1e4), 0);
    }

    #[test]
    fn datasets_of_collects_persists() {
        let s1 = Schedule::persist_all([DatasetId(2)]);
        let s2 = Schedule::from_ops(vec![
            ScheduleOp::Persist(DatasetId(1)),
            ScheduleOp::Unpersist(DatasetId(1)),
            ScheduleOp::Persist(DatasetId(11)),
        ]);
        let ds = ParamCalibration::datasets_of(&[s1, s2]);
        let expect: BTreeSet<DatasetId> = [1u32, 2, 11].map(DatasetId).into_iter().collect();
        assert_eq!(ds, expect);
    }
}
