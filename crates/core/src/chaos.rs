//! Chaos drills: curated fault plans and a baseline-vs-chaos runner.
//!
//! Juggler's recommendations assume runs survive the churn of a real
//! cluster — executor loss, stragglers, flaky tasks, memory pressure.
//! This module packages that assumption as an executable drill: run a
//! workload fault-free, inject a named [`FaultPlan`] positioned at
//! fractions of the measured baseline duration, and check the recovery
//! invariants the chaos test matrix asserts (`tests/chaos/`):
//!
//! * the chaos run **terminates** (retry budgets and the blacklist-lift
//!   rule guarantee progress),
//! * **cache residency is restored** through lineage — every dataset ends
//!   the chaos run with the residency of the fault-free run,
//! * **task accounting** holds: attempts ≥ tasks, with the surplus
//!   explained by retries and speculative copies.
//!
//! Both runs use `NoiseParams::NONE` and zero cluster jitter, so the only
//! difference between them is the injected plan — the drill is bit-for-bit
//! reproducible, which is what lets `tests/chaos_golden.rs` pin the
//! rendered report.

use cluster_sim::{
    ClusterConfig, Engine, FaultKind, FaultPlan, MachineSpec, NoiseParams, RetryPolicy, RunOptions,
    RunReport,
};
use dagflow::{DagError, DatasetId};
use workloads::{Workload, WorkloadParams};

/// A named, curated fault plan for the chaos drill and test matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// One executor loss mid-run — the classic lineage-recovery scenario.
    ExecutorLoss,
    /// One machine slowed for a window; speculation hunts the stragglers.
    SlowNode,
    /// A burst of transient task failures consumed by the retry budget.
    TaskFailures,
    /// A temporary execution-memory claim squeezing the block store.
    MemoryPressure,
    /// Everything at once: loss + slow window + flaky tasks + pressure.
    Combo,
    /// The golden-pinned drill: a straggler burst followed by an executor
    /// loss, with speculation enabled.
    Drill,
}

impl PlanKind {
    /// All plans, in drill-menu order.
    pub const ALL: [PlanKind; 6] = [
        PlanKind::ExecutorLoss,
        PlanKind::SlowNode,
        PlanKind::TaskFailures,
        PlanKind::MemoryPressure,
        PlanKind::Combo,
        PlanKind::Drill,
    ];

    /// Stable CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::ExecutorLoss => "loss",
            PlanKind::SlowNode => "slow",
            PlanKind::TaskFailures => "flaky",
            PlanKind::MemoryPressure => "pressure",
            PlanKind::Combo => "combo",
            PlanKind::Drill => "drill",
        }
    }

    /// Parses a CLI name (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// One-line description for menus and reports.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            PlanKind::ExecutorLoss => "one executor loss mid-run",
            PlanKind::SlowNode => "one machine slowed 3x for a window (speculation on)",
            PlanKind::TaskFailures => "six transient task failures",
            PlanKind::MemoryPressure => "a 2 GB execution-memory claim for a window",
            PlanKind::Combo => "loss + slow window + flaky tasks + memory pressure",
            PlanKind::Drill => "straggler burst then an executor loss (speculation on)",
        }
    }
}

/// Builds the fault plan and retry policy for a [`PlanKind`], with events
/// positioned at fractions of the measured fault-free `baseline_s` so the
/// same plan name scales from tiny test fixtures to paper-scale runs.
/// Machine indices stay inside `machines`.
#[must_use]
pub fn build_plan(kind: PlanKind, baseline_s: f64, machines: u32) -> (FaultPlan, RetryPolicy) {
    // The "other" machine: lose/slow a non-zero machine where one exists
    // so locality effects are visible, machine 0 otherwise.
    let other = u32::from(machines > 1);
    let at = |frac: f64| baseline_s * frac;
    let plan = match kind {
        PlanKind::ExecutorLoss => {
            FaultPlan::none().event(at(0.55), FaultKind::ExecutorLoss { machine: other })
        }
        PlanKind::SlowNode => FaultPlan::none().event(
            at(0.55),
            FaultKind::SlowNode {
                machine: 0,
                factor: 3.0,
                duration_s: at(0.35),
            },
        ),
        PlanKind::TaskFailures => {
            FaultPlan::none().event(at(0.2), FaultKind::TaskFailures { count: 6 })
        }
        PlanKind::MemoryPressure => FaultPlan::none().event(
            at(0.45),
            FaultKind::MemoryPressure {
                machine: 0,
                bytes: 2_000_000_000,
                duration_s: at(0.25),
            },
        ),
        PlanKind::Combo => FaultPlan::none()
            .event(at(0.15), FaultKind::TaskFailures { count: 4 })
            .event(
                at(0.25),
                FaultKind::SlowNode {
                    machine: 0,
                    factor: 2.5,
                    duration_s: at(0.2),
                },
            )
            .event(at(0.55), FaultKind::ExecutorLoss { machine: other })
            .event(
                at(0.7),
                FaultKind::MemoryPressure {
                    machine: 0,
                    bytes: 1_500_000_000,
                    duration_s: at(0.15),
                },
            ),
        // The burst is x6 — a dying disk or GC-thrashing JVM, not mild
        // contention — because that is where speculation pays off: a copy
        // must absorb the detection delay (1.5x the stage median) plus a
        // remote cache fetch at network bandwidth before it can beat the
        // straggler, which a x3 slowdown never loses to.
        PlanKind::Drill => FaultPlan::none()
            .event(
                at(0.5),
                FaultKind::SlowNode {
                    machine: 0,
                    factor: 6.0,
                    duration_s: at(0.25),
                },
            )
            .event(at(0.8), FaultKind::ExecutorLoss { machine: other }),
    };
    let policy = match kind {
        PlanKind::SlowNode | PlanKind::Combo | PlanKind::Drill => RetryPolicy::speculative(),
        _ => RetryPolicy::default(),
    };
    (plan, policy)
}

/// Configuration of one chaos drill.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// The plan to inject.
    pub kind: PlanKind,
    /// Cluster size (private-cluster machine spec).
    pub machines: u32,
    /// RNG seed for both runs (they are noise-free; the seed still feeds
    /// the engine's determinism contract).
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            kind: PlanKind::Drill,
            machines: 3,
            seed: 0xC4A05,
        }
    }
}

/// Per-dataset end-of-run residency, chaos vs fault-free.
#[derive(Debug, Clone, Copy)]
pub struct ResidencyCheck {
    /// The cached dataset.
    pub dataset: DatasetId,
    /// Partitions resident at the end of the fault-free run.
    pub baseline_resident: u32,
    /// Partitions resident at the end of the chaos run.
    pub chaos_resident: u32,
}

/// The outcome of one chaos drill: both reports plus the derived
/// invariant checks.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Workload name.
    pub workload: String,
    /// The injected plan.
    pub kind: PlanKind,
    /// Cluster size used.
    pub machines: u32,
    /// Seed used.
    pub seed: u64,
    /// Schedule notation both runs executed.
    pub schedule: String,
    /// The fault-free run.
    pub baseline: RunReport,
    /// The run with the plan injected.
    pub chaos: RunReport,
    /// Per-dataset residency comparison (datasets the baseline cached).
    pub residency: Vec<ResidencyCheck>,
}

impl ChaosOutcome {
    /// Every baseline-cached dataset ends the chaos run with the same
    /// residency — lineage recovered whatever the faults destroyed.
    #[must_use]
    pub fn residency_restored(&self) -> bool {
        self.residency
            .iter()
            .all(|r| r.chaos_resident == r.baseline_resident)
    }

    /// Attempts ≥ tasks, the surplus explained by retries + speculation.
    /// (A failed attempt whose retry budget was exhausted spawns no extra
    /// attempt — the forced completion *is* that attempt — so the surplus
    /// counts retries, not raw failures.)
    #[must_use]
    pub fn attempts_consistent(&self) -> bool {
        let extra = self.chaos.faults.retried_attempts + self.chaos.faults.speculative_launched;
        self.chaos.task_attempts == self.chaos.total_tasks + extra
    }

    /// Wall-clock slowdown of the chaos run over the baseline.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        self.chaos.total_time_s / self.baseline.total_time_s
    }

    /// Deterministic human report (golden-pinned for the LOR drill).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos drill: {} plan `{}` ({}) on {} machines, seed {:#x}\n",
            self.workload,
            self.kind.name(),
            self.kind.describe(),
            self.machines,
            self.seed
        ));
        out.push_str(&format!("  schedule {}\n", self.schedule));
        out.push_str(&format!(
            "  fault-free baseline {:>8.1} s  {} tasks\n",
            self.baseline.total_time_s, self.baseline.total_tasks
        ));
        out.push_str(&format!(
            "  chaos run           {:>8.1} s  {} tasks in {} attempts  ({:+.1}% wall clock)\n",
            self.chaos.total_time_s,
            self.chaos.total_tasks,
            self.chaos.task_attempts,
            (self.slowdown() - 1.0) * 100.0
        ));
        out.push_str("  events\n");
        for o in &self.chaos.faults.outcomes {
            let status = if o.fired {
                format!("fired @ {:>7.1} s", o.fired_at_s.unwrap_or(o.event.at_s))
            } else {
                "not fired       ".to_owned()
            };
            out.push_str(&format!(
                "    [{status}] {} — {}\n",
                o.event.kind.describe(),
                o.detail
            ));
        }
        let f = &self.chaos.faults;
        out.push_str(&format!(
            "  fault tolerance: {} failed attempts ({} retried, {} budget-exhausted), \
             {} slowed, {} speculative ({} won), {} blacklist events\n",
            f.failed_attempts,
            f.retried_attempts,
            f.exhausted_tasks,
            f.slowed_tasks,
            f.speculative_launched,
            f.speculative_wins,
            f.blacklist.len()
        ));
        for b in &f.blacklist {
            out.push_str(&format!(
                "    blacklisted m{} at {:.1} s after {} failures\n",
                b.machine, b.at_s, b.failures
            ));
        }
        out.push_str("  cache residency after chaos\n");
        for r in &self.residency {
            let mark = if r.chaos_resident == r.baseline_resident {
                "restored"
            } else {
                "LOST"
            };
            out.push_str(&format!(
                "    D{} {:>4}/{} partitions  {}\n",
                r.dataset.0, r.chaos_resident, r.baseline_resident, mark
            ));
        }
        let check = |ok: bool| if ok { "ok" } else { "FAIL" };
        out.push_str("  invariants\n");
        out.push_str(&format!(
            "    run terminated                  {}\n",
            check(self.chaos.total_time_s.is_finite())
        ));
        out.push_str(&format!(
            "    cache residency restored        {}\n",
            check(self.residency_restored())
        ));
        out.push_str(&format!(
            "    attempts account for every task {}\n",
            check(self.attempts_consistent())
        ));
        out
    }
}

/// Drill-scale parameters: paper scale divided by five (matching the
/// long-standing failure-injection fixture), iterations capped so a drill
/// stays interactive.
#[must_use]
pub fn drill_params(w: &dyn Workload) -> WorkloadParams {
    let paper = w.paper_params();
    WorkloadParams::auto(
        (paper.examples / 5).max(1_000),
        (paper.features / 5).max(200),
        paper.iterations.min(6),
    )
}

/// Runs the drill: fault-free baseline, then the same run with the plan
/// injected at fractions of the measured baseline duration.
pub fn run_chaos(w: &dyn Workload, cfg: &ChaosConfig) -> Result<ChaosOutcome, DagError> {
    let params = drill_params(w);
    let app = w.build(&params);
    let schedule = app.default_schedule().clone();
    let quiet = |faults: FaultPlan, retry: RetryPolicy| {
        let mut sim = w.sim_params();
        sim.noise = NoiseParams::NONE;
        sim.cluster_jitter_s = 0.0;
        sim.seed = cfg.seed;
        sim.faults = faults;
        sim.retry = retry;
        sim
    };
    let cluster = ClusterConfig::new(cfg.machines, MachineSpec::private_cluster());
    let run = |sim| Engine::new(&app, cluster, sim).run(&schedule, RunOptions::default());

    let baseline = run(quiet(FaultPlan::none(), RetryPolicy::default()))?;
    let (plan, policy) = build_plan(cfg.kind, baseline.total_time_s, cfg.machines);
    let chaos = run(quiet(plan, policy))?;

    let mut residency: Vec<ResidencyCheck> = baseline
        .cache
        .per_dataset
        .iter()
        .map(|(&dataset, stats)| ResidencyCheck {
            dataset,
            baseline_resident: stats.resident_partitions,
            chaos_resident: chaos
                .cache
                .per_dataset
                .get(&dataset)
                .map_or(0, |s| s.resident_partitions),
        })
        .collect();
    residency.sort_by_key(|r| r.dataset.0);

    Ok(ChaosOutcome {
        workload: w.name().to_owned(),
        kind: cfg.kind,
        machines: cfg.machines,
        seed: cfg.seed,
        schedule: schedule.notation(),
        baseline,
        chaos,
        residency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_names_round_trip() {
        for kind in PlanKind::ALL {
            assert_eq!(PlanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(PlanKind::from_name("DRILL"), Some(PlanKind::Drill));
        assert_eq!(PlanKind::from_name("nope"), None);
    }

    #[test]
    fn plans_scale_with_the_baseline_and_stay_in_machine_range() {
        for kind in PlanKind::ALL {
            for machines in [1_u32, 3] {
                let (plan, _) = build_plan(kind, 100.0, machines);
                assert!(!plan.is_empty());
                for ev in &plan.events {
                    assert!(ev.at_s >= 0.0 && ev.at_s <= 100.0);
                    let machine = match ev.kind {
                        FaultKind::ExecutorLoss { machine }
                        | FaultKind::SlowNode { machine, .. }
                        | FaultKind::MemoryPressure { machine, .. } => machine,
                        FaultKind::TaskFailures { .. } => 0,
                    };
                    assert!(machine < machines, "{kind:?} on {machines} machines");
                }
            }
        }
    }

    #[test]
    fn speculative_plans_enable_speculation() {
        for kind in [PlanKind::SlowNode, PlanKind::Combo, PlanKind::Drill] {
            let (_, policy) = build_plan(kind, 50.0, 3);
            assert!(policy.speculation);
        }
        let (_, policy) = build_plan(PlanKind::ExecutorLoss, 50.0, 3);
        assert!(!policy.speculation);
    }
}
