//! Table 2 — "Juggler's SCHEDULES & default schedules".
//!
//! For every application, runs the genuine hotspot-detection stage (one
//! instrumented sample run on the calibration node) and prints the
//! resulting schedule family next to the HiBench developer-cached default,
//! in the paper's `p(i)`/`u(i)` notation.

use bench::print_table;
use cluster_sim::{ClusterConfig, MachineSpec};
use instrument::profile_run;
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};

fn main() {
    let mut rows = Vec::new();
    for w in bench::workloads() {
        let sample = w.sample_params();
        let app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &app,
            &app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("sample run succeeds");
        let metrics = DatasetMetricsView::from_metrics(&out.metrics, app.dataset_count());
        let schedules = detect_hotspots(&app, &metrics, &HotspotConfig::default());

        for (i, s) in schedules.iter().enumerate() {
            rows.push(vec![
                w.name().to_owned(),
                (i + 1).to_string(),
                s.schedule.notation(),
                format!("{:.2}", s.benefit_s),
                bench::fmt_bytes(s.budget_bytes),
            ]);
        }
        rows.push(vec![
            w.name().to_owned(),
            "HiBench".to_owned(),
            app.default_schedule().notation(),
            String::new(),
            String::new(),
        ]);
    }
    print_table(
        "Table 2: Juggler's schedules vs HiBench defaults",
        &["Application", "ID", "Schedule", "benefit (s)", "budget"],
        &rows,
    );
    println!(
        "\nPaper reference: LIR p(1) | p(1) p(3); LOR p(2) | p(1) p(2) u(2) p(11); \
         PCA p(1) u(1) p(2) u(2) p(13); RFC p(11) | p(1) p(12) | p(1) p(5) u(5) p(12); \
         SVM p(2) | p(1) p(6)."
    );
}
