//! Overhead of the hierarchical phase profiler, measured two ways:
//!
//! 1. **Recording enabled** — offline training (the instrumented path:
//!    stage scopes, NNLS/LOO-CV scopes, per-run simulator spans) with
//!    the profiler on vs off. This is the gated < 5 % budget: the
//!    simulator records per *run*, not per task, precisely so a full
//!    training sweep stays cheap to profile.
//! 2. **Armed idle** — the tax every normal run pays for the compiled-in
//!    call sites while the profiler is disabled. A disabled
//!    `prof::scope` is one relaxed atomic load, so this is measured
//!    directly as nanoseconds per call in a tight loop (informational;
//!    single-digit-ns numbers are too jittery to pin in a gate).
//!
//! Both states run interleaved best-of-`REPS` like the other overhead
//! benches so slow drift hits them evenly. Results land in
//! `results/BENCH_profile_overhead.json`.

use std::time::Instant;

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions};
use juggler::pipeline::{OfflineTraining, TrainingConfig};
use workloads::{LogisticRegression, Workload};

const REPS: usize = 9;
const ENGINE_RUNS: usize = 24;
const IDLE_CALLS: u64 = 2_000_000;

/// One timed offline training (threads = 1 for a stable measurement)
/// with the profiler in the given state.
fn training_once(enabled: bool) -> f64 {
    let prof = obs::prof::profiler();
    prof.set_enabled(false);
    prof.reset();
    prof.set_enabled(enabled);
    let w = LogisticRegression;
    let config = TrainingConfig {
        threads: 1,
        ..TrainingConfig::default()
    };
    let t0 = Instant::now();
    let trained = OfflineTraining::run(&w, &config).expect("training succeeds");
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(&trained);
    prof.set_enabled(false);
    prof.reset();
    elapsed
}

/// One timed batch of engine runs with the profiler in the given state.
/// Exercises the per-run `sim`/`faults`/`stages` spans and the counter
/// attribution path.
fn engine_batch_once(enabled: bool, rep: usize) -> f64 {
    let prof = obs::prof::profiler();
    prof.set_enabled(false);
    prof.reset();
    prof.set_enabled(enabled);
    let w = LogisticRegression;
    let app = w.build(&w.paper_params());
    let schedule = app.default_schedule().clone();
    let t0 = Instant::now();
    for i in 0..ENGINE_RUNS {
        let mut params = w.sim_params();
        params.seed = 0xF10 + (rep * ENGINE_RUNS + i) as u64;
        let report = Engine::new(
            &app,
            ClusterConfig::new(4, MachineSpec::private_cluster()),
            params,
        )
        .run(&schedule, RunOptions::default())
        .expect("run succeeds");
        std::hint::black_box(&report);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    prof.set_enabled(false);
    prof.reset();
    elapsed
}

/// Nanoseconds per disabled `prof::scope` call: the armed-idle tax.
fn idle_ns_per_scope() -> f64 {
    let prof = obs::prof::profiler();
    prof.set_enabled(false);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..IDLE_CALLS {
            let s = obs::prof::scope("bench/idle");
            std::hint::black_box(&s);
        }
        let elapsed = t0.elapsed().as_nanos() as f64;
        best = best.min(elapsed / IDLE_CALLS as f64);
    }
    best
}

/// Best-of-`REPS` for the off and on states, *interleaved* so slow
/// drift (thermal, background load) hits both states evenly instead of
/// whichever happened to run second.
fn interleaved_best(mut measure: impl FnMut(bool, usize) -> f64) -> (f64, f64) {
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..REPS {
        best_off = best_off.min(measure(false, rep));
        best_on = best_on.min(measure(true, rep));
    }
    (best_off, best_on)
}

fn pct(off: f64, on: f64) -> f64 {
    if off <= 0.0 {
        0.0
    } else {
        (on - off) / off * 100.0
    }
}

fn main() {
    let (train_off, train_on) = interleaved_best(|enabled, _| training_once(enabled));
    let (engine_off, engine_on) = interleaved_best(engine_batch_once);
    let idle_ns = idle_ns_per_scope();

    let train_pct = pct(train_off, train_on);
    let engine_pct = pct(engine_off, engine_on);

    print_table(
        &format!("Phase-profiler overhead (best of {REPS}, interleaved)"),
        &["scenario", "prof off (s)", "prof on (s)", "overhead"],
        &[
            vec![
                "offline training (LOR)".to_string(),
                format!("{train_off:.4}"),
                format!("{train_on:.4}"),
                format!("{train_pct:+.2}%"),
            ],
            vec![
                format!("engine x{ENGINE_RUNS} (LOR paper scale)"),
                format!("{engine_off:.4}"),
                format!("{engine_on:.4}"),
                format!("{engine_pct:+.2}%"),
            ],
        ],
    );
    println!("\narmed idle (disabled scope call): {idle_ns:.1} ns");

    let within_budget = train_pct < 5.0;
    println!(
        "profiling-enabled training overhead within the 5% budget: {within_budget} \
         (engine batch and armed-idle ns are informational)"
    );

    bench::save_results(
        "BENCH_profile_overhead",
        &serde_json::json!({
            "workload": "LOR",
            "reps": REPS,
            "engine_runs_per_batch": ENGINE_RUNS,
            "enabled": {
                "prof_off_seconds": train_off,
                "prof_on_seconds": train_on,
                "overhead_pct": train_pct,
            },
            "engine_batch": {
                "prof_off_seconds": engine_off,
                "prof_on_seconds": engine_on,
                "overhead_pct": engine_pct,
            },
            "armed_idle": {
                "ns_per_scope": idle_ns,
            },
            "budget_pct": 5.0,
            "within_budget": within_budget,
        }),
    );
    assert!(
        within_budget,
        "profiling-enabled training overhead {train_pct:.2}% exceeds the 5% budget"
    );
}
