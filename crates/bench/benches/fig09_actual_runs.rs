//! Figure 9 — "Actual runs with Juggler and HiBench schedules".
//!
//! For every application: every Juggler schedule plus the HiBench default,
//! each run on 1–12 machines at the paper-scale parameters. Per
//! configuration the cost in machine-minutes is printed; Juggler's
//! recommended configuration for each schedule is marked with `*`, the
//! sweep's actual optimum with `!` (both with `*!` when they coincide —
//! the paper's "optimal in 50 % of cases").

use bench::{optimal_config, print_table, MACHINE_RANGE};

fn main() {
    for (w, trained) in bench::workloads().iter().zip(bench::train_all()) {
        let params = w.paper_params();
        let spec = trained.target_spec;

        let mut entries: Vec<(String, std::sync::Arc<dagflow::Schedule>, Option<u32>)> = trained
            .schedules
            .iter()
            .enumerate()
            .map(|(i, rs)| {
                let rec = trained.machines_for(i, params.e(), params.f());
                (
                    format!("SCHEDULE #{}", i + 1),
                    rs.schedule.clone(),
                    Some(rec),
                )
            })
            .collect();
        let default = w.build(&params).default_schedule().clone();
        entries.push(("Default".to_owned(), std::sync::Arc::new(default), None));

        let mut rows = Vec::new();
        for (label, schedule, recommended) in &entries {
            let sweep = bench::sweep(w.as_ref(), &params, schedule, spec);
            let (opt_m, _, _) = optimal_config(&sweep);
            let mut row = vec![label.clone(), schedule.notation()];
            for r in &sweep {
                let mut cell = format!("{:.0}", r.cost_machine_minutes());
                if Some(r.machines) == *recommended {
                    cell.push('*');
                }
                if r.machines == opt_m {
                    cell.push('!');
                }
                row.push(cell);
            }
            rows.push(row);
        }

        let machine_headers: Vec<String> = MACHINE_RANGE.map(|m| format!("{m}m")).collect();
        let mut header: Vec<&str> = vec!["schedule", "ops"];
        header.extend(machine_headers.iter().map(String::as_str));
        print_table(
            &format!("Figure 9: {} cost (machine-min) on 1-12 machines", w.name()),
            &header,
            &rows,
        );
    }
    println!("\nLegend: * = Juggler's recommended configuration, ! = sweep optimum.");
}
