//! Table 1 — "Details of evaluated applications".
//!
//! Prints, for each generated workload at its paper-scale parameters, the
//! columns of Table 1: examples, features, iterations, input size, total
//! datasets, intermediate datasets, and the number of schedules Juggler's
//! hotspot detection produces (measured through a real instrumented
//! sample run).

use bench::{fmt_bytes, print_table};
use cluster_sim::{ClusterConfig, MachineSpec};
use dagflow::LineageAnalysis;
use instrument::profile_run;
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};

fn main() {
    let mut rows = Vec::new();
    for w in bench::workloads() {
        let params = w.paper_params();
        let app = w.build(&params);
        let la = LineageAnalysis::new(&app);

        // Schedules come from the genuine stage-1 pipeline.
        let sample = w.sample_params();
        let sample_app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &sample_app,
            &sample_app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("sample run succeeds");
        let metrics = DatasetMetricsView::from_metrics(&out.metrics, sample_app.dataset_count());
        let schedules = detect_hotspots(&sample_app, &metrics, &HotspotConfig::default());

        rows.push(vec![
            w.name().to_owned(),
            format!("{}k", params.examples / 1000),
            format!("{}k", params.features / 1000),
            params.iterations.to_string(),
            fmt_bytes(app.input_bytes()),
            app.dataset_count().to_string(),
            la.intermediates().len().to_string(),
            schedules.len().to_string(),
        ]);
    }
    print_table(
        "Table 1: Details of evaluated applications",
        &[
            "Application",
            "Examples",
            "Features",
            "Iterations",
            "Input data",
            "Datasets",
            "Intermediate",
            "Schedules",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: LIR 40k/120k/10/35.8GB/111/16/2 | LOR 70k/50k/50/26.1GB/210/4/2 \
         | PCA 6k/5k/100/229.2MB/1833/5/1 | RFC 100k/40k/3/29.8GB/26/8/3 | SVM 40k/80k/100/23.8GB/524/9/2"
    );
}
