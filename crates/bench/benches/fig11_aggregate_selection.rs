//! Figure 11 — "Juggler vs related components: Aggregated view of dataset
//! selection": per application, the average of each approach's
//! per-schedule minimal costs. Juggler must have the lowest average cost
//! for every application.

use baselines::{DatasetSelector, Hagedorn, Jindal, Lrc, Mrd, Nagel, SelectionMetrics};
use bench::{minimal_cost, print_table};
use cluster_sim::{ClusterConfig, MachineSpec};
use dagflow::Schedule;
use instrument::profile_run;
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};

fn avg_min_cost(
    w: &dyn workloads::Workload,
    schedules: &[Schedule],
    spec: MachineSpec,
) -> Option<f64> {
    if schedules.is_empty() {
        return None;
    }
    let params = w.paper_params();
    let total: f64 = schedules
        .iter()
        .map(|s| minimal_cost(&bench::sweep(w, &params, s, spec)))
        .sum();
    Some(total / schedules.len() as f64)
}

fn main() {
    let selectors: Vec<Box<dyn DatasetSelector>> = vec![
        Box::new(Nagel),
        Box::new(Jindal),
        Box::new(Hagedorn),
        Box::new(Lrc),
        Box::new(Mrd),
    ];
    let spec = MachineSpec::private_cluster();

    let mut rows = Vec::new();
    let mut juggler_wins = 0usize;
    let mut apps = 0usize;
    for w in bench::workloads() {
        let sample = w.sample_params();
        let sample_app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &sample_app,
            &sample_app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("sample run succeeds");
        let view = DatasetMetricsView::from_metrics(&out.metrics, sample_app.dataset_count());
        let sel_metrics = SelectionMetrics {
            et: view.et.clone(),
            size: view.size.clone(),
        };

        let juggler: Vec<Schedule> = detect_hotspots(&sample_app, &view, &HotspotConfig::default())
            .into_iter()
            .map(|rs| rs.schedule.as_ref().clone())
            .collect();
        let jcost = avg_min_cost(w.as_ref(), &juggler, spec).expect("juggler finds schedules");

        let mut row = vec![w.name().to_owned(), format!("{jcost:.1}")];
        let mut all_above = true;
        for sel in &selectors {
            let schedules: Vec<Schedule> = sel
                .schedules(&sample_app, &sel_metrics)
                .into_iter()
                .take(3)
                .collect();
            match avg_min_cost(w.as_ref(), &schedules, spec) {
                Some(c) => {
                    if c < jcost - 1e-9 {
                        all_above = false;
                    }
                    row.push(format!("{c:.1}"));
                }
                None => row.push("-".to_owned()),
            }
        }
        apps += 1;
        if all_above {
            juggler_wins += 1;
        }
        rows.push(row);
    }
    print_table(
        "Figure 11: average minimal cost per approach (machine-min)",
        &[
            "app",
            "Juggler",
            "Nagel'13",
            "Jindal'18",
            "Hagedorn'18",
            "LRC",
            "MRD",
        ],
        &rows,
    );
    println!(
        "\nJuggler has the lowest average cost in {juggler_wins}/{apps} applications \
         (paper: all applications)."
    );
}
