//! Criterion microbenchmarks of the core algorithms: hotspot detection on
//! growing DAGs, lineage analysis, NNLS fitting with model selection, the
//! simulator's task throughput, and one full offline training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cluster_sim::{ClusterConfig, Engine, MachineSpec, NoiseParams, RunOptions, SimParams};
use dagflow::{
    AppBuilder, Application, ComputeCost, LineageAnalysis, NarrowKind, Schedule, SourceFormat,
    WideKind,
};
use juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};
use modeling::{fit_best, ModelSpec, Sample};
use workloads::{LogisticRegression, Pca, Workload};

/// Synthetic iterative app with `iters` iterations and a reusable chain.
fn synthetic_app(iters: usize) -> Application {
    let mut b = AppBuilder::new("synthetic");
    let src = b.source("in", SourceFormat::DistributedFs, 10_000, 1 << 30, 16);
    let parsed = b.narrow(
        "parsed",
        NarrowKind::Map,
        &[src],
        10_000,
        1 << 30,
        ComputeCost::new(0.001, 0.0, 1e-10),
    );
    let points = b.narrow(
        "points",
        NarrowKind::Map,
        &[parsed],
        10_000,
        1 << 29,
        ComputeCost::new(0.001, 0.0, 1e-10),
    );
    for i in 0..iters {
        let m = b.narrow(
            format!("m{i}"),
            NarrowKind::Map,
            &[points],
            10_000,
            1 << 20,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        let g = b.wide_with_partitions(
            format!("g{i}"),
            WideKind::TreeAggregate,
            &[m],
            1,
            1 << 12,
            1,
            ComputeCost::new(0.001, 0.0, 1e-9),
        );
        b.job("agg", g);
    }
    b.build().unwrap()
}

fn bench_lineage(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineage_analysis");
    for iters in [50usize, 200, 800] {
        let app = synthetic_app(iters);
        group.bench_with_input(BenchmarkId::from_parameter(iters), &app, |b, app| {
            b.iter(|| LineageAnalysis::new(app).computation_counts()[2]);
        });
    }
    group.finish();
}

fn bench_hotspot(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot_detection");
    for iters in [50usize, 200, 800] {
        let app = synthetic_app(iters);
        let metrics = DatasetMetricsView {
            et: (0..app.dataset_count())
                .map(|i| 0.01 + (i % 7) as f64 * 0.02)
                .collect(),
            size: app.datasets().iter().map(|d| d.bytes).collect(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(iters), &(), |b, ()| {
            b.iter(|| detect_hotspots(&app, &metrics, &HotspotConfig::default()).len());
        });
    }
    group.finish();
}

fn bench_model_fitting(c: &mut Criterion) {
    let samples: Vec<Sample> = {
        let mut v = Vec::new();
        for &e in &[1.0e4, 4.0e4, 7.0e4] {
            for &f in &[1.0e4, 3.0e4, 5.0e4] {
                v.push(Sample::ef(e, f, 10.0 + 96.0 * e + 0.008 * e * f));
            }
        }
        v
    };
    c.bench_function("fit_best_size_models", |b| {
        b.iter(|| {
            fit_best(&ModelSpec::size_candidates(), &samples)
                .unwrap()
                .cv_error
        });
    });
}

fn bench_simulator(c: &mut Criterion) {
    let w = LogisticRegression;
    let params = w.sample_params();
    let app = w.build(&params);
    let cluster = ClusterConfig::new(4, MachineSpec::private_cluster());
    let sim = SimParams {
        noise: NoiseParams::NONE,
        ..SimParams::default()
    };
    c.bench_function("simulate_lor_sample_run", |b| {
        b.iter(|| {
            let engine = Engine::new(&app, cluster, sim.clone());
            engine
                .run(&Schedule::empty(), RunOptions::default())
                .unwrap()
                .total_time_s
        });
    });
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_training");
    group.sample_size(10);
    group.bench_function("pca_full_pipeline", |b| {
        b.iter(|| {
            OfflineTraining::run(&Pca, &TrainingConfig::default())
                .unwrap()
                .schedules
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lineage,
    bench_hotspot,
    bench_model_fitting,
    bench_simulator,
    bench_training
);
criterion_main!(benches);
