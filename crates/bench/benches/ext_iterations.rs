//! §6.1 extension — the number of iterations.
//!
//! The paper's two claims:
//!
//! 1. **Optimization is iteration-independent**: the iteration count does
//!    not change cached-dataset sizes, so the recommended machine count
//!    is identical for any iteration count.
//! 2. **Prediction needs an extended model**: "another (linear) execution
//!    time model can be extracted from the main execution time model by
//!    carrying out additional experiments" — here, stage-4 runs over an
//!    iterations axis, fit to the `θ·e·f·i`-style families.

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, RunOptions};
use juggler::pipeline::OfflineTraining;
use modeling::accuracy_pct;
use workloads::{LogisticRegression, Workload, WorkloadParams};

fn main() {
    let w = LogisticRegression;
    let config = juggler::pipeline::TrainingConfig::default();
    let trained = bench::train(&w);

    // 1. Machine recommendations are independent of iterations (sizes do
    //    not depend on the iteration count).
    let p = w.paper_params();
    let m_any = trained.machines_for(0, p.e(), p.f());
    println!(
        "Recommended machines for schedule #1 at any iteration count: {m_any} \
         (sizes are iteration-independent; §6.1 optimization claim)."
    );

    // 2. Iteration-aware models trained at 10/25/50 iterations, evaluated
    //    at unseen counts including extrapolation to 100.
    let models = OfflineTraining::fit_iteration_models(&w, &config, &trained, &[10, 25, 50])
        .expect("iteration models fit");
    let base = &trained.time_models[0];
    let ext = &models[0];

    let mut rows = Vec::new();
    for &iters in &[10u32, 30, 50, 80, 100] {
        let params = WorkloadParams::auto(p.examples, p.features, iters);
        let app = w.build(&params);
        let machines = trained.machines_for(0, p.e(), p.f());
        let mut sim = w.sim_params();
        sim.seed = 0x1734 ^ u64::from(iters);
        let actual = Engine::new(&app, ClusterConfig::new(machines, trained.target_spec), sim)
            .run(&trained.schedules[0].schedule, RunOptions::default())
            .expect("run succeeds")
            .total_time_s;
        let naive = base.predict(p.e(), p.f()); // trained at 50 iterations only
        let aware = ext.predict_with_iterations(p.e(), p.f(), f64::from(iters));
        rows.push(vec![
            iters.to_string(),
            bench::fmt_secs(actual),
            bench::fmt_secs(naive),
            format!("{:.0}%", accuracy_pct(naive, actual)),
            bench::fmt_secs(aware),
            format!("{:.0}%", accuracy_pct(aware, actual)),
        ]);
    }
    print_table(
        "§6.1: LOR schedule #1 across iteration counts",
        &[
            "iterations",
            "actual",
            "base model",
            "acc",
            "iteration-aware",
            "acc",
        ],
        &rows,
    );
    println!(
        "\nThe base model (trained at the Table 1 iteration count) collapses away \
         from it; the iteration-aware family stays accurate, including the 2x \
         extrapolation to 100 iterations."
    );
}
