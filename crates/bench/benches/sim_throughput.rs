//! Single-run simulator throughput at paper scale.
//!
//! Offline training is dominated by stage-4 grid cells, each of which is
//! one paper-scale simulated run (LOR: ~56 jobs, ~11k tasks). This bench
//! times two shapes of that work and records them (plus the frozen pre-PR
//! baseline and the resulting speedup) to
//! `results/BENCH_sim_throughput.json`:
//!
//! * `run_only` — a single `Engine::run` on a prebuilt engine: the pure
//!   simulator hot path (block store, task walks, wave scheduling);
//! * `grid_cell` — one stage-4 cell as the training pipeline executes it.
//!   Pre-PR every cell rebuilt the application and its `EnginePrep`
//!   (`workload.build` + `Engine::new`); the pipeline now shares one app
//!   and prep per grid point across schedules, so a cell is a cheap
//!   `Engine::with_prep` handle plus the run — which is exactly what this
//!   scenario times. The frozen pre-PR constant was measured on the old
//!   per-cell shape, so the speedup reflects the real per-cell win.
//!
//! Determinism is asserted on the way: every timed run must reproduce the
//! digest of the warm-up run exactly.
//!
//! The artifact also embeds a phase profile of one (untimed) run under a
//! `"profile"` key. `juggler perf-report` diffs it against the baseline's
//! embedded profile when a `Min` speedup check trips, so a regression
//! report names the phases that slowed down instead of just the headline
//! number.

use std::sync::Arc;
use std::time::Instant;

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions};
use workloads::{LogisticRegression, Workload};

/// Best-of-`REPS` minimum. The reference container is a shared 1-core
/// host with bursty neighbours; 9 reps make the minimum a stable estimate
/// of the true floor (the pre-PR constants below were best-of-5 on a calm
/// window, so more fresh reps only make the comparison harder on us).
const REPS: usize = 9;

/// Pre-PR wall-clock seconds for the two scenarios, measured on the CI
/// reference container (best of 5) before the hot-path rework (dense
/// block-store interning, precomputed stage plans, shared engine prep).
/// `speedup_vs_pre_pr` is fresh-vs-frozen, so it is only meaningful on
/// hosts comparable to the reference; the raw seconds are recorded
/// alongside for cross-host sanity checks.
const PRE_PR_RUN_ONLY_S: f64 = 0.003603282;
const PRE_PR_GRID_CELL_S: f64 = 0.003683024;

fn main() {
    let w = LogisticRegression;
    let params = w.paper_params();
    let app = w.build(&params);
    let sim = w.sim_params();
    let cluster = ClusterConfig::new(8, MachineSpec::private_cluster());
    let schedule = Arc::new(app.default_schedule().clone());

    // Warm-up run pins the digest every timed run must reproduce.
    let engine = Engine::new(&app, cluster, sim.clone());
    let warm = engine
        .run_shared(&schedule, RunOptions::default())
        .expect("default schedule validates");
    let digest = warm.digest();
    let tasks = warm.total_tasks;

    let mut best_run = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = engine
            .run_shared(&schedule, RunOptions::default())
            .expect("default schedule validates");
        best_run = best_run.min(t0.elapsed().as_secs_f64());
        assert_eq!(r.digest(), digest, "timed run must be bit-identical");
    }

    // One shared app + prep, as the stage-4 fan-out holds them per grid
    // point; the timed region is one cell's share of the work.
    let prep = std::sync::Arc::clone(engine.prep());
    let mut best_cell = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let cell_engine = Engine::with_prep(&app, cluster, sim.clone(), Arc::clone(&prep));
        let r = cell_engine
            .run_shared(&schedule, RunOptions::default())
            .expect("default schedule validates");
        best_cell = best_cell.min(t0.elapsed().as_secs_f64());
        assert_eq!(r.digest(), digest, "cell run must be bit-identical");
    }

    // One profiled (untimed) run for the embedded phase attribution.
    let prof = obs::prof::profiler();
    prof.set_enabled(false);
    prof.reset();
    prof.enable();
    let r = engine
        .run_shared(&schedule, RunOptions::default())
        .expect("default schedule validates");
    assert_eq!(r.digest(), digest, "profiled run must be bit-identical");
    let profile = prof.take_profile();
    prof.set_enabled(false);

    let speedup_run = if PRE_PR_RUN_ONLY_S > 0.0 {
        PRE_PR_RUN_ONLY_S / best_run
    } else {
        1.0
    };
    let speedup_cell = if PRE_PR_GRID_CELL_S > 0.0 {
        PRE_PR_GRID_CELL_S / best_cell
    } else {
        1.0
    };

    print_table(
        &format!("Single-run simulator throughput (LOR paper scale, best of {REPS})"),
        &["scenario", "seconds", "tasks/s", "pre-PR s", "speedup"],
        &[
            vec![
                "run_only".into(),
                format!("{best_run:.4}"),
                format!("{:.0}", tasks as f64 / best_run),
                format!("{PRE_PR_RUN_ONLY_S:.4}"),
                format!("{speedup_run:.2}x"),
            ],
            vec![
                "grid_cell".into(),
                format!("{best_cell:.4}"),
                format!("{:.0}", tasks as f64 / best_cell),
                format!("{PRE_PR_GRID_CELL_S:.4}"),
                format!("{speedup_cell:.2}x"),
            ],
        ],
    );
    println!("\ndigests bit-identical across all timed runs: yes");

    bench::save_results(
        "BENCH_sim_throughput",
        &serde_json::json!({
            "workload": w.name(),
            "reps": REPS,
            "machines": 8,
            "tasks_per_run": tasks,
            "digests_stable": true,
            "run_only": {
                "best_seconds": best_run,
                "tasks_per_second": tasks as f64 / best_run,
                "pre_pr_seconds": PRE_PR_RUN_ONLY_S,
                "speedup_vs_pre_pr": speedup_run,
            },
            "grid_cell": {
                "best_seconds": best_cell,
                "tasks_per_second": tasks as f64 / best_cell,
                "pre_pr_seconds": PRE_PR_GRID_CELL_S,
                "speedup_vs_pre_pr": speedup_cell,
            },
            "profile": profile.to_json_value(),
        }),
    );
}
