//! The §1 eviction-policy experiment: "Cache eviction policies like LRU,
//! LRC and MRD tackle the cache limitation problem… We apply them on the
//! SVM experiments and do not realize any performance improvement because
//! SVM contains a single developer-cached dataset."
//!
//! Runs SVM's developer schedule `p(2)` across area A (1–6 machines,
//! where eviction actually happens) under every runtime eviction policy
//! and reports the cost deltas — which stay negligible, because with one
//! cached dataset every policy faces the same victims.

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, EvictionPolicyKind, MachineSpec, RunOptions};
use workloads::{SupportVectorMachine, Workload, WorkloadParams};

fn main() {
    let w = SupportVectorMachine;
    let params = WorkloadParams::auto(100_000, 80_000, 30);
    let app = w.build(&params);
    let schedule = app.default_schedule().clone();
    let spec = MachineSpec::paper_example();

    let mut rows = Vec::new();
    let mut worst_delta: f64 = 0.0;
    for machines in 1..=6u32 {
        let mut row = vec![machines.to_string()];
        let mut lru_cost = None;
        for policy in EvictionPolicyKind::all() {
            let mut sim = w.sim_params();
            sim.seed = 0xE71C ^ u64::from(machines);
            sim.eviction_policy = policy;
            let engine = Engine::new(&app, ClusterConfig::new(machines, spec), sim);
            let report = engine
                .run(
                    &schedule,
                    RunOptions {
                        collect_traces: false,
                        partition_skew: 0.15,
                        ..RunOptions::default()
                    },
                )
                .expect("run succeeds");
            let cost = report.cost_machine_minutes();
            if policy == EvictionPolicyKind::Lru {
                lru_cost = Some(cost);
            }
            if let Some(base) = lru_cost {
                worst_delta = worst_delta.max((cost / base - 1.0).abs());
            }
            row.push(format!("{cost:.1}"));
        }
        rows.push(row);
    }
    print_table(
        "Eviction policies on SVM p(2), area A (cost, machine-min)",
        &["machines", "LRU", "FIFO", "LRC", "MRD"],
        &rows,
    );
    println!(
        "\nWorst cost delta vs LRU across policies: {:.1}% — with a single \
         developer-cached dataset, the eviction policy cannot help (paper §1).",
        worst_delta * 100.0
    );
}
