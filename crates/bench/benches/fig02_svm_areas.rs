//! Figure 2 — "Selection of a suitable cluster configuration (SVM)".
//!
//! Runs SVM (59.5 GB input, 100 iterations, developer-cached schedule
//! `p(2)`, 12 GB machines as in §2.2) on 1–12 machines and reports, per
//! configuration: execution time, cost, the fraction of cached partitions
//! evicted (the paper's 83 %…0 % series for area A), and Ernest's
//! prediction for the same run. The paper's claims checked here:
//!
//! * area A (below ~7 machines): fewer machines ⇒ eviction ⇒ recompute ⇒
//!   both time and cost explode;
//! * area C: minimal cost where the 35.7 GB cached dataset first fits
//!   (≈ 7 machines at 5.6 GB of caching per machine);
//! * area B: more machines keep reducing time but raise cost;
//! * Ernest is accurate in area B, wrong in area A, and recommends one
//!   machine whose real cost is an order of magnitude above optimal.

use baselines::ErnestTrainer;
use bench::{fmt_secs, optimal_config, print_table, MACHINE_RANGE};
use cluster_sim::MachineSpec;
use dagflow::DatasetId;
use workloads::{SupportVectorMachine, Workload, WorkloadParams};

fn main() {
    let w = SupportVectorMachine;
    // Figure 2's setting: 59.5 GB input (e·f = 8×10⁹ cells).
    let params = WorkloadParams::auto(100_000, 80_000, 100);
    let spec = MachineSpec::paper_example(); // 12 GB RAM ⇒ M = 7.02 GB
    let app = w.build(&params);
    let schedule = app.default_schedule().clone();
    let cached = DatasetId(2);
    let total_partitions = app.dataset(cached).partitions;

    // Ernest: 7 short runs on 1–10 % samples chosen by experiment design.
    let trainer = ErnestTrainer::default();
    let model = trainer.train(|scale, machines| {
        let sample = WorkloadParams::auto(
            (100_000.0 * scale.sqrt()) as u64,
            (80_000.0 * scale.sqrt()) as u64,
            100,
        );
        bench::actual_run(&w, &sample, &schedule, machines, spec).total_time_s
    });

    let sweep = bench::sweep(&w, &params, &schedule, spec);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|r| {
            let evicted = r.cache.evicted_fraction(cached, total_partitions);
            let ernest = model.predict(1.0, r.machines);
            vec![
                r.machines.to_string(),
                fmt_secs(r.total_time_s),
                format!("{:.1}", r.cost_machine_minutes()),
                format!("{:.0}%", evicted * 100.0),
                fmt_secs(ernest),
                format!("{:+.0}%", (ernest / r.total_time_s - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 2: SVM time/cost vs cluster size (dev schedule p(2))",
        &[
            "machines",
            "time",
            "cost (m*min)",
            "evicted",
            "Ernest t^",
            "Ernest err",
        ],
        &rows,
    );

    let (opt_m, opt_cost, _) = optimal_config(&sweep);
    let cost_1 = sweep[0].cost_machine_minutes();
    let ernest_m = model.cheapest_machines(1.0, *MACHINE_RANGE.end());
    let ernest_cost_claim = f64::from(ernest_m) * model.predict(1.0, ernest_m) / 60.0;
    let actual_at_ernest = sweep[(ernest_m - 1) as usize].cost_machine_minutes();

    println!("\nArea C (optimal): {opt_m} machines at {opt_cost:.1} machine-min");
    println!(
        "Cost on 1 machine: {cost_1:.1} machine-min ({:.1}x optimal)",
        cost_1 / opt_cost
    );
    println!(
        "Ernest recommends {ernest_m} machine(s), predicting {ernest_cost_claim:.1} machine-min;"
    );
    println!(
        "actual cost there is {actual_at_ernest:.1} machine-min ({:.1}x Ernest's estimate)",
        actual_at_ernest / ernest_cost_claim.max(1e-9)
    );
    bench::save_results(
        "fig02_svm_areas",
        &serde_json::json!({
            "optimal_machines": opt_m,
            "cost_1_vs_optimal": cost_1 / opt_cost,
            "ernest_machines": ernest_m,
            "actual_vs_ernest_estimate": actual_at_ernest / ernest_cost_claim.max(1e-9),
            "paper": {"optimal_machines": 7, "cost_1_vs_optimal": 12.0, "ernest_machines": 1, "actual_vs_ernest_estimate": 16.0},
        }),
    );

    // Steady-state cache picture on one machine (the paper's recompute
    // observation behind the 97x task-time ratio).
    let small = &sweep[0];
    let mid_job = small.per_job_cache.len() / 2;
    if let Some((_, h1, m1)) = small.per_job_cache[mid_job]
        .iter()
        .find(|(d, _, _)| *d == cached)
        .copied()
    {
        println!(
            "\nSteady-state iteration on 1 machine: {h1} cached reads, {m1} recomputed partitions"
        );
    }
}
