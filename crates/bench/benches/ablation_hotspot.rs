//! Ablation — the design choices of Algorithm 1 (not a paper figure; this
//! quantifies the deltas DESIGN.md calls out):
//!
//! 1. **BCR vs benefit-only ranking** — what the size denominator buys
//!    (this is also the Juggler-vs-Hagedorn'18 delta);
//! 2. **with vs without the unpersist optimization** — the memory-budget
//!    (and hence machine-count and cost) reduction of `u(X) … p(Y)`;
//! 3. **with vs without re-evaluation** — schedules assembled in plain
//!    greedy order (Nagel'13-style) vs with parent-first reordering.

use baselines::{DatasetSelector, Hagedorn, Nagel, SelectionMetrics};
use bench::{minimal_cost, print_table};
use cluster_sim::{ClusterConfig, MachineSpec};
use instrument::profile_run;
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};

fn main() {
    let spec = MachineSpec::private_cluster();
    let mut rows = Vec::new();

    for w in bench::workloads() {
        let sample = w.sample_params();
        let sample_app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &sample_app,
            &sample_app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("sample run succeeds");
        let view = DatasetMetricsView::from_metrics(&out.metrics, sample_app.dataset_count());
        let params = w.paper_params();

        // Full Algorithm 1.
        let full = detect_hotspots(&sample_app, &view, &HotspotConfig::default());
        let full_best = full
            .iter()
            .map(|rs| minimal_cost(&bench::sweep(w.as_ref(), &params, &rs.schedule, spec)))
            .fold(f64::INFINITY, f64::min);
        let full_budget: u64 = full.last().map_or(0, |rs| rs.budget_bytes);

        // Without unpersist: same persist sets, u(…) stripped.
        let stripped_best = full
            .iter()
            .map(|rs| {
                let s = dagflow::Schedule::persist_all(rs.schedule.persisted());
                minimal_cost(&bench::sweep(w.as_ref(), &params, &s, spec))
            })
            .fold(f64::INFINITY, f64::min);
        let stripped_budget: u64 = full.last().map_or(0, |rs| {
            dagflow::Schedule::persist_all(rs.schedule.persisted())
                .memory_budget(|d| view.size[d.index()])
        });

        // Benefit-only ranking (Hagedorn'18) and no-reevaluation greedy
        // (Nagel'13) as the published stand-ins for those ablations.
        let m = SelectionMetrics {
            et: view.et.clone(),
            size: view.size.clone(),
        };
        let benefit_only = Hagedorn
            .schedules(&sample_app, &m)
            .into_iter()
            .take(full.len().max(1))
            .map(|s| minimal_cost(&bench::sweep(w.as_ref(), &params, &s, spec)))
            .fold(f64::INFINITY, f64::min);
        let no_reeval = Nagel
            .schedules(&sample_app, &m)
            .into_iter()
            .take(full.len().max(1))
            .map(|s| minimal_cost(&bench::sweep(w.as_ref(), &params, &s, spec)))
            .fold(f64::INFINITY, f64::min);

        rows.push(vec![
            w.name().to_owned(),
            format!("{full_best:.1}"),
            format!("{benefit_only:.1}"),
            format!("{no_reeval:.1}"),
            format!("{stripped_best:.1}"),
            format!(
                "{:.0}%",
                (1.0 - full_budget as f64 / stripped_budget.max(1) as f64) * 100.0
            ),
        ]);
    }
    print_table(
        "Ablation: Algorithm 1 design choices (best schedule cost, machine-min)",
        &[
            "app",
            "full Alg.1",
            "benefit-only",
            "no re-eval",
            "no unpersist",
            "budget saved by u()",
        ],
        &rows,
    );
}
