//! Figure 16 — "Training cost of Juggler's stages".
//!
//! Per application, the share of the total offline-training cost spent in
//! each of the four stages. The paper's observation: "For all
//! applications, most of the overall offline training cost comes from
//! building the execution time model."

use bench::print_table;

fn main() {
    let mut rows = Vec::new();
    let mut exec_dominates = 0usize;
    let mut apps = 0usize;

    for (w, trained) in bench::workloads().iter().zip(bench::train_all()) {
        let c = &trained.costs;
        let total = c.total_machine_minutes().max(1e-9);
        let pct = |x: f64| format!("{:.1}%", x / total * 100.0);
        apps += 1;
        if c.time_models.machine_minutes
            > c.hotspot.machine_minutes
                + c.param_calibration.machine_minutes
                + c.memory_calibration.machine_minutes
        {
            exec_dominates += 1;
        }
        rows.push(vec![
            w.name().to_owned(),
            pct(c.hotspot.machine_minutes),
            pct(c.param_calibration.machine_minutes),
            pct(c.memory_calibration.machine_minutes),
            pct(c.time_models.machine_minutes),
            format!("{total:.1}"),
        ]);
    }
    print_table(
        "Figure 16: training cost share per stage",
        &[
            "app",
            "hotspot",
            "param calib",
            "memory calib",
            "time models",
            "total (m-min)",
        ],
        &rows,
    );
    println!(
        "\nExecution-time modeling dominates in {exec_dominates}/{apps} applications \
         (paper: all applications)."
    );
}
