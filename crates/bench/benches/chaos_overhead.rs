//! Overhead of the chaos machinery when no fault fires: a batch of
//! paper-scale LOR runs with untouched `SimParams` vs the chaos
//! apparatus *armed but idle* — a four-event fault plan scheduled far
//! beyond the end of the run (tracked at every job boundary, never
//! firing) under the default retry policy. That is exactly the state
//! every fault-free run carries, so its overhead is the chaos tax on
//! the hot path. Gated budget: < 5 %.
//!
//! A third batch additionally enables speculative execution with an
//! unreachable multiplier, so straggler statistics (a running median of
//! completed task durations) are maintained for every task without a
//! copy ever launching. Speculation is opt-in — the default policy does
//! not pay for it — so this row is reported but not gated, mirroring
//! the jittery engine batch of `trace_overhead`. Results land in
//! `results/BENCH_chaos_overhead.json`.

use std::time::Instant;

use bench::print_table;
use cluster_sim::{
    ClusterConfig, Engine, FaultKind, FaultPlan, MachineSpec, RetryPolicy, RunOptions,
};
use workloads::{LogisticRegression, Workload};

const ENGINE_RUNS: usize = 24;
const REPS: usize = 15;

/// Which chaos state a batch runs under.
#[derive(Clone, Copy, PartialEq)]
enum State {
    /// Untouched `SimParams`: no plan, default policy.
    Plain,
    /// Never-firing four-event plan, default retry policy — the armed
    /// state of every real fault-free run.
    ArmedIdle,
    /// Never-firing plan plus speculation tracking that can never
    /// trigger a copy (unreachable multiplier).
    SpeculationArmed,
}

/// A plan whose events can never fire.
fn never_plan() -> FaultPlan {
    let never = 1.0e9;
    FaultPlan::none()
        .event(never, FaultKind::ExecutorLoss { machine: 1 })
        .event(
            never,
            FaultKind::SlowNode {
                machine: 0,
                factor: 2.0,
                duration_s: 1.0,
            },
        )
        .event(never, FaultKind::TaskFailures { count: 1 })
        .event(
            never,
            FaultKind::MemoryPressure {
                machine: 0,
                bytes: 1,
                duration_s: 1.0,
            },
        )
}

fn apply(state: State, params: &mut cluster_sim::SimParams) {
    match state {
        State::Plain => {}
        State::ArmedIdle => {
            params.faults = never_plan();
            params.retry = RetryPolicy::default();
        }
        State::SpeculationArmed => {
            params.faults = never_plan();
            params.retry = RetryPolicy {
                speculation: true,
                speculation_multiplier: 1.0e9,
                ..RetryPolicy::default()
            };
        }
    }
}

fn run_one(state: State, seed: u64) -> cluster_sim::RunReport {
    let w = LogisticRegression;
    let app = w.build(&w.paper_params());
    let schedule = app.default_schedule().clone();
    let mut params = w.sim_params();
    params.seed = seed;
    apply(state, &mut params);
    Engine::new(
        &app,
        ClusterConfig::new(4, MachineSpec::private_cluster()),
        params,
    )
    .run(&schedule, RunOptions::default())
    .expect("run succeeds")
}

/// One timed batch of engine runs.
fn engine_batch_once(state: State, rep: usize) -> f64 {
    let w = LogisticRegression;
    let app = w.build(&w.paper_params());
    let schedule = app.default_schedule().clone();
    let cluster = ClusterConfig::new(4, MachineSpec::private_cluster());
    let t0 = Instant::now();
    for i in 0..ENGINE_RUNS {
        let mut params = w.sim_params();
        params.seed = 0xC4A0 + (rep * ENGINE_RUNS + i) as u64;
        apply(state, &mut params);
        let report = Engine::new(&app, cluster, params)
            .run(&schedule, RunOptions::default())
            .expect("run succeeds");
        std::hint::black_box(&report);
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    // Correctness preflight: armed-but-idle chaos must not change the
    // simulated outcome — with or without speculation tracking — only
    // (at most) the wall-clock of simulating it.
    let plain = run_one(State::Plain, 0xC4A05);
    for state in [State::ArmedIdle, State::SpeculationArmed] {
        let armed = run_one(state, 0xC4A05);
        assert_eq!(plain.total_time_s, armed.total_time_s);
        assert_eq!(plain.total_tasks, armed.total_tasks);
        assert_eq!(armed.task_attempts, armed.total_tasks);
        assert_eq!(armed.faults.speculative_launched, 0);
        assert!(armed.faults.outcomes.iter().all(|o| !o.fired));
    }

    // Best-of-`REPS` for all three states, *interleaved* so slow drift
    // (thermal, background load) hits every state evenly.
    let (mut best_plain, mut best_armed, mut best_spec) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for rep in 0..REPS {
        best_plain = best_plain.min(engine_batch_once(State::Plain, rep));
        best_armed = best_armed.min(engine_batch_once(State::ArmedIdle, rep));
        best_spec = best_spec.min(engine_batch_once(State::SpeculationArmed, rep));
    }
    let pct = |t: f64| {
        if best_plain <= 0.0 {
            0.0
        } else {
            (t - best_plain) / best_plain * 100.0
        }
    };
    let armed_pct = pct(best_armed);
    let spec_pct = pct(best_spec);

    print_table(
        &format!("Chaos-machinery overhead with no faults (best of {REPS}, interleaved)"),
        &["scenario", "batch (s)", "overhead", "gated"],
        &[
            vec![
                format!("plain x{ENGINE_RUNS} (LOR paper scale)"),
                format!("{best_plain:.4}"),
                String::from("—"),
                String::from("baseline"),
            ],
            vec![
                String::from("armed idle (default policy)"),
                format!("{best_armed:.4}"),
                format!("{armed_pct:+.2}%"),
                String::from("< 5%"),
            ],
            vec![
                String::from("speculation armed (opt-in)"),
                format!("{best_spec:.4}"),
                format!("{spec_pct:+.2}%"),
                String::from("informational"),
            ],
        ],
    );
    let within_budget = armed_pct < 5.0;
    println!("\narmed-idle chaos overhead within the 5% budget: {within_budget}");

    bench::save_results(
        "BENCH_chaos_overhead",
        &serde_json::json!({
            "workload": "LOR",
            "reps": REPS,
            "engine_runs_per_batch": ENGINE_RUNS,
            "plain_seconds": best_plain,
            "armed_idle": {
                "seconds": best_armed,
                "overhead_pct": armed_pct,
            },
            "speculation_armed": {
                "seconds": best_spec,
                "overhead_pct": spec_pct,
            },
            "budget_pct": 5.0,
            "within_budget": within_budget,
        }),
    );
}
