//! Wall-clock benchmark of the parallel experiment runner: offline
//! training of a multi-schedule workload, sequential vs parallel across
//! thread counts. Verifies on the way that every thread count yields a
//! byte-identical artifact, then records the timings (and speedups over
//! the sequential run) to `results/BENCH_training_parallel.json`.

use std::time::Instant;

use bench::print_table;
use juggler::pipeline::{OfflineTraining, TrainingConfig};
use workloads::{LogisticRegression, Workload};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

fn train_once(w: &dyn Workload, threads: usize) -> (f64, String) {
    let config = TrainingConfig {
        threads,
        ..TrainingConfig::default()
    };
    let t0 = Instant::now();
    let trained = OfflineTraining::run(w, &config).expect("training succeeds");
    let secs = t0.elapsed().as_secs_f64();
    (
        secs,
        serde_json::to_string(&trained).expect("artifact serializes"),
    )
}

fn main() {
    // LOR has a multi-schedule family (Table 2), so stage 4 fans a
    // (schedules × 9)-cell matrix — the case the runner is built for.
    let w = LogisticRegression;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("host parallelism: {cores}");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut baseline_s = 0.0;
    let mut speedup_at_8 = 0.0;
    let mut reference: Option<String> = None;
    for &threads in &THREAD_COUNTS {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let (secs, artifact) = train_once(&w, threads);
            best = best.min(secs);
            match &reference {
                None => reference = Some(artifact),
                Some(r) => assert_eq!(r, &artifact, "artifact must not depend on thread count"),
            }
        }
        if threads == 1 {
            baseline_s = best;
        }
        // A speedup claim is only meaningful when the host can actually
        // run that many workers; oversubscribed points (threads beyond
        // host parallelism) still verify determinism, but their timing is
        // marked ungated so downstream gates must not consume it.
        let gated = threads <= cores;
        let speedup = baseline_s / best;
        if threads == 8 {
            speedup_at_8 = speedup;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.3}", best),
            format!("{speedup:.2}x"),
            if gated {
                "yes".into()
            } else {
                "no (oversubscribed)".into()
            },
        ]);
        series.push(serde_json::json!({
            "threads": threads,
            "best_seconds": best,
            "speedup_vs_sequential": speedup,
            "gated": gated,
        }));
    }

    print_table(
        "Offline training wall clock (LOR, best of 3)",
        &["threads", "seconds", "speedup", "gated"],
        &rows,
    );
    println!("\nartifacts byte-identical across all thread counts: yes");

    // The ≥4× speedup-at-8-threads gate only applies on hosts with at
    // least 8 cores; elsewhere it is skipped with an explicit note so a
    // 1-core CI box cannot silently "pass" (or fail) a claim it cannot
    // measure.
    let gate_applicable = cores >= 8;
    if gate_applicable {
        println!("speedup gate (>=4x at 8 threads): {speedup_at_8:.2}x");
    } else {
        println!(
            "speedup gate (>=4x at 8 threads): SKIPPED — host parallelism \
             is {cores}, below the 8 workers the gate needs"
        );
    }

    bench::save_results(
        "BENCH_training_parallel",
        &serde_json::json!({
            "workload": w.name(),
            "reps": REPS,
            "host_parallelism": cores,
            "artifacts_identical": true,
            "speedup_gate": {
                "required_at_8_threads": 4.0,
                "applicable": gate_applicable,
                "note": if gate_applicable {
                    "host has >=8 cores; gate enforced".to_string()
                } else {
                    format!("host parallelism {cores} < 8; gate skipped")
                },
            },
            "series": series,
        }),
    );
}
