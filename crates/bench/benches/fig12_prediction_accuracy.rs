//! Figure 12 — "Juggler vs Ernest: Prediction accuracy".
//!
//! For every application and every Juggler schedule: predict the execution
//! time at the paper-scale parameters on the recommended configuration
//! with (a) Juggler's trained execution-time model and (b) an Ernest model
//! trained from 7 short small-sample runs chosen by optimal experiment
//! design; compare both against the actual simulated run. The paper
//! reports average accuracies of 90.6 % (Juggler) vs 53.2 % (Ernest).

use baselines::ErnestTrainer;
use bench::print_table;
use modeling::accuracy_pct;
use workloads::WorkloadParams;

fn main() {
    let mut rows = Vec::new();
    let mut juggler_accs = Vec::new();
    let mut ernest_accs = Vec::new();

    for (w, trained) in bench::workloads().iter().zip(bench::train_all()) {
        let params = w.paper_params();
        let spec = trained.target_spec;

        for (i, rs) in trained.schedules.iter().enumerate() {
            let machines = trained.machines_for(i, params.e(), params.f());
            let actual =
                bench::actual_run(w.as_ref(), &params, &rs.schedule, machines, spec).total_time_s;
            let juggler_pred = trained.time_models[i].predict(params.e(), params.f());

            // Ernest: train on 1–10 % samples at the *same* schedule.
            let schedule = rs.schedule.clone();
            let model = ErnestTrainer::default().train(|scale, m| {
                let sample = WorkloadParams::auto(
                    ((params.examples as f64) * scale.sqrt()) as u64,
                    ((params.features as f64) * scale.sqrt()) as u64,
                    params.iterations,
                );
                bench::actual_run(w.as_ref(), &sample, &schedule, m, spec).total_time_s
            });
            let ernest_pred = model.predict(1.0, machines);

            let ja = accuracy_pct(juggler_pred, actual);
            let ea = accuracy_pct(ernest_pred, actual);
            juggler_accs.push(ja);
            ernest_accs.push(ea);
            rows.push(vec![
                w.name().to_owned(),
                format!("#{}", i + 1),
                machines.to_string(),
                bench::fmt_secs(actual),
                bench::fmt_secs(juggler_pred),
                format!("{ja:.0}%"),
                bench::fmt_secs(ernest_pred),
                format!("{ea:.0}%"),
            ]);
        }
    }
    print_table(
        "Figure 12: execution-time prediction accuracy per schedule",
        &[
            "app", "schedule", "machines", "actual", "Juggler", "acc", "Ernest", "acc",
        ],
        &rows,
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nAverage accuracy: Juggler {:.1}% (paper: 90.6%), Ernest {:.1}% (paper: 53.2%)",
        avg(&juggler_accs),
        avg(&ernest_accs)
    );
    bench::save_results(
        "fig12_prediction_accuracy",
        &serde_json::json!({
            "juggler_avg_accuracy_pct": avg(&juggler_accs),
            "ernest_avg_accuracy_pct": avg(&ernest_accs),
            "paper": {"juggler": 90.6, "ernest": 53.2},
        }),
    );
}
