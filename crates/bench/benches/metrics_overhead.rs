//! Overhead of the metrics registry, measured two ways:
//!
//! 1. **Engine hot path** — a batch of paper-scale LOR runs with the
//!    global registry off vs on (informational; sub-100ms batches are
//!    jittery on shared machines, so this number is reported but not
//!    gated).
//! 2. **Offline training** with the registry off vs on — this is the
//!    gated < 5 % budget: the call sites check `Registry::enabled()`
//!    once, so the disabled path must stay essentially free and the
//!    enabled path is a handful of relaxed atomic ops per run.
//!
//! Results land in `results/BENCH_metrics_overhead.json`.

use std::time::Instant;

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions};
use juggler::pipeline::{OfflineTraining, TrainingConfig};
use workloads::{LogisticRegression, Workload};

const ENGINE_RUNS: usize = 24;
const REPS: usize = 9;

/// One timed batch of engine runs with the registry in the given state.
fn engine_batch_once(enabled: bool, rep: usize) -> f64 {
    let reg = obs::global();
    reg.set_enabled(enabled);
    reg.reset();
    let w = LogisticRegression;
    let app = w.build(&w.paper_params());
    let schedule = app.default_schedule().clone();
    let t0 = Instant::now();
    for i in 0..ENGINE_RUNS {
        let mut params = w.sim_params();
        params.seed = 0xB22 + (rep * ENGINE_RUNS + i) as u64;
        let report = Engine::new(
            &app,
            ClusterConfig::new(4, MachineSpec::private_cluster()),
            params,
        )
        .run(&schedule, RunOptions::default())
        .expect("run succeeds");
        std::hint::black_box(&report);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    reg.set_enabled(false);
    elapsed
}

/// One timed offline training (threads = 1 for a stable measurement).
fn training_once(enabled: bool) -> f64 {
    let reg = obs::global();
    reg.set_enabled(enabled);
    reg.reset();
    let w = LogisticRegression;
    let config = TrainingConfig {
        threads: 1,
        ..TrainingConfig::default()
    };
    let t0 = Instant::now();
    let trained = OfflineTraining::run(&w, &config).expect("training succeeds");
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(&trained);
    reg.set_enabled(false);
    elapsed
}

/// Best-of-`REPS` for the off and on states, *interleaved* so slow
/// drift (thermal, background load) hits both states evenly instead of
/// whichever happened to run second.
fn interleaved_best(mut measure: impl FnMut(bool, usize) -> f64) -> (f64, f64) {
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for rep in 0..REPS {
        best_off = best_off.min(measure(false, rep));
        best_on = best_on.min(measure(true, rep));
    }
    (best_off, best_on)
}

fn pct(off: f64, on: f64) -> f64 {
    if off <= 0.0 {
        0.0
    } else {
        (on - off) / off * 100.0
    }
}

fn main() {
    let (engine_off, engine_on) = interleaved_best(engine_batch_once);
    let (train_off, train_on) = interleaved_best(|enabled, _| training_once(enabled));

    let engine_pct = pct(engine_off, engine_on);
    let train_pct = pct(train_off, train_on);

    print_table(
        &format!("Metrics-registry overhead (best of {REPS}, interleaved)"),
        &["scenario", "metrics off (s)", "metrics on (s)", "overhead"],
        &[
            vec![
                format!("engine x{ENGINE_RUNS} (LOR paper scale)"),
                format!("{engine_off:.4}"),
                format!("{engine_on:.4}"),
                format!("{engine_pct:+.2}%"),
            ],
            vec![
                "offline training (LOR)".to_string(),
                format!("{train_off:.4}"),
                format!("{train_on:.4}"),
                format!("{train_pct:+.2}%"),
            ],
        ],
    );
    let within_budget = train_pct < 5.0;
    println!(
        "\ntraining metrics-enabled overhead within the 5% budget: {within_budget} \
         (engine batch is informational)"
    );

    bench::save_results(
        "BENCH_metrics_overhead",
        &serde_json::json!({
            "workload": "LOR",
            "reps": REPS,
            "engine_runs_per_batch": ENGINE_RUNS,
            "engine_batch": {
                "metrics_off_seconds": engine_off,
                "metrics_on_seconds": engine_on,
                "overhead_pct": engine_pct,
            },
            "offline_training": {
                "metrics_off_seconds": train_off,
                "metrics_on_seconds": train_on,
                "overhead_pct": train_pct,
            },
            "budget_pct": 5.0,
            "within_budget": within_budget,
        }),
    );
    assert!(
        within_budget,
        "metrics-enabled training overhead {train_pct:.2}% exceeds the 5% budget"
    );
}
