//! Cost of the watchtower fold relative to the work it monitors. The
//! gated number is the *steady-state* fold: `Watchtower::fold_ledger`
//! over a 100-manifest run ledger with a warm sample cache — exactly
//! what `juggler health` costs once a report has been filed before. It
//! must stay under 5 % of the `juggler runs record` flow (doctor =
//! training + validation) that precedes every health check, so the
//! check is cheap enough to hang off every recorded run. The cold fold
//! (`load_history` + `fold`, every manifest parsed) is reported
//! informationally. Training, doctor, and folds are measured
//! interleaved best-of-`REPS`; results land in
//! `results/BENCH_health_overhead.json` and are gated by the
//! `health_overhead` policy in `results/baselines/`.

use std::time::Instant;

use bench::print_table;
use juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler::provenance::RunManifest;
use juggler::watchtower::{load_history, Watchtower};
use obs::LedgerStore;
use workloads::{LogisticRegression, Workload};

const REPS: usize = 9;
const MANIFESTS: usize = 100;

/// Files `MANIFESTS` healthy-regime variants of one recorded run
/// (distinct sub-slack coefficient nudges, pinned mtimes so the listing
/// order is reproducible) into a scratch ledger.
fn seed_ledger(dir: &std::path::Path, base: &RunManifest) {
    let _ = std::fs::remove_dir_all(dir);
    let store = LedgerStore::new(dir.to_path_buf());
    let base_time =
        std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_700_000_000);
    for k in 0..MANIFESTS {
        let mut m = base.clone();
        m.perturb_time_coefficient(0, (k + 1) as f64 * 1e-6);
        let path = store
            .record(&m.content_hash, &m.to_json())
            .expect("record succeeds");
        let file = std::fs::File::options()
            .write(true)
            .open(&path)
            .expect("reopen manifest");
        file.set_modified(base_time + std::time::Duration::from_secs(k as u64))
            .expect("set mtime");
    }
}

fn training_once(config: &TrainingConfig) -> f64 {
    let w = LogisticRegression;
    let t0 = Instant::now();
    let trained = OfflineTraining::run(&w, config).expect("training succeeds");
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(&trained);
    elapsed
}

fn doctor_once(config: &TrainingConfig) -> f64 {
    let t0 = Instant::now();
    let report = juggler::doctor(&LogisticRegression, config).expect("doctor succeeds");
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(&report);
    elapsed
}

fn cold_fold_once(store: &LedgerStore) -> f64 {
    let t0 = Instant::now();
    let window = load_history(store, "LOR", None, 0).expect("history loads");
    let report = Watchtower::default().fold(&window);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(window.len(), MANIFESTS, "the whole ledger must be folded");
    std::hint::black_box(report.digest());
    elapsed
}

fn warm_fold_once(store: &LedgerStore, cache: &std::path::Path) -> f64 {
    let t0 = Instant::now();
    let report = Watchtower::default()
        .fold_ledger(store, "LOR", None, 0, Some(cache))
        .expect("cached fold succeeds");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.window.len(),
        MANIFESTS,
        "the whole ledger must be folded"
    );
    std::hint::black_box(report.digest());
    elapsed
}

fn main() {
    // threads = 1 for a stable measurement (same convention as the
    // other overhead benches).
    let config = TrainingConfig {
        threads: 1,
        ..TrainingConfig::default()
    };
    let report = juggler::doctor(&LogisticRegression, &config).expect("doctor succeeds");
    let base = RunManifest::from_doctor(&report, &config, &LogisticRegression.paper_params());

    let dir = std::env::temp_dir().join(format!("juggler-health-bench-{}", std::process::id()));
    seed_ledger(&dir, &base);
    let store = LedgerStore::new(dir.clone());
    let cache = dir.join("sample_cache.json");
    // Populate the sample cache once, untimed: the gate is the
    // steady-state check, not the first-ever fold (that is `cold`).
    let _ = Watchtower::default()
        .fold_ledger(&store, "LOR", None, 0, Some(&cache))
        .expect("cache populates");

    // Interleaved best-of-REPS so slow drift (thermal, background load)
    // hits the numerator and denominator evenly.
    let (mut best_train, mut best_doctor) = (f64::INFINITY, f64::INFINITY);
    let (mut best_cold, mut best_warm) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        best_train = best_train.min(training_once(&config));
        best_doctor = best_doctor.min(doctor_once(&config));
        best_cold = best_cold.min(cold_fold_once(&store));
        best_warm = best_warm.min(warm_fold_once(&store, &cache));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let pct = |fold: f64, base: f64| {
        if base <= 0.0 {
            0.0
        } else {
            fold / base * 100.0
        }
    };
    let overhead_pct = pct(best_warm, best_doctor);
    let cold_overhead_pct = pct(best_cold, best_doctor);
    let within_budget = overhead_pct < 5.0;

    print_table(
        &format!("Watchtower fold cost (best of {REPS}, interleaved, {MANIFESTS} manifests)"),
        &["scenario", "seconds"],
        &[
            vec![
                "offline training (LOR)".to_string(),
                format!("{best_train:.4}"),
            ],
            vec![
                "doctor = train + validate (LOR)".to_string(),
                format!("{best_doctor:.4}"),
            ],
            vec![
                format!("cold fold x{MANIFESTS} (parse every manifest)"),
                format!("{best_cold:.4}"),
            ],
            vec![
                format!("warm fold x{MANIFESTS} (sample cache)"),
                format!("{best_warm:.4}"),
            ],
        ],
    );
    println!(
        "\nsteady-state fold is {overhead_pct:.2}% of one doctor run (cold: \
         {cold_overhead_pct:.2}%); within the 5% budget: {within_budget}"
    );

    bench::save_results(
        "BENCH_health_overhead",
        &serde_json::json!({
            "workload": "LOR",
            "manifests": MANIFESTS,
            "reps": REPS,
            "training": {
                "seconds": best_train,
            },
            "doctor": {
                "seconds": best_doctor,
            },
            "fold": {
                "seconds": best_warm,
                "overhead_pct": overhead_pct,
                "cold_seconds": best_cold,
                "cold_overhead_pct": cold_overhead_pct,
            },
            "budget_pct": 5.0,
            "within_budget": within_budget,
        }),
    );
    assert!(
        within_budget,
        "the steady-state fold of {MANIFESTS} manifests costs {overhead_pct:.2}% of a \
         doctor run, over the 5% budget"
    );
}
